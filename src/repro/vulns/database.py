"""Catalogue of known BIND vulnerabilities.

The entries reproduce the ISC BIND security matrix as it stood around the
survey date (February 2004 advisory list, used against the July 2004
snapshot).  Each :class:`Vulnerability` records the affected version range
within a major release line, a severity, and a :class:`Capability` describing
what an attacker gains: remote code execution / cache corruption (enough to
hijack names served by the box) or only denial of service.

The exploit names the paper mentions for the fbi.gov case study — *libbind*,
*negcache*, *sigrec*, and *DoS multi* — are all present, and BIND 8.2.4 is
(correctly) matched by all four.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.vulns.bindversion import BindVersion, version_range


class Severity(enum.IntEnum):
    """Coarse severity buckets, ordered so that ``max()`` picks the worst."""

    LOW = 1
    MEDIUM = 2
    HIGH = 3
    CRITICAL = 4


class Capability(enum.Enum):
    """What a successful exploit gives the attacker."""

    #: Remote code execution or equivalent control of the server; enough to
    #: forge arbitrary answers and hijack every name the server controls.
    COMPROMISE = "compromise"
    #: Cache or answer corruption without full host control; still enough to
    #: misdirect queries that pass through the server.
    CORRUPTION = "corruption"
    #: Crash or hang the server; useful to knock out "safe" bottlenecks.
    DENIAL_OF_SERVICE = "dos"


@dataclasses.dataclass(frozen=True)
class Vulnerability:
    """A single known vulnerability with its affected version range."""

    ident: str
    summary: str
    branch: int                 # BIND major version line the range applies to
    affected_low: BindVersion
    affected_high: BindVersion
    severity: Severity
    capability: Capability
    year: int

    def affects(self, version: BindVersion) -> bool:
        """True if ``version`` falls inside the affected range."""
        if version.major != self.branch:
            return False
        return version.in_range(self.affected_low, self.affected_high)

    def __str__(self) -> str:
        return (f"{self.ident} (BIND {self.affected_low}..{self.affected_high}, "
                f"{self.severity.name}, {self.capability.value})")


def _vuln(ident: str, summary: str, low: str, high: str, severity: Severity,
          capability: Capability, year: int) -> Vulnerability:
    low_v, high_v = version_range(low, high)
    return Vulnerability(ident=ident, summary=summary, branch=low_v.major,
                         affected_low=low_v, affected_high=high_v,
                         severity=severity, capability=capability, year=year)


#: The default catalogue: the well-documented BIND 4/8/9 holes that the
#: survey's analysis relies on.  Ranges are inclusive and scoped to a single
#: major release line; a hole spanning two lines appears twice.
DEFAULT_VULNERABILITIES: Tuple[Vulnerability, ...] = (
    # --- BIND 4 line -------------------------------------------------------
    _vuln("nxt4", "NXT record processing buffer overflow", "4.9.0", "4.9.6",
          Severity.CRITICAL, Capability.COMPROMISE, 1999),
    _vuln("infoleak4", "Information leak via inverse query", "4.9.0", "4.9.6",
          Severity.MEDIUM, Capability.CORRUPTION, 1999),
    _vuln("libbind4", "libbind resolver buffer overflow", "4.9.0", "4.9.10",
          Severity.HIGH, Capability.COMPROMISE, 2002),
    # --- BIND 8 line -------------------------------------------------------
    _vuln("nxt", "NXT record processing remote root", "8.2.0", "8.2.1",
          Severity.CRITICAL, Capability.COMPROMISE, 1999),
    _vuln("zxfr", "Compressed zone transfer (ZXFR) crash", "8.2.0", "8.2.2",
          Severity.MEDIUM, Capability.DENIAL_OF_SERVICE, 2000),
    _vuln("tsig", "TSIG signature handling buffer overflow", "8.2.0", "8.2.3",
          Severity.CRITICAL, Capability.COMPROMISE, 2001),
    _vuln("libbind", "libbind/gethostbyname buffer overflow", "8.2.0", "8.2.6",
          Severity.HIGH, Capability.COMPROMISE, 2002),
    _vuln("negcache", "Negative cache poisoning of authoritative data",
          "8.2.0", "8.2.6", Severity.HIGH, Capability.CORRUPTION, 2002),
    _vuln("sigrec", "SIG record cached RR buffer overflow", "8.2.0", "8.2.6",
          Severity.CRITICAL, Capability.COMPROMISE, 2002),
    _vuln("dos-multi", "Multiple denial-of-service flaws (OPT/SIG)",
          "8.2.0", "8.2.6", Severity.MEDIUM, Capability.DENIAL_OF_SERVICE, 2002),
    _vuln("srv8", "SRV record denial of service", "8.3.0", "8.3.2",
          Severity.MEDIUM, Capability.DENIAL_OF_SERVICE, 2002),
    _vuln("sig8", "SIG RR overflow in BIND 8.3", "8.3.0", "8.3.3",
          Severity.CRITICAL, Capability.COMPROMISE, 2002),
    _vuln("maxdname", "maxdname buffer overflow", "8.3.0", "8.3.4",
          Severity.HIGH, Capability.COMPROMISE, 2003),
    # --- BIND 9 line -------------------------------------------------------
    _vuln("bind9-dos", "Malformed rdataset assertion failure", "9.0.0", "9.2.0",
          Severity.MEDIUM, Capability.DENIAL_OF_SERVICE, 2002),
    _vuln("bind9-selfcheck", "Self check failing assertion (DoS)",
          "9.2.0", "9.2.1", Severity.MEDIUM, Capability.DENIAL_OF_SERVICE, 2002),
    _vuln("bind9-negcache", "Negative cache poisoning via DS records",
          "9.2.0", "9.2.2", Severity.HIGH, Capability.CORRUPTION, 2003),
)


class VulnerabilityDatabase:
    """Look-up service mapping version banners to known vulnerabilities.

    Parameters
    ----------
    vulnerabilities:
        The catalogue to serve.  Defaults to :data:`DEFAULT_VULNERABILITIES`.
    treat_unknown_as_safe:
        The paper assumes servers whose version is unknown are safe ("the
        results presented here are optimistic"); setting this to False flips
        that assumption for sensitivity analysis.
    """

    def __init__(self,
                 vulnerabilities: Optional[Iterable[Vulnerability]] = None,
                 treat_unknown_as_safe: bool = True):
        self._vulnerabilities: List[Vulnerability] = list(
            vulnerabilities if vulnerabilities is not None
            else DEFAULT_VULNERABILITIES)
        self.treat_unknown_as_safe = treat_unknown_as_safe
        self._cache: Dict[Optional[str], Tuple[Vulnerability, ...]] = {}

    def __len__(self) -> int:
        return len(self._vulnerabilities)

    def __iter__(self) -> Iterator[Vulnerability]:
        return iter(self._vulnerabilities)

    def add(self, vulnerability: Vulnerability) -> None:
        """Add a vulnerability to the catalogue (invalidates the cache)."""
        self._vulnerabilities.append(vulnerability)
        self._cache.clear()

    def find(self, ident: str) -> Optional[Vulnerability]:
        """Return the vulnerability with identifier ``ident``, if present."""
        for vulnerability in self._vulnerabilities:
            if vulnerability.ident == ident:
                return vulnerability
        return None

    # -- banner-level queries ----------------------------------------------------

    def vulnerabilities_for(self, banner: Optional[str]
                            ) -> Tuple[Vulnerability, ...]:
        """All catalogue entries affecting the given version banner."""
        if banner in self._cache:
            return self._cache[banner]
        version = BindVersion.parse(banner)
        if version is None:
            result: Tuple[Vulnerability, ...] = ()
            if not self.treat_unknown_as_safe and banner:
                # Pessimistic mode: unknown banners are flagged with a
                # synthetic "unknown-software" marker entry.
                result = (Vulnerability(
                    ident="unknown-software",
                    summary="unparseable or hidden version banner",
                    branch=0, affected_low=BindVersion(0, 0, 0),
                    affected_high=BindVersion(0, 0, 0),
                    severity=Severity.LOW, capability=Capability.CORRUPTION,
                    year=0),)
        else:
            result = tuple(v for v in self._vulnerabilities if v.affects(version))
        self._cache[banner] = result
        return result

    def is_vulnerable(self, banner: Optional[str]) -> bool:
        """True if any known vulnerability affects the banner."""
        return bool(self.vulnerabilities_for(banner))

    def is_compromisable(self, banner: Optional[str]) -> bool:
        """True if the banner is affected by a hole granting control.

        This counts COMPROMISE and CORRUPTION capabilities — both let an
        attacker misdirect queries passing through the server — but not
        DoS-only holes.
        """
        return any(v.capability in (Capability.COMPROMISE, Capability.CORRUPTION)
                   for v in self.vulnerabilities_for(banner))

    def worst_severity(self, banner: Optional[str]) -> Optional[Severity]:
        """The highest severity affecting the banner, or ``None``."""
        found = self.vulnerabilities_for(banner)
        if not found:
            return None
        return max(v.severity for v in found)

    def exploit_names(self, banner: Optional[str]) -> List[str]:
        """Identifiers of the exploits affecting the banner."""
        return [v.ident for v in self.vulnerabilities_for(banner)]

    # -- server-level conveniences --------------------------------------------------

    def classify_server(self, server) -> str:
        """Classify a server as 'compromisable', 'dos-only', or 'safe'."""
        found = self.vulnerabilities_for(server.software)
        if not found:
            return "safe"
        if any(v.capability in (Capability.COMPROMISE, Capability.CORRUPTION)
               for v in found):
            return "compromisable"
        return "dos-only"

    def summary(self) -> Dict[str, int]:
        """Catalogue statistics keyed by capability name."""
        counts: Dict[str, int] = {}
        for vulnerability in self._vulnerabilities:
            counts[vulnerability.capability.value] = \
                counts.get(vulnerability.capability.value, 0) + 1
        return counts


def default_database() -> VulnerabilityDatabase:
    """Return a fresh database loaded with the default catalogue."""
    return VulnerabilityDatabase()
