"""IPv4 address utilities and allocation.

The topology generator needs unique, plausible-looking addresses for tens of
thousands of simulated nameservers.  :class:`IPv4Allocator` hands out
addresses from configurable prefixes, one prefix per operator or region, so
that addresses carry a hint of who owns them (useful when reading survey
output and when grouping servers by operator).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.dns.errors import DNSError


class AddressExhaustedError(DNSError):
    """An allocator ran out of addresses in its prefix."""


def is_valid_ipv4(address: str) -> bool:
    """Return True if ``address`` is a syntactically valid dotted quad."""
    parts = address.split(".")
    if len(parts) != 4:
        return False
    for part in parts:
        if not part.isdigit():
            return False
        if not 0 <= int(part) <= 255:
            return False
        if len(part) > 1 and part[0] == "0":
            return False
    return True


def ipv4_to_int(address: str) -> int:
    """Convert a dotted quad to its 32-bit integer value."""
    if not is_valid_ipv4(address):
        raise ValueError(f"invalid IPv4 address: {address!r}")
    a, b, c, d = (int(part) for part in address.split("."))
    return (a << 24) | (b << 16) | (c << 8) | d

def int_to_ipv4(value: int) -> str:
    """Convert a 32-bit integer to a dotted quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"value out of range for IPv4: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_prefix(prefix: str) -> Tuple[int, int]:
    """Parse ``"a.b.c.d/len"`` into (network integer, prefix length)."""
    try:
        base, length_text = prefix.split("/")
        length = int(length_text)
    except ValueError as exc:
        raise ValueError(f"invalid prefix: {prefix!r}") from exc
    if not 0 <= length <= 32:
        raise ValueError(f"invalid prefix length in {prefix!r}")
    network = ipv4_to_int(base)
    mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    return network & mask, length


class IPv4Allocator:
    """Sequential address allocator over one or more prefixes.

    Parameters
    ----------
    default_prefix:
        Prefix used when a pool name has not been registered explicitly.
        Pools are carved out of this prefix on demand.
    """

    def __init__(self, default_prefix: str = "10.0.0.0/8"):
        self._default_network, self._default_length = parse_prefix(default_prefix)
        self._pools: Dict[str, Tuple[int, int, int]] = {}
        self._next_pool_offset = 0
        self._allocated: Dict[str, str] = {}

    def register_pool(self, pool: str, prefix: str) -> None:
        """Register an explicit prefix for ``pool``."""
        network, length = parse_prefix(prefix)
        self._pools[pool] = (network, length, 1)

    def _ensure_pool(self, pool: str) -> None:
        if pool in self._pools:
            return
        # Carve a /24 out of the default prefix for each new pool.
        network = self._default_network + (self._next_pool_offset << 8)
        self._next_pool_offset += 1
        span = 1 << (32 - self._default_length)
        if (network - self._default_network) >= span:
            raise AddressExhaustedError(
                f"default prefix exhausted while creating pool {pool!r}")
        self._pools[pool] = (network, 24, 1)

    def allocate(self, pool: str = "default", owner: Optional[str] = None) -> str:
        """Allocate the next free address in ``pool``.

        ``owner`` is recorded for debugging/reporting; passing the same owner
        twice returns two distinct addresses (hosts may be multi-homed).
        """
        self._ensure_pool(pool)
        network, length, next_host = self._pools[pool]
        host_span = 1 << (32 - length)
        if next_host >= host_span - 1:
            raise AddressExhaustedError(f"pool {pool!r} exhausted")
        address = int_to_ipv4(network + next_host)
        self._pools[pool] = (network, length, next_host + 1)
        if owner is not None:
            self._allocated[address] = owner
        return address

    def owner_of(self, address: str) -> Optional[str]:
        """The owner label recorded at allocation time, if any."""
        return self._allocated.get(address)

    def allocated_count(self) -> int:
        """Total number of addresses handed out with a recorded owner."""
        return len(self._allocated)

    def iter_allocations(self) -> Iterator[Tuple[str, str]]:
        """Iterate over (address, owner) pairs."""
        return iter(self._allocated.items())
