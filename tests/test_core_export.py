"""Tests for :mod:`repro.core.export`."""

from repro.dns.name import DomainName
from repro.core.delegation import DelegationGraphBuilder
from repro.core.export import to_ascii_tree, to_dot, to_graphml, write_dot


def build_graph(mini_internet, name="www.uni.edu"):
    builder = DelegationGraphBuilder(mini_internet.make_resolver())
    return builder.build(name)


def test_ascii_tree_contains_all_dependencies(mini_internet):
    graph = build_graph(mini_internet)
    text = to_ascii_tree(graph)
    assert text.splitlines()[0].startswith("name www.uni.edu")
    for hostname in graph.tcb():
        assert str(hostname) in text
    for zone in graph.zones():
        assert str(zone) in text


def test_ascii_tree_marks_vulnerable_and_repeats(mini_internet):
    graph = build_graph(mini_internet)
    text = to_ascii_tree(graph,
                         {DomainName("dns2.partner.edu"): True})
    assert "[VULNERABLE]" in text
    assert "(see above)" in text


def test_ascii_tree_depth_limit(mini_internet):
    graph = build_graph(mini_internet)
    shallow = to_ascii_tree(graph, max_depth=1)
    assert len(shallow.splitlines()) < len(to_ascii_tree(graph).splitlines())


def test_dot_output_structure(mini_internet):
    graph = build_graph(mini_internet)
    dot = to_dot(graph, {DomainName("dns2.partner.edu"): True})
    assert dot.startswith("digraph delegation {")
    assert dot.rstrip().endswith("}")
    assert '"ns:dns2.partner.edu" [' in dot
    assert "lightcoral" in dot
    assert "->" in dot
    # Every edge in the graph appears in the DOT text.
    assert dot.count("->") == graph.edge_count()


def test_write_dot_and_graphml(tmp_path, mini_internet):
    graph = build_graph(mini_internet)
    dot_path = write_dot(graph, tmp_path / "out" / "graph.dot")
    assert dot_path.exists()
    assert "digraph" in dot_path.read_text()
    graphml_path = to_graphml(graph, tmp_path / "out" / "graph.graphml")
    assert graphml_path.exists()
    content = graphml_path.read_text()
    assert "graphml" in content
    assert "ns:dns1.uni.edu" in content
