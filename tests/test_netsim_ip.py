"""Tests for :mod:`repro.netsim.ip`."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.ip import (
    AddressExhaustedError,
    IPv4Allocator,
    int_to_ipv4,
    ipv4_to_int,
    is_valid_ipv4,
    parse_prefix,
)


@pytest.mark.parametrize("address", ["0.0.0.0", "10.0.0.1", "255.255.255.255",
                                     "192.168.1.254"])
def test_valid_addresses(address):
    assert is_valid_ipv4(address)


@pytest.mark.parametrize("address", ["", "10.0.0", "10.0.0.0.1", "256.0.0.1",
                                     "10.-1.0.1", "a.b.c.d", "01.2.3.4",
                                     "10..0.1"])
def test_invalid_addresses(address):
    assert not is_valid_ipv4(address)


def test_ipv4_int_roundtrip_known_values():
    assert ipv4_to_int("0.0.0.1") == 1
    assert ipv4_to_int("1.0.0.0") == 1 << 24
    assert int_to_ipv4(ipv4_to_int("10.20.30.40")) == "10.20.30.40"


def test_ipv4_to_int_rejects_invalid():
    with pytest.raises(ValueError):
        ipv4_to_int("999.0.0.1")
    with pytest.raises(ValueError):
        int_to_ipv4(1 << 33)


def test_parse_prefix():
    network, length = parse_prefix("10.1.2.0/24")
    assert int_to_ipv4(network) == "10.1.2.0"
    assert length == 24
    # Host bits are masked off.
    network, _ = parse_prefix("10.1.2.77/24")
    assert int_to_ipv4(network) == "10.1.2.0"


@pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "x/24",
                                 "10.0.0.0/-1"])
def test_parse_prefix_rejects_bad_input(bad):
    with pytest.raises(ValueError):
        parse_prefix(bad)


def test_allocator_assigns_unique_addresses():
    allocator = IPv4Allocator()
    seen = {allocator.allocate(pool="x", owner=f"host{i}") for i in range(50)}
    assert len(seen) == 50
    assert all(is_valid_ipv4(address) for address in seen)


def test_allocator_separates_pools():
    allocator = IPv4Allocator()
    a = allocator.allocate(pool="org-a")
    b = allocator.allocate(pool="org-b")
    assert a.rsplit(".", 1)[0] != b.rsplit(".", 1)[0]


def test_allocator_tracks_owners():
    allocator = IPv4Allocator()
    address = allocator.allocate(pool="x", owner="ns1.example.com")
    assert allocator.owner_of(address) == "ns1.example.com"
    assert allocator.owner_of("203.0.113.1") is None
    assert allocator.allocated_count() == 1
    assert dict(allocator.iter_allocations())[address] == "ns1.example.com"


def test_explicit_pool_registration():
    allocator = IPv4Allocator()
    allocator.register_pool("registry", "192.5.6.0/24")
    address = allocator.allocate(pool="registry")
    assert address.startswith("192.5.6.")


def test_pool_exhaustion_raises():
    allocator = IPv4Allocator()
    allocator.register_pool("tiny", "10.9.9.0/30")
    allocator.allocate(pool="tiny")
    allocator.allocate(pool="tiny")
    with pytest.raises(AddressExhaustedError):
        allocator.allocate(pool="tiny")


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_int_ipv4_roundtrip_property(value):
    assert ipv4_to_int(int_to_ipv4(value)) == value
