"""Length-prefixed TCP framing for the distributed survey.

Every message between the coordinator and a worker is one *frame*: a
fixed 20-byte header (magic, protocol version, frame type, payload CRC32,
payload length) followed by the payload bytes.  Control payloads (BUILD,
ERROR) are JSON; bulk payloads (SURVEY work orders, RESULT shard columns)
are REPRO-SNAP containers from :mod:`repro.core.snapstore`, so the wire
reuses the exact column codec the snapshot files use — a worker's RESULT
payload is byte-for-byte a ``KIND_SHARD`` container.

Failure surfaces are precise by design: a truncated stream names the
frame part and byte counts it died in, a checksum mismatch or bad magic
names the peer, and timeouts say what was being waited for.  All of them
raise :class:`WireError` (a :class:`DistribError`), which the CLI maps to
exit 2.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.snapstore import (KIND_ORDER, _Pool, _PoolWriter,
                                  _SectionReader, _SectionWriter)


class DistribError(RuntimeError):
    """A distributed-survey failure (connection, protocol, or worker)."""


class WireError(DistribError):
    """A malformed, truncated, or timed-out frame on the wire."""


WIRE_MAGIC = b"RDWP"
WIRE_VERSION = 1

#: magic, version, frame type, reserved, payload crc32, payload length
_FRAME_HEADER = struct.Struct("<4sBBHIQ")
FRAME_HEADER_SIZE = _FRAME_HEADER.size

FRAME_BUILD = 1     # coordinator -> worker: JSON world + engine config
FRAME_SURVEY = 2    # coordinator -> worker: KIND_ORDER work order
FRAME_RESULT = 3    # worker -> coordinator: KIND_SHARD columns
FRAME_OK = 4        # worker -> coordinator: ack with no payload
FRAME_ERROR = 5     # worker -> coordinator: JSON {"error": message}
FRAME_SHUTDOWN = 6  # coordinator -> worker: exit after acking

FRAME_NAMES = {FRAME_BUILD: "BUILD", FRAME_SURVEY: "SURVEY",
               FRAME_RESULT: "RESULT", FRAME_OK: "OK",
               FRAME_ERROR: "ERROR", FRAME_SHUTDOWN: "SHUTDOWN"}

#: Sanity bound on a header's claimed payload length: a corrupt length
#: field should fail loudly, not allocate garbage or stall the reader.
MAX_FRAME_PAYLOAD = 1 << 32


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``host:port`` (raises :class:`DistribError` on bad input)."""
    host, _, port_text = address.rpartition(":")
    if not host or not port_text.isdigit():
        raise DistribError(
            f"invalid worker address {address!r}: expected host:port")
    return host, int(port_text)


def send_frame(sock: socket.socket, frame_type: int,
               payload: bytes = b"") -> int:
    """Send one frame; returns the total bytes put on the wire."""
    payload = bytes(payload)
    header = _FRAME_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, frame_type, 0,
                                zlib.crc32(payload), len(payload))
    try:
        sock.sendall(header + payload)
    except OSError as error:
        raise WireError(f"connection lost while sending "
                        f"{FRAME_NAMES.get(frame_type, frame_type)} frame: "
                        f"{error}") from error
    return len(header) + len(payload)


def _recv_exact(sock: socket.socket, count: int, peer: str,
                what: str) -> bytes:
    buffer = bytearray()
    while len(buffer) < count:
        try:
            chunk = sock.recv(count - len(buffer))
        except socket.timeout as error:
            raise WireError(
                f"{peer}: timed out waiting for {what} "
                f"({len(buffer)}/{count} bytes received)") from error
        except OSError as error:
            raise WireError(
                f"{peer}: connection error while reading {what}: "
                f"{error}") from error
        if not chunk:
            raise WireError(
                f"{peer}: connection closed mid-{what} "
                f"({len(buffer)}/{count} bytes received)")
        buffer.extend(chunk)
    return bytes(buffer)


def recv_frame(sock: socket.socket, timeout: Optional[float] = None,
               peer: str = "peer") -> Tuple[int, bytes]:
    """Receive one complete frame, validating magic, version, and CRC.

    ``timeout`` (when given) is installed on the socket and bounds every
    individual read; EOF, truncation, and corruption each raise a
    :class:`WireError` naming the peer and the frame part that failed.
    """
    if timeout is not None:
        sock.settimeout(timeout)
    head = _recv_exact(sock, FRAME_HEADER_SIZE, peer, "frame header")
    magic, version, frame_type, _reserved, crc, length = \
        _FRAME_HEADER.unpack(head)
    if magic != WIRE_MAGIC:
        raise WireError(f"{peer}: bad frame magic {magic!r} "
                        f"(corrupt or non-protocol stream)")
    if version != WIRE_VERSION:
        raise WireError(f"{peer}: unsupported protocol version {version} "
                        f"(this side speaks {WIRE_VERSION})")
    if frame_type not in FRAME_NAMES:
        raise WireError(f"{peer}: unknown frame type {frame_type}")
    if length > MAX_FRAME_PAYLOAD:
        raise WireError(f"{peer}: implausible {FRAME_NAMES[frame_type]} "
                        f"payload length {length} (corrupt header)")
    payload = (_recv_exact(sock, length, peer,
                           f"{FRAME_NAMES[frame_type]} payload")
               if length else b"")
    if zlib.crc32(payload) != crc:
        raise WireError(f"{peer}: {FRAME_NAMES[frame_type]} payload "
                        f"checksum mismatch (corrupt frame)")
    return frame_type, payload


def error_payload(message: str) -> bytes:
    return json.dumps({"error": message}).encode("utf-8")


def decode_error(payload: bytes, peer: str) -> str:
    try:
        return str(json.loads(payload.decode("utf-8"))["error"])
    except (ValueError, KeyError, UnicodeDecodeError):
        return f"unreadable ERROR payload ({len(payload)} bytes)"


# -- work orders -------------------------------------------------------------------------
#
# A SURVEY payload is a KIND_ORDER REPRO-SNAP container: the shard's
# global record indices, name texts (pooled), popular flags, the full
# mutation-spec history (workers apply only the tail they have not seen),
# and the epoch's complete dirty-name set (every worker must invalidate
# *all* dirty names — a name surveyed by another worker this epoch may be
# striped onto this one next epoch, and its cached dependency row must
# not survive the change that dirtied it).


def pack_work_order(indices: Sequence[int], names: Sequence[str],
                    popular_flags: Sequence[bool], specs: Sequence[str],
                    dirty_names: Sequence[str]) -> bytes:
    writer = _SectionWriter(None, KIND_ORDER)
    pool = _PoolWriter()
    writer.add("order.idx", array("q", indices))
    writer.add("order.name", array("q", [pool.intern(name)
                                         for name in names]))
    writer.add("order.pop", bytes(1 if flag else 0
                                  for flag in popular_flags))
    writer.add("order.dirty", array("q", [pool.intern(name)
                                          for name in dirty_names]))
    writer.add_json("specs", list(specs))
    pool.write(writer, "strs")
    return writer.close_to_bytes()


def unpack_work_order(payload: bytes, label: str = "<work order>"
                      ) -> Tuple[List[int], List[str], List[bool],
                                 List[str], List[str]]:
    reader = _SectionReader(payload, KIND_ORDER, label=label)
    pool = _Pool(reader, "strs")
    indices = list(reader.q("order.idx"))
    names = [pool.text(name_id) for name_id in reader.q("order.name")]
    popular_flags = [bool(flag) for flag in reader.bytes_view("order.pop")]
    dirty = [pool.text(name_id) for name_id in reader.q("order.dirty")]
    specs = [str(spec) for spec in reader.json("specs")]
    return indices, names, popular_flags, specs, dirty
