"""Parsing and ordering of BIND version banners.

The survey fingerprints servers via ``version.bind`` and needs to decide, for
a banner such as ``"BIND 8.2.4-REL"`` or ``"9.2.1"``, which known
vulnerabilities apply.  Affected ranges in the catalogue are expressed over
(major, minor, patch) tuples, so this module provides a small, forgiving
parser plus total ordering within a major release line.
"""

from __future__ import annotations

import dataclasses
import functools
import re
from typing import Optional, Tuple

_VERSION_RE = re.compile(
    r"(?:bind[\s_-]*)?v?(\d+)\.(\d+)(?:\.(\d+))?(?:[.\-]?(p\d+|rel|rc\d+|beta\d*|b\d+))?",
    re.IGNORECASE)


@functools.total_ordering
@dataclasses.dataclass(frozen=True)
class BindVersion:
    """A parsed BIND version number.

    The optional ``suffix`` (``p1``, ``REL``, ``rc2`` ...) is kept for
    display but ignored by the ordering, matching how ISC's advisory matrix
    groups releases.
    """

    major: int
    minor: int
    patch: int = 0
    suffix: str = ""

    @classmethod
    def parse(cls, banner: Optional[str]) -> Optional["BindVersion"]:
        """Parse a version banner; return ``None`` if nothing parseable.

        Real-world banners include strings like ``"BIND 8.2.4-REL"``,
        ``"9.2.3"``, ``"named 8.3.1"``, or deliberately obfuscated answers
        such as ``"SECRET"`` / ``"go away"`` which yield ``None``.
        """
        if not banner:
            return None
        match = _VERSION_RE.search(banner)
        if not match:
            return None
        major, minor, patch, suffix = match.groups()
        return cls(major=int(major), minor=int(minor),
                   patch=int(patch) if patch else 0,
                   suffix=(suffix or "").lower())

    @property
    def key(self) -> Tuple[int, int, int]:
        """The (major, minor, patch) tuple used for range comparisons."""
        return (self.major, self.minor, self.patch)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BindVersion):
            return NotImplemented
        return self.key == other.key

    def __lt__(self, other: "BindVersion") -> bool:
        if not isinstance(other, BindVersion):
            return NotImplemented
        return self.key < other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def in_range(self, low: "BindVersion", high: "BindVersion") -> bool:
        """True if this version lies in the inclusive range [low, high]."""
        return low.key <= self.key <= high.key

    def same_branch(self, other: "BindVersion") -> bool:
        """True if both versions belong to the same major release line."""
        return self.major == other.major

    def __str__(self) -> str:
        text = f"{self.major}.{self.minor}.{self.patch}"
        if self.suffix:
            text += f"-{self.suffix.upper()}"
        return text


def version_range(low: str, high: str) -> Tuple[BindVersion, BindVersion]:
    """Parse an inclusive version range from two banner strings."""
    low_version = BindVersion.parse(low)
    high_version = BindVersion.parse(high)
    if low_version is None or high_version is None:
        raise ValueError(f"unparseable version range: {low!r}..{high!r}")
    if high_version < low_version:
        raise ValueError(f"inverted version range: {low!r}..{high!r}")
    return low_version, high_version
