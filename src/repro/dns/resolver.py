"""Iterative DNS resolution over the simulated network.

:class:`IterativeResolver` implements the delegation-following algorithm of
RFC 1034: start from the root servers, follow referrals downwards, resolve
the addresses of out-of-bailiwick nameservers as needed, and return the final
authoritative answer.  Every query issued is recorded as a
:class:`ResolutionStep`, and the set of servers contacted is exposed on the
resulting :class:`ResolutionTrace` — this per-lookup record is the raw
material the survey aggregates.

Two aspects matter for the paper's analysis and are modelled explicitly:

* **Glue records** short-circuit address lookups for in-bailiwick
  nameservers.  They can be disabled (``use_glue=False``) to observe how much
  extra resolution work — and how many extra dependencies — they hide.
* **Zone-cut enumeration** (:meth:`IterativeResolver.zone_cut_chain`) walks
  the referral chain for a name and reports, for every zone on the path, the
  complete set of nameservers delegated to serve it.  The delegation-graph
  builder in :mod:`repro.core.delegation` uses this to compute the transitive
  closure of dependencies.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dns.cache import ResolverCache
from repro.dns.errors import ResolutionError, ServerFailureError
from repro.dns.message import Message, make_query
from repro.dns.name import DomainName, NameLike, ROOT_NAME
from repro.dns.rdtypes import RCode, RRType
from repro.dns.records import ResourceRecord


@dataclasses.dataclass
class ResolutionStep:
    """A single query/response exchange during resolution."""

    server: DomainName
    server_address: Optional[str]
    qname: DomainName
    rtype: RRType
    rcode: RCode
    kind: str  # "answer", "referral", "nxdomain", "nodata", "failure", "refused"
    zone: Optional[DomainName] = None

    def __str__(self) -> str:
        return (f"{self.qname}/{self.rtype.name} @ {self.server} "
                f"-> {self.kind} ({self.rcode.name})")


@dataclasses.dataclass
class ResolutionTrace:
    """The complete record of one name resolution."""

    qname: DomainName
    rtype: RRType
    rcode: RCode = RCode.SERVFAIL
    answers: List[ResourceRecord] = dataclasses.field(default_factory=list)
    steps: List[ResolutionStep] = dataclasses.field(default_factory=list)
    cname_chain: List[DomainName] = dataclasses.field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """True if resolution produced a NOERROR answer with records."""
        return self.rcode is RCode.NOERROR and bool(self.answers)

    @property
    def addresses(self) -> List[str]:
        """Address strings from the answer section."""
        return [str(r.rdata) for r in self.answers
                if r.rtype in (RRType.A, RRType.AAAA)]

    @property
    def servers_contacted(self) -> Set[DomainName]:
        """Hostnames of every server that answered (or failed) a query."""
        return {step.server for step in self.steps}

    @property
    def query_count(self) -> int:
        """Total number of queries issued."""
        return len(self.steps)

    def merge(self, other: "ResolutionTrace") -> None:
        """Fold another trace's steps into this one (for nested lookups)."""
        self.steps.extend(other.steps)


@dataclasses.dataclass
class ZoneCut:
    """One zone on the delegation path of a name.

    ``parent_nameservers`` is the NS set advertised by the parent (the
    delegation), ``apex_nameservers`` the NS set the zone publishes at its
    own apex.  The two can differ in real deployments; the delegation graph
    takes their union because either set can steer resolution.
    """

    zone: DomainName
    parent_nameservers: List[DomainName] = dataclasses.field(default_factory=list)
    apex_nameservers: List[DomainName] = dataclasses.field(default_factory=list)

    @property
    def nameservers(self) -> List[DomainName]:
        """Union of parent-side and apex NS sets, preserving order.

        Cuts are immutable once the chain walk has filled both NS lists, so
        the merged union is memoized (keyed on the list lengths, which is how
        the walk extends a cut).  Callers must not mutate the returned list.
        """
        token = (len(self.parent_nameservers), len(self.apex_nameservers))
        cached = getattr(self, "_merged_nameservers", None)
        if cached is not None and cached[0] == token:
            return cached[1]
        seen: Set[DomainName] = set()
        merged: List[DomainName] = []
        for ns in list(self.parent_nameservers) + list(self.apex_nameservers):
            if ns not in seen:
                seen.add(ns)
                merged.append(ns)
        self._merged_nameservers = (token, merged)
        return merged


class IterativeResolver:
    """An iterative resolver bound to a :class:`SimulatedNetwork`.

    Parameters
    ----------
    network:
        Transport used to reach authoritative servers.
    root_hints:
        Mapping from root-server hostname to its addresses (the hints file).
    cache:
        Optional shared cache.  ``None`` creates a private cache.
    use_glue:
        Whether glue addresses in referrals may be used directly.
    selection:
        Nameserver selection strategy: ``"first"`` (deterministic, follows
        the preferential order in the delegation) or ``"random"``.
    max_queries:
        Work budget per top-level :meth:`resolve` call; exceeding it raises
        :class:`ResolutionError` (guards against delegation loops).
    rng:
        Random generator used when ``selection="random"``.
    """

    def __init__(self, network, root_hints: Dict[NameLike, Sequence[str]],
                 cache: Optional[ResolverCache] = None, use_glue: bool = True,
                 selection: str = "first", max_queries: int = 400,
                 max_depth: int = 16, rng: Optional[random.Random] = None):
        if selection not in ("first", "random"):
            raise ValueError(f"unknown selection strategy: {selection!r}")
        self.network = network
        self.root_hints: Dict[DomainName, List[str]] = {
            DomainName(name): list(addresses)
            for name, addresses in root_hints.items()}
        if not self.root_hints:
            raise ResolutionError("resolver needs at least one root hint")
        self.cache = cache if cache is not None else ResolverCache()
        self.use_glue = use_glue
        self.selection = selection
        self.max_queries = max_queries
        self.max_depth = max_depth
        self._rng = rng or random.Random(0)
        # Apex NS answers are a property of the zone (the simulated network
        # is deterministic), so the zone-cut walk shares them across names:
        # every chain through "com" would otherwise re-issue the same NS
        # query.  Keyed on the target list as well so a walk arriving with
        # different candidate servers cannot be served a stale answer.
        self._apex_ns_cache: Dict[Tuple[DomainName, Tuple[str, ...]],
                                  List[DomainName]] = {}
        # Zone-cut chain prefixes: for every referral cut discovered by a
        # live walk, the chain from the top down to that cut plus the exact
        # candidate servers the walk would query next.  Later walks for
        # names under the same zone replay the prefix instead of re-walking
        # root -> TLD -> ... (only with deterministic "first" selection).
        self._chain_prefix_cache: Dict[
            DomainName,
            Tuple[List[ZoneCut],
                  List[Tuple[DomainName, Optional[str]]]]] = {}

    # -- public API -------------------------------------------------------------

    def clone(self, cache: Optional[ResolverCache] = None,
              share_cache: bool = False) -> "IterativeResolver":
        """A new resolver with the same configuration.

        By default the clone receives an independent snapshot of this
        resolver's cache (warm, but safe to use from another survey shard);
        pass ``share_cache=True`` to share the live cache object instead, or
        supply an explicit ``cache``.  The RNG state is copied so a cloned
        ``selection="random"`` resolver replays the same choices.
        """
        if cache is None:
            cache = self.cache if share_cache else self.cache.clone()
        rng = random.Random()
        rng.setstate(self._rng.getstate())
        return IterativeResolver(
            self.network,
            {name: list(addresses)
             for name, addresses in self.root_hints.items()},
            cache=cache, use_glue=self.use_glue, selection=self.selection,
            max_queries=self.max_queries, max_depth=self.max_depth, rng=rng)

    def invalidate_zones(self, apexes: Sequence[NameLike]) -> None:
        """Drop cached walk state that a change to the given zones stales.

        The delta-survey path: when a zone's NS set changes (or a new zone
        is cut below an existing one), every memoized chain prefix *on the
        edited apex's ancestor/descendant line* is dropped.  Descendant
        prefixes embed the old referral chain outright; ancestor prefixes
        must go too because a walk towards the edited zone resumes from
        them, and the zone's *new* servers may short-circuit that walk
        earlier than the cached candidates would (a server authoritative
        for both an ancestor-path zone and the edited zone answers
        directly instead of referring) — a cold walk from the root is the
        only state that reproduces the new termination behaviour.  Apex-NS
        memo entries for the apexes themselves are dropped likewise.  Walk
        state for unrelated subtrees (sibling branches, other TLDs) is
        kept: that carried warmth is what makes an incremental re-survey
        cheap, and each dropped ancestor prefix is rebuilt by one live
        walk.
        """
        apexes = [DomainName(apex) for apex in apexes]
        if not apexes:
            return
        self._chain_prefix_cache = {
            zone: entry for zone, entry in self._chain_prefix_cache.items()
            if not any(zone.is_subdomain_of(apex) or
                       apex.is_subdomain_of(zone)
                       for apex in apexes)}
        dropped = set(apexes)
        self._apex_ns_cache = {
            key: value for key, value in self._apex_ns_cache.items()
            if key[0] not in dropped}
        self.cache.purge(subtrees=apexes)

    def resolve(self, name: NameLike, rtype: RRType = RRType.A) -> ResolutionTrace:
        """Resolve ``name`` iteratively and return the full trace."""
        qname = DomainName(name)
        trace = ResolutionTrace(qname=qname, rtype=rtype)
        budget = _Budget(self.max_queries)
        try:
            self._resolve_into(qname, rtype, trace, budget, depth=0,
                               in_progress=set())
        except ResolutionError:
            trace.rcode = RCode.SERVFAIL
        return trace

    def resolve_address(self, hostname: NameLike) -> ResolutionTrace:
        """Resolve the A record of a nameserver hostname."""
        return self.resolve(hostname, RRType.A)

    def zone_cut_chain(self, name: NameLike,
                       include_apex_ns: bool = True) -> List[ZoneCut]:
        """Enumerate the zones (and their NS sets) on the path to ``name``.

        The chain starts below the root (the root zone itself is excluded,
        matching the paper's decision to leave root servers out of TCBs) and
        ends at the deepest zone cut above or at ``name``.
        """
        qname = DomainName(name)
        budget = _Budget(self.max_queries)
        trace = ResolutionTrace(qname=qname, rtype=RRType.A)
        cuts: List[ZoneCut] = []

        # The walk down to a shared ancestor zone (root -> com -> sld...) is
        # identical for every name below it, so replay the deepest cached
        # prefix and continue live from there.  Prefixes record the exact
        # candidate-server state of the live walk at that point, which keeps
        # the replayed walk byte-identical; caching is only sound for the
        # deterministic "first" selection and the apex-inclusive mode the
        # delegation builder uses.
        use_prefix_cache = include_apex_ns and self.selection == "first"
        current_servers: Optional[List[Tuple[DomainName, Optional[str]]]] = None
        visited_zones: Set[DomainName] = {ROOT_NAME}
        if use_prefix_cache:
            prefix_zone: Optional[DomainName] = None
            for ancestor in qname.ancestors(include_self=True):
                if ancestor in self._chain_prefix_cache and (
                        prefix_zone is None or
                        ancestor.depth > prefix_zone.depth):
                    prefix_zone = ancestor
            if prefix_zone is not None:
                cached_cuts, cached_servers = \
                    self._chain_prefix_cache[prefix_zone]
                cuts = list(cached_cuts)
                current_servers = list(cached_servers)
                visited_zones |= {cut.zone for cut in cuts}
        if current_servers is None:
            current_servers = self._root_server_candidates()

        for _ in range(self.max_depth):
            result = self._query_candidates(
                current_servers, qname, RRType.A, trace, budget)
            if result is None:
                break
            response, _server = result
            if response.is_referral:
                child = self._referral_child_zone(response)
                if child is None or child in visited_zones:
                    break
                visited_zones.add(child)
                cut = ZoneCut(zone=child,
                              parent_nameservers=response.referral_nameservers())
                if include_apex_ns:
                    cut.apex_nameservers = self._lookup_apex_ns(
                        child, response, trace, budget)
                cuts.append(cut)
                current_servers = self._candidates_from_referral(
                    response, trace, budget, resolve_addresses=False)
                if use_prefix_cache and child not in self._chain_prefix_cache:
                    self._chain_prefix_cache[child] = (list(cuts),
                                                       list(current_servers))
                continue
            # Authoritative answer, NXDOMAIN, or NODATA: chain is complete.
            break

        # Zone cuts deeper than the last referral can be invisible to the
        # walk when the same server is authoritative for both the parent and
        # the child (it answers directly instead of referring).  Probe every
        # ancestor of the queried name below the last seen cut with an NS
        # query so such hidden cuts (e.g. cs.cornell.edu served by the
        # cornell.edu servers) still contribute their nameserver sets.
        if include_apex_ns and cuts:
            last_zone = cuts[-1].zone
            targets = [str(ns) for ns in cuts[-1].nameservers]
            hidden = [ancestor for ancestor
                      in qname.ancestors(include_self=True)
                      if ancestor.is_subdomain_of(last_zone, proper=True)]
            for ancestor in sorted(hidden, key=lambda name: name.depth):
                apex_ns = self._lookup_apex_ns_from_servers(
                    ancestor, targets, trace, budget)
                if apex_ns:
                    cuts.append(ZoneCut(zone=ancestor, parent_nameservers=[],
                                        apex_nameservers=apex_ns))
                    targets = [str(ns) for ns in apex_ns]
        return cuts

    # -- internals: full resolution -----------------------------------------------

    def _resolve_into(self, qname: DomainName, rtype: RRType,
                      trace: ResolutionTrace, budget: "_Budget", depth: int,
                      in_progress: Set[Tuple[DomainName, RRType]]) -> None:
        """Resolve ``qname`` and populate ``trace`` (answers + rcode)."""
        if depth > self.max_depth:
            raise ResolutionError(f"max depth exceeded resolving {qname}")
        key = (qname, rtype)
        if key in in_progress:
            raise ResolutionError(f"resolution cycle detected at {qname}")
        in_progress = in_progress | {key}

        cached = self.cache.get(qname, rtype, now=self.network.now)
        if cached is not None:
            trace.answers = list(cached.records)
            trace.rcode = cached.rcode
            return

        current_servers = self._root_server_candidates()
        for _ in range(self.max_depth):
            result = self._query_candidates(current_servers, qname, rtype,
                                            trace, budget)
            if result is None:
                trace.rcode = RCode.SERVFAIL
                return
            response, _server = result

            if response.is_referral:
                current_servers = self._candidates_from_referral(
                    response, trace, budget, depth=depth,
                    in_progress=in_progress)
                if not current_servers:
                    trace.rcode = RCode.SERVFAIL
                    return
                continue

            if response.rcode is RCode.NXDOMAIN:
                trace.rcode = RCode.NXDOMAIN
                self.cache.put(qname, rtype, [], rcode=RCode.NXDOMAIN,
                               now=self.network.now)
                return

            answers = list(response.answers)
            # Follow a terminal CNAME that points outside the answering zone.
            cname_target = self._pending_cname_target(answers, qname, rtype)
            trace.answers.extend(answers)
            if cname_target is not None:
                trace.cname_chain.append(cname_target)
                sub = ResolutionTrace(qname=cname_target, rtype=rtype)
                self._resolve_into(cname_target, rtype, sub, budget,
                                   depth + 1, in_progress)
                trace.merge(sub)
                trace.answers.extend(sub.answers)
                trace.rcode = sub.rcode
            else:
                trace.rcode = response.rcode
            if trace.rcode is RCode.NOERROR:
                self.cache.put(qname, rtype, trace.answers,
                               now=self.network.now)
            return
        raise ResolutionError(f"too many referrals resolving {qname}")

    def _pending_cname_target(self, answers: List[ResourceRecord],
                              qname: DomainName,
                              rtype: RRType) -> Optional[DomainName]:
        """If the answer is a bare CNAME chain, return the unresolved target."""
        if rtype is RRType.CNAME:
            return None
        has_final = any(r.rtype is rtype for r in answers)
        if has_final:
            return None
        cnames = [r for r in answers if r.rtype is RRType.CNAME]
        if not cnames:
            return None
        target = cnames[-1].rdata
        return target if isinstance(target, DomainName) else None

    # -- internals: candidate servers ----------------------------------------------

    def _root_server_candidates(self) -> List[Tuple[DomainName, Optional[str]]]:
        """(hostname, address) pairs for the configured root servers."""
        candidates = []
        for hostname, addresses in self.root_hints.items():
            candidates.append((hostname, addresses[0] if addresses else None))
        return self._order(candidates)

    def _order(self, candidates: List[Tuple[DomainName, Optional[str]]]
               ) -> List[Tuple[DomainName, Optional[str]]]:
        if self.selection == "random":
            candidates = list(candidates)
            self._rng.shuffle(candidates)
        return candidates

    def _candidates_from_referral(self, response: Message,
                                  trace: ResolutionTrace, budget: "_Budget",
                                  depth: int = 0,
                                  in_progress: Optional[Set] = None,
                                  resolve_addresses: bool = True
                                  ) -> List[Tuple[DomainName, Optional[str]]]:
        """Turn a referral into a list of contactable (hostname, address) pairs.

        Glue addresses are used when allowed; otherwise the nameserver
        hostnames are resolved recursively (those lookups are merged into the
        trace, because they are part of the dependency structure).  With
        ``resolve_addresses=False`` missing glue is left as ``None`` and the
        transport falls back to hostname routing — used by the zone-cut walk,
        which only needs the delegation structure, not the address chase.
        """
        in_progress = in_progress or set()
        candidates: List[Tuple[DomainName, Optional[str]]] = []
        for nameserver in response.referral_nameservers():
            address: Optional[str] = None
            if self.use_glue:
                glue = response.glue_addresses(nameserver)
                if glue:
                    address = glue[0]
            if address is None and resolve_addresses:
                address = self._resolve_nameserver_address(
                    nameserver, trace, budget, depth, in_progress)
            candidates.append((nameserver, address))
        return self._order(candidates)

    def _resolve_nameserver_address(self, nameserver: DomainName,
                                    trace: ResolutionTrace, budget: "_Budget",
                                    depth: int,
                                    in_progress: Set) -> Optional[str]:
        """Resolve a nameserver's address via a nested iterative lookup."""
        if (nameserver, RRType.A) in in_progress:
            return None
        cached = self.cache.get(nameserver, RRType.A, now=self.network.now)
        if cached is not None and not cached.is_negative:
            addresses = [str(r.rdata) for r in cached.records
                         if r.rtype is RRType.A]
            if addresses:
                return addresses[0]
        sub = ResolutionTrace(qname=nameserver, rtype=RRType.A)
        try:
            self._resolve_into(nameserver, RRType.A, sub, budget,
                               depth + 1, in_progress)
        except ResolutionError:
            trace.merge(sub)
            return None
        trace.merge(sub)
        addresses = sub.addresses
        return addresses[0] if addresses else None

    def _query_candidates(self, candidates: List[Tuple[DomainName, Optional[str]]],
                          qname: DomainName, rtype: RRType,
                          trace: ResolutionTrace, budget: "_Budget"
                          ) -> Optional[Tuple[Message, DomainName]]:
        """Query candidate servers in order until one gives a usable response."""
        for hostname, address in candidates:
            target = address if address is not None else str(hostname)
            budget.spend(qname)
            query = make_query(qname, rtype)
            try:
                response = self.network.send_query(target, query)
            except ServerFailureError:
                trace.steps.append(ResolutionStep(
                    server=hostname, server_address=address, qname=qname,
                    rtype=rtype, rcode=RCode.SERVFAIL, kind="failure"))
                continue
            kind = self._classify(response)
            trace.steps.append(ResolutionStep(
                server=hostname, server_address=address, qname=qname,
                rtype=rtype, rcode=response.rcode, kind=kind,
                zone=self._referral_child_zone(response)))
            if kind == "refused":
                continue
            return response, hostname
        return None

    @staticmethod
    def _classify(response: Message) -> str:
        if response.rcode is RCode.REFUSED:
            return "refused"
        if response.is_referral:
            return "referral"
        if response.rcode is RCode.NXDOMAIN:
            return "nxdomain"
        if response.answers:
            return "answer"
        return "nodata"

    @staticmethod
    def _referral_child_zone(response: Message) -> Optional[DomainName]:
        """The child zone apex named by a referral's authority section."""
        for record in response.authority:
            if record.rtype is RRType.NS:
                return record.name
        return None

    # -- internals: apex NS lookups --------------------------------------------------

    def _lookup_apex_ns(self, zone: DomainName, referral: Message,
                        trace: ResolutionTrace, budget: "_Budget"
                        ) -> List[DomainName]:
        """Query the zone's own servers for its apex NS set."""
        targets: List[str] = []
        for nameserver in referral.referral_nameservers():
            glue = referral.glue_addresses(nameserver)
            targets.append(glue[0] if glue else str(nameserver))
        return self._lookup_apex_ns_from_servers(zone, targets, trace, budget)

    def _lookup_apex_ns_from_servers(self, zone: DomainName,
                                     targets: List[str],
                                     trace: ResolutionTrace, budget: "_Budget"
                                     ) -> List[DomainName]:
        key = (zone, tuple(targets))
        cached = self._apex_ns_cache.get(key)
        if cached is not None:
            return list(cached)
        nameservers = self._lookup_apex_ns_uncached(zone, targets, trace,
                                                    budget)
        self._apex_ns_cache[key] = list(nameservers)
        return nameservers

    def _lookup_apex_ns_uncached(self, zone: DomainName, targets: List[str],
                                 trace: ResolutionTrace, budget: "_Budget"
                                 ) -> List[DomainName]:
        for target in targets:
            budget.spend(zone)
            query = make_query(zone, RRType.NS)
            try:
                response = self.network.send_query(target, query)
            except ServerFailureError:
                continue
            nameservers = [r.rdata for r in response.answers
                           if r.rtype is RRType.NS and
                           isinstance(r.rdata, DomainName)]
            if nameservers:
                return nameservers
        return []


class _Budget:
    """Per-resolution query budget guarding against runaway recursion."""

    def __init__(self, limit: int):
        self.limit = limit
        self.spent = 0

    def spend(self, qname: DomainName) -> None:
        self.spent += 1
        if self.spent > self.limit:
            raise ResolutionError(
                f"query budget ({self.limit}) exhausted while resolving {qname}")
