"""Delegation graphs: the transitive closure of nameserver dependencies.

Section 2 of the paper defines the delegation graph of a domain name as the
transitive closure of all nameservers that could be involved in its
resolution: the name depends on every zone on its delegation path; each zone
depends on each of its nameservers; and each nameserver's own hostname must
in turn be resolved, which drags in the zones (and nameservers) on *its*
delegation path, and so on.

:class:`DelegationGraphBuilder` discovers this structure by issuing real
queries through an :class:`~repro.dns.resolver.IterativeResolver` — exactly
what the survey did against the live Internet — and accumulates everything it
learns in a shared *universe* graph so that work is never repeated across the
hundreds of thousands of names in a survey.  :meth:`build` then projects the
universe onto the subgraph reachable from one name, which is that name's
delegation graph.

Graph encoding
--------------

Nodes are ``(kind, DomainName)`` tuples where ``kind`` is ``"name"``,
``"zone"``, or ``"ns"``.  Edges point from the dependent entity to the
entity it depends on:

* ``(name, X) -> (zone, Z)`` for every zone ``Z`` on ``X``'s delegation path;
* ``(zone, Z) -> (ns, H)`` for every nameserver ``H`` delegated to serve ``Z``;
* ``(ns, H) -> (zone, Z')`` for every zone ``Z'`` on the delegation path of
  the hostname ``H``.

Root servers (and the root zone) are excluded, matching the paper's
accounting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.dns.errors import ResolutionError
from repro.dns.name import DomainName, NameLike
from repro.dns.resolver import IterativeResolver, ZoneCut

#: Node kinds used in the delegation graph.
NAME_KIND = "name"
ZONE_KIND = "zone"
NS_KIND = "ns"

NodeKey = Tuple[str, DomainName]

#: Hostname suffixes excluded from TCBs by default (the root servers).
DEFAULT_EXCLUDED_SUFFIXES: Tuple[str, ...] = ("root-servers.net",)


def name_node(name: NameLike) -> NodeKey:
    """Node key for a surveyed domain name."""
    return (NAME_KIND, DomainName(name))


def zone_node(name: NameLike) -> NodeKey:
    """Node key for a zone apex."""
    return (ZONE_KIND, DomainName(name))


def ns_node(name: NameLike) -> NodeKey:
    """Node key for a nameserver hostname."""
    return (NS_KIND, DomainName(name))


class DelegationGraph:
    """The delegation graph of a single domain name.

    Wraps a :class:`networkx.DiGraph` whose nodes follow the encoding
    described in the module docstring, and provides the accessors the
    analyses need (TCB extraction, zone/nameserver views, dependency paths).
    """

    def __init__(self, target: NameLike, graph: nx.DiGraph,
                 excluded_suffixes: Sequence[str] = DEFAULT_EXCLUDED_SUFFIXES):
        self.target = DomainName(target)
        self.graph = graph
        self.excluded_suffixes = tuple(DomainName(s) for s in excluded_suffixes)
        if name_node(self.target) not in graph:
            graph.add_node(name_node(self.target))

    # -- basic views -----------------------------------------------------------

    def _is_excluded(self, hostname: DomainName) -> bool:
        return any(hostname.is_subdomain_of(suffix)
                   for suffix in self.excluded_suffixes)

    def nameservers(self, include_excluded: bool = False) -> List[DomainName]:
        """All nameserver hostnames in the graph."""
        hosts = [key[1] for key in self.graph.nodes if key[0] == NS_KIND]
        if not include_excluded:
            hosts = [h for h in hosts if not self._is_excluded(h)]
        return sorted(hosts)

    def zones(self) -> List[DomainName]:
        """All zone apexes in the graph."""
        return sorted(key[1] for key in self.graph.nodes if key[0] == ZONE_KIND)

    def tcb(self) -> Set[DomainName]:
        """The trusted computing base: nameservers the target depends on.

        Root servers are excluded, matching the paper's TCB accounting.
        """
        return set(self.nameservers(include_excluded=False))

    def tcb_size(self) -> int:
        """Number of nameservers in the TCB."""
        return len(self.tcb())

    def node_count(self) -> int:
        """Total nodes (names + zones + nameservers) in the graph."""
        return self.graph.number_of_nodes()

    def edge_count(self) -> int:
        """Total dependency edges in the graph."""
        return self.graph.number_of_edges()

    # -- structure accessors used by the bottleneck analysis -----------------------

    def zones_of(self, node: NodeKey) -> List[NodeKey]:
        """Zone successors of a name or nameserver node."""
        return [succ for succ in self.graph.successors(node)
                if succ[0] == ZONE_KIND]

    def nameservers_of_zone(self, zone: NodeKey) -> List[NodeKey]:
        """Nameserver successors of a zone node."""
        return [succ for succ in self.graph.successors(zone)
                if succ[0] == NS_KIND]

    def direct_zones(self) -> List[DomainName]:
        """Zones on the target's own delegation path (its direct chain)."""
        return [key[1] for key in self.zones_of(name_node(self.target))]

    def authoritative_zone(self) -> Optional[DomainName]:
        """The deepest zone on the target's direct chain (its own zone)."""
        zones = self.direct_zones()
        if not zones:
            return None
        return max(zones, key=lambda z: z.depth)

    def in_bailiwick_servers(self) -> Set[DomainName]:
        """TCB members whose hostname lies inside the target's own zone.

        These are the servers "administered by the nameowner" in the paper's
        terminology (2.2 on average, versus a TCB of 46).
        """
        zone = self.authoritative_zone()
        if zone is None:
            return set()
        return {host for host in self.tcb() if host.is_subdomain_of(zone)}

    def dependency_path(self, hostname: NameLike) -> List[NodeKey]:
        """A shortest dependency path from the target to ``hostname``.

        Returns an empty list if the server is not in the graph.  The path
        alternates name/zone/nameserver nodes and reads like the fbi.gov
        anecdote: *name depends on zone, served by host, whose own zone
        depends on ...*.
        """
        source = name_node(self.target)
        destination = ns_node(hostname)
        if destination not in self.graph:
            return []
        try:
            return nx.shortest_path(self.graph, source, destination)
        except nx.NetworkXNoPath:
            return []

    def __repr__(self) -> str:
        return (f"DelegationGraph({self.target!s}, "
                f"{self.tcb_size()} nameservers, "
                f"{len(self.zones())} zones)")


class DelegationGraphBuilder:
    """Builds delegation graphs by querying the (simulated) DNS.

    Parameters
    ----------
    resolver:
        The iterative resolver used to enumerate zone cuts.  Its cache is
        shared across all names in a survey.
    excluded_suffixes:
        Hostname suffixes never added to the graph (default: root servers).
    max_depth:
        Safety bound on the recursion depth through nameserver hostnames.
    """

    def __init__(self, resolver: IterativeResolver,
                 excluded_suffixes: Sequence[str] = DEFAULT_EXCLUDED_SUFFIXES,
                 max_depth: int = 150):
        self.resolver = resolver
        self.excluded_suffixes = tuple(DomainName(s) for s in excluded_suffixes)
        self.max_depth = max_depth
        self._universe = nx.DiGraph()
        self._chain_cache: Dict[DomainName, List[ZoneCut]] = {}
        self._expanded_hosts: Set[DomainName] = set()
        self._expanded_names: Set[DomainName] = set()
        self.queries_saved_by_cache = 0

    # -- public ---------------------------------------------------------------------

    @property
    def universe(self) -> nx.DiGraph:
        """The shared dependency graph accumulated across all builds."""
        return self._universe

    def build(self, name: NameLike) -> DelegationGraph:
        """Build (or retrieve from the universe) the graph for ``name``."""
        target = DomainName(name)
        self._ensure_name(target)
        source = name_node(target)
        reachable = nx.descendants(self._universe, source) | {source}
        subgraph = self._universe.subgraph(reachable).copy()
        return DelegationGraph(target, subgraph,
                               excluded_suffixes=self.excluded_suffixes)

    def build_many(self, names: Iterable[NameLike]) -> Dict[DomainName, DelegationGraph]:
        """Build graphs for many names, sharing every intermediate result."""
        graphs: Dict[DomainName, DelegationGraph] = {}
        for name in names:
            graph = self.build(name)
            graphs[graph.target] = graph
        return graphs

    def chain(self, name: NameLike) -> List[ZoneCut]:
        """The (cached) zone-cut chain for a name or hostname."""
        key = DomainName(name)
        cached = self._chain_cache.get(key)
        if cached is not None:
            self.queries_saved_by_cache += 1
            return cached
        try:
            cuts = self.resolver.zone_cut_chain(key)
        except ResolutionError:
            cuts = []
        self._chain_cache[key] = cuts
        return cuts

    def discovered_nameservers(self) -> Set[DomainName]:
        """Every nameserver hostname discovered so far (survey-wide)."""
        return {key[1] for key in self._universe.nodes if key[0] == NS_KIND}

    # -- internals --------------------------------------------------------------------

    def _is_excluded(self, hostname: DomainName) -> bool:
        return any(hostname.is_subdomain_of(suffix)
                   for suffix in self.excluded_suffixes)

    def _ensure_name(self, target: DomainName) -> None:
        """Add the target name's chain (and its closure) to the universe."""
        if target in self._expanded_names:
            return
        self._expanded_names.add(target)
        source = name_node(target)
        self._universe.add_node(source)
        for cut in self.chain(target):
            self._add_zone_cut(source, cut, depth=0)

    def _add_zone_cut(self, dependent: NodeKey, cut: ZoneCut,
                      depth: int) -> None:
        """Record ``dependent -> zone -> nameservers`` and expand hostnames."""
        znode = zone_node(cut.zone)
        self._universe.add_edge(dependent, znode)
        for hostname in cut.nameservers:
            if self._is_excluded(hostname):
                continue
            hnode = ns_node(hostname)
            self._universe.add_edge(znode, hnode)
            self._expand_host(hostname, depth + 1)

    def _expand_host(self, hostname: DomainName, depth: int) -> None:
        """Add a nameserver hostname's own dependency chain to the universe."""
        if hostname in self._expanded_hosts:
            return
        if depth > self.max_depth:
            return
        self._expanded_hosts.add(hostname)
        hnode = ns_node(hostname)
        self._universe.add_node(hnode)
        for cut in self.chain(hostname):
            self._add_zone_cut(hnode, cut, depth)
