"""Fingerprinting nameserver software over the network.

The survey collected version information "for nameservers using BIND, where
possible" by issuing ``version.bind`` TXT queries in the CHAOS class.  The
:class:`Fingerprinter` does exactly that against the simulated network, so
the analysis pipeline never peeks at server objects directly — it learns
versions the same way the paper did, including the cases where servers hide
their banner or are unreachable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

from repro.dns.errors import ServerFailureError
from repro.dns.message import make_query
from repro.dns.name import DomainName, NameLike
from repro.dns.rdtypes import RCode, RRClass, RRType
from repro.dns.server import VERSION_BIND
from repro.vulns.bindversion import BindVersion
from repro.vulns.database import VulnerabilityDatabase


@dataclasses.dataclass
class FingerprintResult:
    """Outcome of fingerprinting one nameserver."""

    hostname: DomainName
    banner: Optional[str]
    version: Optional[BindVersion]
    reachable: bool
    vulnerabilities: List[str] = dataclasses.field(default_factory=list)

    @property
    def is_vulnerable(self) -> bool:
        """True if any known vulnerability was matched."""
        return bool(self.vulnerabilities)

    @property
    def disclosed(self) -> bool:
        """True if the server answered with a parseable version banner."""
        return self.version is not None


class Fingerprinter:
    """Collects ``version.bind`` banners and matches them to known holes.

    Parameters
    ----------
    network:
        The :class:`~repro.netsim.network.SimulatedNetwork` to query.
    database:
        Vulnerability catalogue used to annotate results.  ``None`` skips
        annotation (banners only).
    """

    def __init__(self, network, database: Optional[VulnerabilityDatabase] = None):
        self.network = network
        self.database = database
        self._results: Dict[DomainName, FingerprintResult] = {}

    def fingerprint(self, hostname: NameLike) -> FingerprintResult:
        """Fingerprint one server (cached per hostname)."""
        hostname = DomainName(hostname)
        cached = self._results.get(hostname)
        if cached is not None:
            return cached

        banner: Optional[str] = None
        reachable = True
        query = make_query(VERSION_BIND, RRType.TXT, RRClass.CH)
        try:
            response = self.network.send_query(str(hostname), query)
        except ServerFailureError:
            reachable = False
        else:
            if response.rcode is RCode.NOERROR and response.answers:
                banner = str(response.answers[0].rdata)

        version = BindVersion.parse(banner)
        vulnerabilities: List[str] = []
        if self.database is not None and banner is not None:
            vulnerabilities = self.database.exploit_names(banner)
        result = FingerprintResult(hostname=hostname, banner=banner,
                                   version=version, reachable=reachable,
                                   vulnerabilities=vulnerabilities)
        self._results[hostname] = result
        return result

    def fingerprint_all(self, hostnames: Iterable[NameLike]
                        ) -> Dict[DomainName, FingerprintResult]:
        """Fingerprint every hostname and return the result map."""
        for hostname in hostnames:
            self.fingerprint(hostname)
        return dict(self._results)

    def forget(self, hostname: NameLike) -> bool:
        """Drop the cached result for one host (e.g. after it was patched).

        Returns True if a cached result existed.  The next
        :meth:`fingerprint` call re-queries the live banner — the
        incremental re-survey path uses this when a change journal reports
        a server's software changed.
        """
        return self._results.pop(DomainName(hostname), None) is not None

    def absorb(self, other: "Fingerprinter") -> None:
        """Adopt another fingerprinter's cached results (shard merging)."""
        self._results.update(other._results)

    def adopt(self, results: Dict[DomainName, FingerprintResult]) -> None:
        """Adopt an already-collected result map (process-shard merging)."""
        self._results.update(results)

    def results(self) -> Dict[DomainName, FingerprintResult]:
        """All results collected so far."""
        return dict(self._results)

    def vulnerable_hostnames(self) -> List[DomainName]:
        """Hostnames whose fingerprint matched at least one known hole."""
        return [hostname for hostname, result in self._results.items()
                if result.is_vulnerable]

    def disclosure_rate(self) -> float:
        """Fraction of fingerprinted servers that disclosed a version."""
        if not self._results:
            return 0.0
        disclosed = sum(1 for r in self._results.values() if r.disclosed)
        return disclosed / len(self._results)
