"""Durable epoch append: what does the crash-safe commit protocol cost?

Every ``EpochStore.append`` now rides the atomic commit protocol —
same-directory temp, flush + fsync of the temp file, ``os.replace``,
fsync of the directory — so a crash at any instant leaves either the old
store or the new one, never a torn epoch.  The two fsyncs are the only
part of that protocol with a real price; everything else is a rename.

This bench churns a fixed sequence of epochs once, then replays the
identical append workload into fresh stores with durability **on**
(default) and **off** (``no_fsync()``, what ``churn --no-fsync`` and the
test suite use).  Acceptance: full durability must cost less than
``MAX_FSYNC_OVERHEAD``x the throwaway mode — if an fsync regression
sneaks into the hot path (per-record instead of per-commit, say) this
gate catches it.

Metrics land in ``BENCH_results.json`` under ``durable_epoch_append``.
"""

import time

from repro.core.atomic import no_fsync, set_fsync
from repro.core.engine import EngineConfig, SurveyEngine
from repro.core.snapstore import EpochStore
from repro.topology.changes import ChangeJournal
from repro.topology.churn import ChurnModel, ChurnRates
from repro.topology.generator import InternetGenerator

from conftest import BENCH_CONFIG

#: Ceiling on durable / no-fsync append wall-clock.  The protocol pays
#: two fsyncs per epoch commit regardless of epoch size, so at bench
#: scale the serialisation work dominates and the gap stays small.
MAX_FSYNC_OVERHEAD = 2.0

EPOCHS = 6

REPEATS = 3

CHURN_RATES = ChurnRates(transfer=2.0, death=1.0, upgrade=3.0,
                         downgrade=1.0, region=2.0)


def _churned_epochs():
    """One fixed epoch sequence both timed runs replay identically."""
    internet = InternetGenerator(BENCH_CONFIG).generate()
    engine = SurveyEngine(
        internet,
        config=EngineConfig(popular_count=BENCH_CONFIG.alexa_count))
    results = engine.run()
    model = ChurnModel(internet, CHURN_RATES, seed=BENCH_CONFIG.seed)
    epochs = [(results, None, None)]
    for _ in range(EPOCHS):
        journal = ChangeJournal(internet)
        model.advance(journal)
        outcome = engine.run_delta(results, journal)
        epochs.append((outcome.results, results, outcome.dirty))
        results = outcome.results
    return epochs


def _append_all(store_root, epochs):
    store = EpochStore(store_root)
    start = time.perf_counter()
    for results, previous, dirty in epochs:
        store.append(results, previous=previous, dirty=dirty)
    return time.perf_counter() - start, store.total_bytes()


def test_bench_durable_append(figure_writer, bench_metrics, tmp_path):
    epochs = _churned_epochs()

    durable_timings, fast_timings = [], []
    store_bytes = 0
    for attempt in range(REPEATS):
        previous = set_fsync(True)
        try:
            elapsed, store_bytes = _append_all(
                tmp_path / f"durable_{attempt}", epochs)
        finally:
            set_fsync(previous)
        durable_timings.append(elapsed)
        with no_fsync():
            elapsed, _ = _append_all(tmp_path / f"fast_{attempt}", epochs)
        fast_timings.append(elapsed)

    durable_s = sorted(durable_timings)[REPEATS // 2]
    fast_s = sorted(fast_timings)[REPEATS // 2]
    overhead = durable_s / fast_s
    appends = len(epochs)

    figure_writer.write(
        "durable_epoch_append",
        "Durable epoch append: fsync'd atomic commits vs. throwaway mode",
        [f"epochs appended per run   {appends} "
         f"(1 keyframe + {EPOCHS} deltas)",
         f"store size                {store_bytes} bytes",
         f"durable (fsync on)        {durable_s:.3f}s "
         f"({durable_s / appends * 1000:.1f}ms/append)",
         f"no-fsync                  {fast_s:.3f}s "
         f"({fast_s / appends * 1000:.1f}ms/append)",
         f"durability overhead       {overhead:.2f}x "
         f"(ceiling {MAX_FSYNC_OVERHEAD:.1f}x)"])
    bench_metrics.record(
        "durable_epoch_append", appends=appends,
        store_bytes=store_bytes,
        durable_s=round(durable_s, 4),
        no_fsync_s=round(fast_s, 4),
        durable_append_ms=round(durable_s / appends * 1000, 3),
        fsync_overhead=round(overhead, 3))

    assert overhead < MAX_FSYNC_OVERHEAD, (
        f"durable appends cost {overhead:.2f}x the no-fsync path "
        f"(ceiling {MAX_FSYNC_OVERHEAD:.1f}x)")
