"""Tests for :mod:`repro.topology.changes` (the world-change journal)."""

import pytest

from repro.dns.name import DomainName
from repro.dns.rdtypes import RRType
from repro.topology.changes import ChangeJournal, apply_mutation_spec
from repro.topology.generator import GeneratorConfig, InternetGenerator


@pytest.fixture(scope="module")
def world():
    config = GeneratorConfig(seed=4242, sld_count=60,
                             directory_name_count=90, university_count=12,
                             hosting_provider_count=6, isp_count=4,
                             alexa_count=15)
    return InternetGenerator(config).generate()


@pytest.fixture
def journal(world):
    return ChangeJournal(world)


def _provider(world, index=1):
    return world.organizations.by_name(f"webhost{index}")


def test_set_zone_nameservers_rewires_every_layer(world, journal):
    provider = _provider(world)
    victim = _provider(world, 2)
    apex = victim.domain
    new_ns = provider.nameservers[:2]
    event = journal.set_zone_nameservers(apex, new_ns)

    zone = world.zones[apex]
    assert zone.apex_nameservers() == list(new_ns)
    parent = world.zones[DomainName(apex.tld)]
    delegation = parent.get_delegation(apex)
    assert delegation.nameservers == list(new_ns)
    for hostname in new_ns:
        assert apex in world.servers[hostname].zone_apexes()
    for hostname in event.hosts_before:
        if hostname not in new_ns:
            assert apex not in world.servers[hostname].zone_apexes()
    assert event.kind == "zone-ns"
    assert set(event.touched_hosts) >= set(new_ns)


def test_zone_creation_moves_subtree_and_resolves(world, journal):
    univ = world.organizations.by_name("univ1")
    department = univ.domain.child("cs2")
    host = department.child("www")
    world.zones[univ.domain].add(host, RRType.A, "203.0.113.77")

    event = journal.set_zone_nameservers(department, [univ.nameservers[0]])
    assert event.created_zone
    child = world.zones[department]
    # The A record below the new apex moved into the child zone.
    assert child.get_rrset(host, RRType.A) is not None
    assert world.zones[univ.domain].get_rrset(host, RRType.A) is None
    # And resolution still reaches it, through the new cut.
    resolver = world.make_resolver()
    trace = resolver.resolve(host)
    assert trace.succeeded and trace.addresses == ["203.0.113.77"]
    cuts = resolver.zone_cut_chain(host)
    assert department in [cut.zone for cut in cuts]


def test_add_and_remove_server(world, journal):
    provider = _provider(world, 3)
    event = journal.add_server("backup.webhost3.com", software="BIND 9.2.3",
                               organization="webhost3")
    hostname = DomainName("backup.webhost3.com")
    assert world.servers[hostname].software == "BIND 9.2.3"
    assert hostname in provider.nameservers
    assert event.kind == "server-add"
    assert event.touched_hosts == frozenset((hostname,))

    journal.add_zone_nameserver(provider.domain, hostname)
    assert hostname in world.zones[provider.domain].apex_nameservers()

    removal = journal.remove_server(hostname)
    assert hostname not in world.zones[provider.domain].apex_nameservers()
    assert hostname in removal.touched_hosts
    assert hostname not in provider.nameservers


def test_consecutive_journals_never_reuse_addresses(world):
    """Address allocation checks the live world, not a per-journal counter:
    chained journals over one internet must not alias two servers onto one
    address (the network routes by address)."""
    first = ChangeJournal(world)
    first.add_server("dup1.webhost1.net")
    second = ChangeJournal(world)
    second.add_server("dup2.webhost1.net")
    addr_one = world.servers[DomainName("dup1.webhost1.net")].addresses[0]
    addr_two = world.servers[DomainName("dup2.webhost1.net")].addresses[0]
    assert addr_one != addr_two
    assert world.network.find_server(addr_one).hostname == \
        DomainName("dup1.webhost1.net")
    assert world.network.find_server(addr_two).hostname == \
        DomainName("dup2.webhost1.net")


def test_remove_server_refuses_to_orphan_a_zone(world, journal):
    provider = _provider(world, 5)
    only = provider.nameservers[0]
    journal.set_zone_nameservers(provider.domain, [only])
    events_before = len(journal)
    with pytest.raises(ValueError, match="only nameserver"):
        journal.remove_server(only)
    # The rejection happens before any re-delegation: no half-applied
    # decommission, no events journalled, world unchanged.
    assert len(journal) == events_before
    assert world.zones[provider.domain].apex_nameservers() == [only]


def test_server_add_footprint_covers_ghost_nameservers(world, journal):
    """A server coming online under a hostname some zone already lists
    (lame delegation) must dirty the names depending on that hostname and
    mark its stale 'unreachable' fingerprint for re-probing."""
    ghost = DomainName("ghost.webhost1.net")
    provider = _provider(world)
    journal.add_zone_nameserver(provider.domain, ghost)
    event = journal.add_server(str(ghost), software="BIND 8.2.2")
    assert ghost in event.touched_hosts
    changes = journal.changes()
    assert ghost in changes.touched_hosts
    assert ghost in changes.refingerprint_hosts


def test_changes_since_folds_only_new_events(world, journal):
    provider = _provider(world, 6)
    journal.set_server_software(provider.nameservers[0], "BIND 8.2.3")
    cut = len(journal.events)
    univ = world.organizations.by_name("univ4")
    journal.set_server_software(univ.nameservers[0], "BIND 9.2.3")
    new_only = journal.changes(since=cut)
    assert new_only.touched_hosts == frozenset((univ.nameservers[0],))
    assert journal.changes().touched_hosts == \
        frozenset((provider.nameservers[0], univ.nameservers[0]))


def test_software_and_region_events(world, journal):
    univ = world.organizations.by_name("univ2")
    hostname = univ.nameservers[0]
    journal.set_server_software(hostname, "BIND 8.2.2")
    journal.move_server_region(hostname, "ap")
    assert world.servers[hostname].software == "BIND 8.2.2"
    assert world.servers[hostname].region == "ap"
    changes = journal.changes()
    assert changes.refingerprint_hosts == frozenset((hostname,))
    assert hostname in changes.touched_hosts
    assert changes.analyses_stale


def test_changes_fold_uses_last_zone_edit(world, journal):
    provider = _provider(world, 4)
    apex = provider.domain
    first = journal._zone_ns_union(apex)
    journal.add_zone_nameserver(apex, _provider(world, 5).nameservers[0])
    journal.set_zone_nameservers(apex, first)
    changes = journal.changes()
    assert changes.edited_zones[apex] == first
    assert not changes.dirty_all and not changes.empty


def test_mutation_specs_round_trip(world, journal):
    provider = _provider(world, 6)
    target = provider.domain
    spec = f"add-ns:zone={target};ns={_provider(world, 1).nameservers[0]}"
    event = apply_mutation_spec(journal, spec)
    assert event.kind == "zone-ns"
    apply_mutation_spec(journal, "add-server:host=ns8.webhost6.com;"
                                 "software=BIND 9.2.1;org=webhost6")
    assert DomainName("ns8.webhost6.com") in world.servers
    with pytest.raises(ValueError, match="unknown mutation kind"):
        apply_mutation_spec(journal, "explode:zone=com")
    with pytest.raises(ValueError, match="needs zone"):
        apply_mutation_spec(journal, "set-ns:ns=a.example.com")
    univ = world.organizations.by_name("univ3")
    with pytest.raises(ValueError, match="unknown option"):
        apply_mutation_spec(
            journal,
            f"move-region:host={univ.nameservers[0]};region=eu;bogus=1")


def test_root_zone_is_off_limits(journal):
    with pytest.raises(ValueError, match="root"):
        journal.set_zone_nameservers(".", ["a.root-servers.net"])


def test_mutation_spec_rejects_malformed_option(journal):
    """An option without ``=`` names the offending fragment and the spec."""
    with pytest.raises(ValueError, match="malformed option 'zone'"):
        apply_mutation_spec(journal, "set-ns:zone;ns=a.example.com")


def test_mutation_spec_rejects_missing_key(journal):
    with pytest.raises(ValueError, match="'drop-ns' needs zone"):
        apply_mutation_spec(journal, "drop-ns:ns=a.example.com")
    with pytest.raises(ValueError, match="'set-software' needs host"):
        apply_mutation_spec(journal, "set-software:software=BIND 9.2.3")
    with pytest.raises(ValueError, match="'dnssec' needs fraction"):
        apply_mutation_spec(journal, "dnssec:seed=x")


def test_mutation_spec_rejects_unknown_kind_with_catalogue(journal):
    """The error lists the whole spec grammar, not just the bad kind."""
    with pytest.raises(ValueError, match="expected one of set-ns, add-ns"):
        apply_mutation_spec(journal, "transmogrify:host=a.example.com")
    # A bare kind with no options at all is still an unknown-kind error.
    with pytest.raises(ValueError, match="unknown mutation kind ''"):
        apply_mutation_spec(journal, ":host=a.example.com")


def test_mutation_spec_rejects_non_numeric_fraction(journal):
    with pytest.raises(ValueError):
        apply_mutation_spec(journal, "dnssec:fraction=lots")


def test_mutation_spec_world_errors_leave_journal_clean(world, journal):
    """A spec whose mutation the world rejects journals nothing."""
    with pytest.raises(ValueError, match="unknown server"):
        apply_mutation_spec(journal, "remove-server:host=ns.nowhere.zz")
    with pytest.raises(ValueError, match="needs at least one nameserver"):
        apply_mutation_spec(journal, "set-ns:zone=site1.com;ns=")
    assert len(journal) == 0
    assert journal.changes().empty


def test_changes_fold_exposes_zone_and_host_footprints(world, journal):
    """Zone edits fold to before-set footprints; host events fold apart."""
    provider = _provider(world, 2)
    apex = provider.domain
    before = tuple(journal._zone_ns_union(apex))
    journal.add_zone_nameserver(apex, _provider(world, 3).nameservers[0])
    # A second edit to the same zone must not overwrite the footprint:
    # previous TCBs only ever saw the pre-journal state.
    journal.add_zone_nameserver(apex, _provider(world, 4).nameservers[0])
    univ = world.organizations.by_name("univ2")
    journal.set_server_software(univ.nameservers[0], "BIND 9.2.3")
    changes = journal.changes()
    assert changes.zone_footprints[apex] == before
    assert changes.host_footprints == frozenset((univ.nameservers[0],))
    # touched_hosts stays the full (conservative) union for stats and
    # hand-built consumers.
    assert frozenset(before) <= changes.touched_hosts


def test_changes_fold_created_zone_has_no_footprint(world, journal):
    univ = world.organizations.by_name("univ4")
    department = univ.domain.child("physics")
    journal.set_zone_nameservers(department, [univ.nameservers[0]])
    # Editing the freshly cut zone again still leaves footprints empty:
    # nothing in any previous TCB describes a zone that did not exist.
    journal.add_zone_nameserver(department, univ.nameservers[-1])
    changes = journal.changes()
    assert changes.created_zones == (department,)
    assert department not in changes.zone_footprints

def test_event_to_spec_replays_identically():
    """``ChangeEvent.to_spec()`` replayed through ``apply_mutation_spec``
    on an identically-generated world reproduces the same event log and
    the same folded footprint — the contract the distributed coordinator
    leans on when it ships a journal to its workers as spec strings."""
    # Private worlds: the module-scoped fixture has been mutated by the
    # tests above, so a config-regenerated twin would not match it.
    config = GeneratorConfig(seed=777, sld_count=60,
                             directory_name_count=90, university_count=12,
                             hosting_provider_count=6, isp_count=4,
                             alexa_count=15)
    original_world = InternetGenerator(config).generate()
    twin = InternetGenerator(config).generate()
    source, replayed = ChangeJournal(original_world), ChangeJournal(twin)

    univ = original_world.organizations.by_name("univ4")
    hostname = univ.nameservers[0]
    source.set_server_software(hostname, "BIND 8.2.2")
    source.move_server_region(hostname, "eu")
    source.add_server("ns9.webhost2.com", software="BIND 9.2.3",
                      region="ap", organization="webhost2")
    source.remove_server(
        _provider(original_world, 3).nameservers[0])

    for event in source.events:
        replay_event = apply_mutation_spec(replayed, event.to_spec())
        assert replay_event.kind == event.kind
        assert replay_event.to_spec() == event.to_spec()

    original, mirrored = source.changes(), replayed.changes()
    assert mirrored.touched_hosts == original.touched_hosts
    assert mirrored.refingerprint_hosts == original.refingerprint_hosts
    assert mirrored.edited_zones == original.edited_zones
    assert twin.servers[hostname].software == "BIND 8.2.2"
    assert twin.servers[hostname].region == "eu"
