"""Dirty-set computation for incremental re-surveys.

A survey record is a pure function of the world: re-running any name on any
backend reproduces its record byte for byte.  After a journalled world
mutation (:mod:`repro.topology.changes`), the only names whose records can
differ from the previous snapshot are those whose *dependency graph*
touches the mutation's footprint — and because a name's TCB is the
transitive closure of its dependencies, that footprint test reduces to a
set intersection over data the previous snapshot already holds:

    a name depends on zone ``Z``  ⟹  its TCB contains every non-excluded
    nameserver ``Z`` had at survey time.

:class:`DirtyIndex` builds the inverted index (host → names whose TCB holds
it) once per previous result set and answers "which names must be
re-surveyed for this :class:`~repro.topology.changes.ChangeSet`?".  The
mapping is deliberately conservative — a name sharing a *server* with a
mutated zone without depending on the zone is re-surveyed for nothing —
because over-dirtying only costs time while under-dirtying would silently
serve stale records.  Working purely in record space (no graph required)
is what makes it backend-agnostic: the previous results may come from a
``process``-backend run whose shard universes were never merged, or
straight from a JSON snapshot on disk (the CLI ``resurvey`` path).

Two rules extend the closure argument to the cases it cannot see:

* a newly cut zone changes the delegation path of every name *below* it
  (and of every name depending on a host below it — covered by the host
  index), so names under a created apex are always dirty;
* names that previously failed to resolve have empty TCBs and therefore no
  footprint, so any mutation that can create namespace (a new zone cut)
  marks all unresolved names dirty.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Set

from repro.dns.name import DomainName
from repro.core.survey import SurveyResults


class DirtyIndex:
    """Maps a change footprint back to the names needing re-survey."""

    def __init__(self, previous: SurveyResults):
        self._names: List[DomainName] = []
        self._unresolved: List[DomainName] = []
        self._by_host: Dict[DomainName, List[DomainName]] = {}
        by_host = self._by_host
        # The tcb_index_rows protocol instead of record iteration: a
        # column-backed lazy view (mmap'd snapshot) serves these three
        # columns without hydrating any NameRecord, so building the index
        # over a loaded snapshot costs column scans, not a full parse.
        for name, resolved, tcb_servers in previous.tcb_index_rows():
            self._names.append(name)
            if not resolved:
                self._unresolved.append(name)
            for host in tcb_servers:
                bucket = by_host.get(host)
                if bucket is None:
                    by_host[host] = [name]
                else:
                    bucket.append(name)

    def __len__(self) -> int:
        return len(self._names)

    def names_depending_on(self, host: DomainName) -> List[DomainName]:
        """Names whose previous TCB contained ``host``."""
        return list(self._by_host.get(host, ()))

    def dirty_names(self, changes) -> Set[DomainName]:
        """The names whose records the given ChangeSet can invalidate."""
        if changes.dirty_all:
            return set(self._names)
        dirty: Set[DomainName] = set()
        by_host = self._by_host
        # Host-scoped events (software, region, server lifecycle) dirty
        # every dependant of each host.  Journal-folded ChangeSets carry
        # them separately from zone-edit hosts; hand-built ones fall back
        # to the conservative union over the whole touched set.
        hosts = getattr(changes, "host_footprints", None)
        if hosts is None:
            hosts = changes.touched_hosts
        for host in hosts:
            dirty.update(by_host.get(host, ()))
        # Zone edits dirty by *intersection*: a name depends on the zone
        # iff its previous TCB holds every countable member of the zone's
        # previous NS set (the TCB is a closure), so intersecting the
        # members' dependant lists finds the zone's dependants without
        # dirtying every name that merely shares one co-hosted server.
        # Hosts with no dependants are skipped, not intersected: they are
        # either TCB-excluded (never indexed) or the zone has no
        # dependants at all — in which case the survivors only ever
        # over-approximate.  (The no-countable-member case never reaches
        # here: the journal folds it to dirty_all.)
        for footprint in getattr(changes, "zone_footprints", {}).values():
            dependants = [by_host.get(host) for host in footprint]
            dependants = [bucket for bucket in dependants if bucket]
            if not dependants:
                continue
            dependants.sort(key=len)
            candidates = set(dependants[0])
            for bucket in dependants[1:]:
                if not candidates:
                    break
                candidates.intersection_update(bucket)
            dirty.update(candidates)
        # Ancestry-scoped zones (new cuts, newly signed apexes) affect
        # the names below them — walk each name's ancestor chain against
        # the apex set rather than testing every (name, apex) pair.
        apexes = set(changes.created_zones) | set(changes.chain_zones)
        if apexes:
            for name in self._names:
                if any(ancestor in apexes
                       for ancestor in name.ancestors(include_self=True,
                                                      include_root=False)):
                    dirty.add(name)
        if changes.created_zones:
            # A new cut also adds a delegation level to the resolution of
            # every *host* beneath it, so names elsewhere in the namespace
            # whose TCB holds such a host gain dependencies too — the
            # below-the-apex walk above cannot see them.
            created = tuple(changes.created_zones)
            for host, dependants in by_host.items():
                if any(host.is_subdomain_of(apex) for apex in created):
                    dirty.update(dependants)
        if changes.created_zones or changes.edited_zones:
            # Names that previously failed to resolve have empty TCBs and
            # therefore no footprint at all, so no host mapping can ever
            # reach them — yet any delegation change can be the one that
            # makes them resolvable (e.g. a zone whose NS set was all
            # ghosts getting live servers, which can cascade to names far
            # outside the edited subtree through ghost-host dependencies).
            # Re-survey them all whenever the delegation fabric changed.
            dirty.update(self._unresolved)
        return dirty


@dataclasses.dataclass
class DeltaStats:
    """Bookkeeping for one :meth:`SurveyEngine.run_delta` call.

    Deliberately *not* part of the returned ``SurveyResults`` metadata: the
    delta contract is that results (and their snapshots) are byte-identical
    to a cold full survey of the mutated world, so anything describing how
    they were produced lives here instead.
    """

    total_names: int
    dirty_names: int
    patched_names: int
    events: int
    edited_zones: int
    created_zones: int
    touched_hosts: int
    dirty_fraction: float
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view (CLI reporting, benchmarks)."""
        return {
            "total_names": self.total_names,
            "dirty_names": self.dirty_names,
            "patched_names": self.patched_names,
            "events": self.events,
            "edited_zones": self.edited_zones,
            "created_zones": self.created_zones,
            "touched_hosts": self.touched_hosts,
            "dirty_fraction": round(self.dirty_fraction, 6),
            "elapsed_s": round(self.elapsed_s, 4),
        }


@dataclasses.dataclass
class DeltaOutcome:
    """What an incremental re-survey produced."""

    results: SurveyResults
    stats: DeltaStats
    dirty: FrozenSet[DomainName]
