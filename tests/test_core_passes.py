"""Tests for the pluggable analysis-pass framework (:mod:`repro.core.passes`)."""

import pytest

from repro.dns.name import DomainName
from repro.core.availability import AvailabilityAnalyzer
from repro.core.dnssec_impact import (
    DNSSECImpactAnalyzer,
    impact_report_from_results,
)
from repro.core.engine import EngineConfig, SurveyEngine
from repro.core.passes import (
    AvailabilityPass,
    DNSSECImpactPass,
    build_pass,
    build_passes,
    chain_seed,
)
from repro.core.snapshot import load_results, save_results


# -- spec parsing -------------------------------------------------------------------------

def test_build_passes_from_comma_separated_string():
    passes = build_passes("availability,dnssec")
    assert [p.name for p in passes] == ["availability", "dnssec"]


def test_build_pass_with_options():
    availability = build_pass("availability:up=0.95;samples=100;spof=0")
    assert availability.up == pytest.approx(0.95)
    assert availability.samples == 100
    assert availability.spof is False
    assert availability.columns == ("availability", "availability_mc")

    dnssec = build_pass("dnssec:fraction=0.5;sign_tlds=false")
    assert dnssec.fraction == pytest.approx(0.5)
    assert dnssec.sign_tlds is False


def test_build_passes_accepts_instances_and_none():
    instance = AvailabilityPass(up=0.9)
    assert build_passes([instance]) == (instance,)
    assert build_passes(None) == ()
    assert build_passes("") == ()


def test_build_pass_rejects_unknown_names_and_options():
    with pytest.raises(ValueError):
        build_pass("teleportation")
    with pytest.raises(ValueError):
        build_pass("availability:warp=9")
    with pytest.raises(ValueError):
        build_pass("availability:up")


def test_build_passes_rejects_duplicates():
    with pytest.raises(ValueError):
        build_passes("availability,availability")


def test_availability_pass_validates_parameters():
    with pytest.raises(ValueError):
        AvailabilityPass(up=1.5)
    with pytest.raises(ValueError):
        AvailabilityPass(samples=-1)
    with pytest.raises(ValueError):
        DNSSECImpactPass(fraction=-0.1)


def test_chain_seed_is_chain_not_name_derived():
    from repro.core.delegation import zone_node
    key = (zone_node("com"), zone_node("site.com"))
    assert chain_seed(key) == "com|site.com"


# -- engine integration -------------------------------------------------------------------

@pytest.fixture(scope="module")
def pass_internet(small_internet):
    """A module-private same-config Internet: the DNSSEC pass signs zones
    in place, so these tests must not mutate the session-scoped
    ``small_internet``."""
    from repro.topology.generator import InternetGenerator
    return InternetGenerator(small_internet.config).generate()


@pytest.fixture(scope="module")
def pass_survey(pass_internet):
    """A survey over the module Internet with both built-in passes."""
    engine = SurveyEngine(
        pass_internet,
        config=EngineConfig(popular_count=20,
                            passes=("availability:samples=30", "dnssec")))
    return engine, engine.run(max_names=120)


def test_pass_columns_present_on_every_record(pass_survey):
    _engine, results = pass_survey
    assert results.metadata["passes"] == ["availability", "dnssec"]
    for record in results.records:
        assert set(record.extras) == {
            "availability", "availability_spof", "availability_mc",
            "dnssec_status", "dnssec_detected"}
        assert 0.0 <= record.extras["availability"] <= 1.0
        assert 0.0 <= record.extras["availability_mc"] <= 1.0
        assert record.extras["availability_spof"] >= 0
        assert record.extras["dnssec_status"] in ("secure", "insecure",
                                                  "bogus")


def test_availability_columns_match_legacy_graph_path(pass_survey):
    """Engine-pass availability == a fresh analyzer on materialised graphs."""
    engine, results = pass_survey
    analyzer = AvailabilityAnalyzer(0.99)
    for record in results.resolved_records()[:25]:
        graph = engine.builder.build(record.name)
        assert record.extras["availability"] == pytest.approx(
            analyzer.resolution_probability(graph), abs=1e-12)
        assert record.extras["availability_spof"] == \
            len(analyzer.single_points_of_failure_exhaustive(graph))


def test_dnssec_detected_implies_hijackable_and_secure(pass_survey):
    _engine, results = pass_survey
    for record in results.resolved_records():
        if record.extras["dnssec_detected"]:
            assert record.classification in ("complete", "dos-assisted")
            assert record.extras["dnssec_status"] == "secure"


def test_impact_report_from_results_matches_post_hoc_analyzer(pass_survey,
                                                              pass_internet):
    engine, results = pass_survey
    # The pass records its deployment fraction in the survey metadata, so
    # the aggregate report needs no explicit fraction argument.
    assert results.metadata["dnssec_fraction"] == 1.0
    from_extras = impact_report_from_results(results)
    assert from_extras.deployment_fraction == 1.0
    dnssec_pass = engine.passes[1]
    analyzer = DNSSECImpactAnalyzer(pass_internet, dnssec_pass.deployment)
    post_hoc = analyzer.analyze(
        results, names=[r.name for r in results.resolved_records()])
    assert from_extras.names_checked == post_hoc.names_checked
    assert from_extras.secure == post_hoc.secure
    assert from_extras.hijackable == post_hoc.hijackable
    assert from_extras.hijackable_detected == post_hoc.hijackable_detected


def test_names_sharing_a_chain_share_pass_columns(pass_survey):
    engine, results = pass_survey
    by_chain = {}
    for record in results.resolved_records():
        chain = tuple(engine.builder.tcb_view(record.name).direct_zones())
        by_chain.setdefault(chain, []).append(record)
    shared = [group for group in by_chain.values() if len(group) > 1]
    assert shared, "expected at least one chain with several names"
    for group in shared:
        first = group[0].extras
        for record in group[1:]:
            assert record.extras == first


def test_snapshot_round_trips_extras(pass_survey, tmp_path):
    _engine, results = pass_survey
    path = save_results(results, tmp_path / "passes.json")
    loaded = load_results(path)
    assert [r.extras for r in loaded.records] == \
        [r.extras for r in results.records]
    assert loaded.extras_summary() == results.extras_summary()


def test_extras_summary_shapes(pass_survey):
    _engine, results = pass_survey
    summary = results.extras_summary()
    assert 0.0 <= summary["availability"] <= 1.0
    assert 0.0 <= summary["dnssec_detected"] <= 1.0
    status_fractions = [value for key, value in summary.items()
                        if key.startswith("dnssec_status=")]
    assert status_fractions
    assert sum(status_fractions) == pytest.approx(1.0)


# -- value ranking pass (finalize hook) ---------------------------------------------------

def test_value_pass_spec_and_options():
    value = build_pass("value:top=3;high_leverage_fraction=0.2")
    assert value.name == "value"
    assert value.top == 3
    assert value.high_leverage_fraction == 0.2
    assert value.columns == ()
    with pytest.raises(ValueError):
        build_pass("value:bogus=1")
    with pytest.raises(ValueError):
        build_pass("value:top=-1")


def test_value_pass_finalize_matches_post_hoc_analyzer(small_internet):
    """The finalize() reduce over aggregator counts must equal the post-hoc
    SurveyResults.value_analyzer() walk."""
    engine = SurveyEngine(
        small_internet,
        config=EngineConfig(popular_count=10, passes=("value:top=5",)))
    results = engine.run(max_names=80)
    post_hoc = results.value_analyzer()

    summary = results.metadata["value_summary"]
    reference = post_hoc.summary()
    for key in ("servers", "names", "mean_names_controlled",
                "median_names_controlled"):
        assert summary[key] == pytest.approx(reference[key], abs=1e-6), key

    top = results.metadata["value_top_servers"]
    assert len(top) <= 5
    reference_ranking = post_hoc.ranking()[:len(top)]
    assert [entry["hostname"] for entry in top] == \
        [str(value.hostname) for value in reference_ranking]
    assert [entry["names_controlled"] for entry in top] == \
        [value.names_controlled for value in reference_ranking]
    # Per-record columns are untouched: the pass is metadata-only.
    assert "value" not in results.extras_columns()


def test_value_pass_finalize_identical_across_backends(small_internet):
    from repro.core.engine import BACKENDS
    from repro.distrib.coordinator import LocalWorkerFleet
    from repro.topology.generator import InternetGenerator

    # Private same-config world: socket workers regenerate it from the
    # GeneratorConfig, so the in-process copy must be pristine.
    internet = InternetGenerator(small_internet.config).generate()
    metadata = {}
    with LocalWorkerFleet(2) as fleet:
        for backend in BACKENDS:
            addrs = fleet.addresses if backend == "socket" else ()
            engine = SurveyEngine(
                internet,
                config=EngineConfig(popular_count=10, backend=backend,
                                    workers=3, passes=("value",),
                                    worker_addrs=tuple(addrs)))
            try:
                results = engine.run(max_names=60)
            finally:
                engine.close()
            metadata[backend] = (results.metadata["value_summary"],
                                 results.metadata["value_top_servers"])
    for backend in BACKENDS[1:]:
        assert metadata[backend] == metadata["serial"], backend


def test_value_pass_snapshot_round_trip(small_internet, tmp_path):
    engine = SurveyEngine(
        small_internet,
        config=EngineConfig(popular_count=5, passes=("value:top=2",)))
    results = engine.run(max_names=40)
    path = save_results(results, tmp_path / "value.json")
    loaded = load_results(path)
    assert loaded.metadata["value_summary"] == \
        results.metadata["value_summary"]
    assert loaded.metadata["value_top_servers"] == \
        results.metadata["value_top_servers"]


def test_dnssec_zone_cache_preserves_validation_results(pass_internet):
    """ChainValidator(cache_zones=True) must agree with the uncached path."""
    from repro.dns.dnssec import ChainValidator

    resolver = pass_internet.make_resolver()
    cached = ChainValidator(resolver, cache_zones=True)
    uncached = ChainValidator(pass_internet.make_resolver())
    names = [entry.name for entry in pass_internet.directory.entries()[:40]]
    for name in names:
        got = cached.validate(name)
        want = uncached.validate(name)
        assert (got.status, got.broken_zone, got.detail) == \
            (want.status, want.broken_zone, want.detail), str(name)
