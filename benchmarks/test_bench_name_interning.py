"""Micro-benchmarks for the integer-interned core's building blocks.

Two hot-path changes ride the CSR-universe PR and get pinned down here:

* ``DomainName.__eq__`` against strings used to construct (and regex-
  validate) a throwaway ``DomainName`` per comparison miss; it now
  normalises textually.  The old behaviour is reimplemented inline as the
  reference.
* The Monte-Carlo availability trial used to build a Python set of down
  servers per sample and re-evaluate the AND/OR structure per draw; on a
  ``TCBView`` it is now bit-parallel (one up/down bitmask per server over
  all samples, one graph walk).  Both paths consume the RNG identically,
  so the estimates must agree exactly.
"""

import random
import time

from repro.dns.errors import NameError_
from repro.dns.name import DomainName
from repro.core.availability import AvailabilityAnalyzer
from repro.core.delegation import DelegationGraphBuilder

#: Comparisons per side in the __eq__ micro-benchmark.
EQ_ROUNDS = 20000

#: Monte-Carlo samples per name in the vectorization benchmark.
MC_SAMPLES = 200

#: Names in the Monte-Carlo comparison.
MC_NAMES = 25


def _legacy_eq(name: DomainName, other: str) -> bool:
    """The pre-PR string-coercion fallback, kept as the reference."""
    try:
        return name.labels == DomainName(other)._labels
    except NameError_:
        return False


def test_bench_name_eq_short_circuit(figure_writer, bench_metrics):
    """Textual __eq__ must beat the construct-and-compare fallback."""
    names = [DomainName(f"host{i}.zone{i % 7}.example.com")
             for i in range(50)]
    probes = ([f"host{i}.zone{i % 7}.example.com" for i in range(50)] +
              [f"other{i}.zone{i % 7}.example.net" for i in range(50)])

    start = time.perf_counter()
    hits = 0
    for _ in range(EQ_ROUNDS // len(names)):
        for name in names:
            for probe in probes:
                if _legacy_eq(name, probe):
                    hits += 1
    legacy_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    fast_hits = 0
    for _ in range(EQ_ROUNDS // len(names)):
        for name in names:
            for probe in probes:
                if name == probe:
                    fast_hits += 1
    fast_elapsed = time.perf_counter() - start

    assert fast_hits == hits
    speedup = legacy_elapsed / fast_elapsed
    comparisons = (EQ_ROUNDS // len(names)) * len(names) * len(probes)
    figure_writer.write(
        "name_eq_short_circuit",
        "DomainName.__eq__(str): textual vs. construct-and-compare",
        [f"comparisons                 {comparisons}",
         f"legacy (coerce per miss)    {legacy_elapsed:.3f}s",
         f"textual (no allocation)     {fast_elapsed:.3f}s",
         f"speedup                     {speedup:.1f}x"])
    bench_metrics.record("name_eq_short_circuit",
                         comparisons=comparisons,
                         legacy_s=round(legacy_elapsed, 4),
                         textual_s=round(fast_elapsed, 4),
                         speedup=round(speedup, 2))
    assert speedup >= 2.0, (
        f"textual __eq__ only {speedup:.1f}x faster than coercion fallback")


def test_bench_monte_carlo_vectorized(bench_internet, paper_survey,
                                      figure_writer, bench_metrics):
    """Bit-parallel Monte-Carlo must match the scalar loop exactly, faster."""
    names = [record.name for record in
             paper_survey.resolved_records()[:MC_NAMES]]
    builder = DelegationGraphBuilder(bench_internet.make_resolver())
    views = [builder.tcb_view(name) for name in names]
    graphs = [builder.build(name) for name in names]
    analyzer = AvailabilityAnalyzer(0.95)

    start = time.perf_counter()
    scalar = [analyzer.monte_carlo(graph, samples=MC_SAMPLES,
                                   rng=random.Random(i))
              for i, graph in enumerate(graphs)]
    scalar_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    vectorized = [analyzer.monte_carlo(view, samples=MC_SAMPLES,
                                       rng=random.Random(i))
                  for i, view in enumerate(views)]
    vectorized_elapsed = time.perf_counter() - start

    assert vectorized == scalar, \
        "bit-parallel Monte-Carlo diverged from the scalar reference"
    speedup = scalar_elapsed / vectorized_elapsed
    figure_writer.write(
        "monte_carlo_vectorized",
        "Monte-Carlo availability: bit-parallel sweep vs. per-sample sets",
        [f"names x samples             {len(names)} x {MC_SAMPLES}",
         f"scalar (set per sample)     {scalar_elapsed:.3f}s",
         f"bit-parallel (masks)        {vectorized_elapsed:.3f}s",
         f"speedup                     {speedup:.1f}x"])
    bench_metrics.record("monte_carlo_vectorized",
                         names=len(names), samples=MC_SAMPLES,
                         scalar_s=round(scalar_elapsed, 4),
                         vectorized_s=round(vectorized_elapsed, 4),
                         speedup=round(speedup, 2))
    assert speedup >= 3.0, (
        f"bit-parallel Monte-Carlo only {speedup:.1f}x faster than scalar")
