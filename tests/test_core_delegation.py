"""Tests for :mod:`repro.core.delegation` on the hand-built mini Internet."""

from repro.dns.name import DomainName
from repro.core.delegation import (
    DelegationGraphBuilder,
    NAME_KIND,
    NS_KIND,
    ZONE_KIND,
    name_node,
    ns_node,
    zone_node,
)


def make_builder(mini_internet) -> DelegationGraphBuilder:
    return DelegationGraphBuilder(mini_internet.make_resolver())


# -- node helpers -----------------------------------------------------------------

def test_node_key_helpers_normalise_names():
    assert name_node("WWW.Example.COM") == (NAME_KIND,
                                            DomainName("www.example.com"))
    assert zone_node("com")[0] == ZONE_KIND
    assert ns_node("ns1.example.com")[0] == NS_KIND


# -- hosted name (small, self-contained TCB) -------------------------------------------

def test_hosted_name_graph_contents(mini_internet):
    builder = make_builder(mini_internet)
    graph = builder.build("www.example.com")
    assert graph.target == DomainName("www.example.com")
    tcb = {str(host) for host in graph.tcb()}
    # com registry servers plus the hosting provider's two servers.
    assert tcb == {"ns1.gtld.net", "ns2.gtld.net",
                   "ns1.hostco.com", "ns2.hostco.com"}
    zones = {str(zone) for zone in graph.zones()}
    assert {"com", "example.com", "hostco.com"} <= zones
    assert graph.tcb_size() == 4


def test_root_servers_excluded_from_tcb(mini_internet):
    builder = make_builder(mini_internet)
    graph = builder.build("www.example.com")
    assert all(not host.is_subdomain_of("root-servers.net")
               for host in graph.tcb())


def test_direct_zones_and_authoritative_zone(mini_internet):
    builder = make_builder(mini_internet)
    graph = builder.build("www.example.com")
    assert set(map(str, graph.direct_zones())) == {"com", "example.com"}
    assert str(graph.authoritative_zone()) == "example.com"


def test_hosted_name_has_no_in_bailiwick_servers(mini_internet):
    builder = make_builder(mini_internet)
    graph = builder.build("www.example.com")
    assert graph.in_bailiwick_servers() == set()


# -- transitive dependencies via off-site secondaries (the paper's Figure 1) --------------

def test_offsite_secondary_pulls_in_partner_university(mini_internet):
    builder = make_builder(mini_internet)
    graph = builder.build("www.uni.edu")
    tcb = {str(host) for host in graph.tcb()}
    # uni.edu's own servers, its off-site secondary at partner.edu, and --
    # transitively -- partner.edu's other nameserver, plus the registries.
    assert "dns1.uni.edu" in tcb
    assert "dns1.partner.edu" in tcb
    assert "dns2.partner.edu" in tcb, \
        "transitive dependency on the partner's second server missing"
    assert "ns1.edunic.net" in tcb


def test_in_bailiwick_count_for_self_hosted_name(mini_internet):
    builder = make_builder(mini_internet)
    graph = builder.build("www.uni.edu")
    in_bailiwick = {str(host) for host in graph.in_bailiwick_servers()}
    assert in_bailiwick == {"dns1.uni.edu", "dns2.uni.edu"}


def test_dependency_path_reaches_vulnerable_server(mini_internet):
    builder = make_builder(mini_internet)
    graph = builder.build("www.uni.edu")
    path = graph.dependency_path("dns2.partner.edu")
    assert path
    assert path[0] == name_node("www.uni.edu")
    assert path[-1] == ns_node("dns2.partner.edu")
    kinds = [node[0] for node in path]
    assert ZONE_KIND in kinds
    assert graph.dependency_path("not.in.graph.example") == []


def test_edge_direction_is_dependent_to_dependency(mini_internet):
    builder = make_builder(mini_internet)
    graph = builder.build("www.uni.edu")
    uni_zone = zone_node("uni.edu")
    successors = set(graph.graph.successors(uni_zone))
    assert ns_node("dns1.partner.edu") in successors


def test_structure_accessors(mini_internet):
    builder = make_builder(mini_internet)
    graph = builder.build("www.uni.edu")
    zones = graph.zones_of(name_node("www.uni.edu"))
    assert zone_node("edu") in zones
    nameservers = graph.nameservers_of_zone(zone_node("uni.edu"))
    assert ns_node("dns1.uni.edu") in nameservers
    assert graph.node_count() > graph.tcb_size()
    assert graph.edge_count() >= graph.node_count() - 1


# -- builder-level behaviour -----------------------------------------------------------------

def test_universe_shared_across_names(mini_internet):
    builder = make_builder(mini_internet)
    builder.build("www.example.com")
    queries_after_first = mini_internet.network.stats.queries_delivered
    builder.build("www.hostco.com")
    queries_after_second = mini_internet.network.stats.queries_delivered
    # The second name shares the com/hostco chains, so it needs few
    # additional queries compared to the first.
    assert queries_after_second - queries_after_first < queries_after_first


def test_build_many_returns_graph_per_name(mini_internet):
    builder = make_builder(mini_internet)
    graphs = builder.build_many(["www.example.com", "www.uni.edu"])
    assert set(map(str, graphs)) == {"www.example.com", "www.uni.edu"}


def test_chain_is_cached(mini_internet):
    builder = make_builder(mini_internet)
    first = builder.chain("www.example.com")
    second = builder.chain("www.example.com")
    assert first is second
    assert builder.queries_saved_by_cache >= 1


def test_discovered_nameservers_accumulate(mini_internet):
    builder = make_builder(mini_internet)
    builder.build("www.example.com")
    discovered_first = len(builder.discovered_nameservers())
    builder.build("www.uni.edu")
    discovered_second = len(builder.discovered_nameservers())
    assert discovered_second > discovered_first


def test_unresolvable_name_yields_empty_graph(mini_internet):
    builder = make_builder(mini_internet)
    graph = builder.build("www.nonexistent.zz")
    assert graph.tcb_size() == 0


def test_separate_graphs_do_not_share_nodes_with_unrelated_names(mini_internet):
    builder = make_builder(mini_internet)
    example = builder.build("www.example.com")
    uni = builder.build("www.uni.edu")
    assert ns_node("dns1.uni.edu") not in example.graph
    assert name_node("www.example.com") not in uni.graph
