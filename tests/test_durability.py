"""Crash-safe persistence and resumable runs.

Three layers under test:

* :mod:`repro.core.atomic` — the temp/fsync/replace commit protocol every
  persistence path rides, including the injector crash points.
* ``repro-dns fsck`` / :meth:`EpochStore.verify` / ``salvage`` — integrity
  classification (clean / salvageable / corrupt-base) on hand-corrupted
  stores, and the exit-code contract (0/1/2).
* the crash matrix — a real ``churn`` subprocess killed (via
  ``REPRO_FAULT_PLAN``) at every point of the commit protocol, on the
  serial and socket backends across two churn seeds; after fsck --salvage
  and ``churn --resume`` the store must be **byte-identical** to an
  uninterrupted run's, and the timeline fingerprint must match.

Plus the resurvey sidecar's crash-consistency protocol (sidecar commits
before the snapshot publishes, bound by content hash) and the
``interrupted_at_epoch`` marker a SIGTERM-stopped run records.
"""

import hashlib
import json
import os
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.cli import main, print_timeline
from repro.core import atomic
from repro.core.atomic import (
    AtomicFile,
    atomic_write_bytes,
    fsync_enabled,
    is_temp_path,
    no_fsync,
    publish_file,
    set_fsync,
    temp_debris,
)
from repro.core.snapshot import SnapshotFormatError, load_results
from repro.core.snapstore import EpochStore, verify_snapshot_file
from repro.core.timeline import (
    dnssec_spec_options,
    load_timeline,
    run_churn_timeline,
    save_timeline,
    timeline_fingerprint,
)
from repro.topology.churn import ChurnModel, ChurnRates
from repro.topology.generator import GeneratorConfig, InternetGenerator

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: Tiny world so every subprocess run stays well under a second.
WORLD_ARGS = ["--sld-count", "30", "--directory-names", "40",
              "--universities", "8", "--seed", "11"]

RATES_SPEC = ("transfer=1,death=0.5,upgrade=1,downgrade=0.5,"
              "region=1,dnssec=0.2")

PASSES_SPEC = "availability:samples=3,dnssec:fraction=0.3"

EPOCHS = 3

#: Churn seeds for the crash matrix — two, so nothing passes by accident.
MATRIX_SEEDS = (5, 17)

#: One fault per commit-protocol step, aimed at the store's second
#: commit: pre-temp-write, mid-write (torn temp), pre-replace (durable
#: temp, final untouched), and post-replace/pre-dir-fsync (the even
#: fsync events are the directory ones).
CRASH_POINTS = ("kill:write:2", "truncate:write:2",
                "kill:replace:2", "kill:fsync:2")

KILL_STATUS = 137


def _churn_args(churn_seed, store, output=None, backend="serial",
                extra=()):
    args = ["churn", *WORLD_ARGS, "--epochs", str(EPOCHS),
            "--churn-seed", str(churn_seed), "--rates", RATES_SPEC,
            "--passes", PASSES_SPEC, "--max-names", "24",
            "--store", str(store), "--no-fsync"]
    if output is not None:
        args += ["--output", str(output)]
    if backend == "socket":
        args += ["--backend", "socket", "--workers", "2"]
    return args + list(extra)


def _run_cli(args, fault_plan=None):
    """Run ``repro-dns`` in a subprocess (the only way to die for real)."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + existing if existing else "")
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=env, timeout=300)


def _store_files(root):
    return sorted(p.name for p in pathlib.Path(root).glob("epoch_*.rsnap"))


def _assert_stores_byte_identical(reference, resumed):
    assert _store_files(reference) == _store_files(resumed)
    for name in _store_files(reference):
        a = (pathlib.Path(reference) / name).read_bytes()
        b = (pathlib.Path(resumed) / name).read_bytes()
        assert a == b, f"{name} differs from the uninterrupted reference"


# -- atomic commit protocol --------------------------------------------------------------


def test_atomic_write_commits_atomically(tmp_path):
    target = tmp_path / "out.bin"
    target.write_bytes(b"old")
    with AtomicFile(target) as handle:
        handle.handle.write(b"new contents")
        # Mid-write the destination still holds the old bytes.
        assert target.read_bytes() == b"old"
    assert target.read_bytes() == b"new contents"
    assert temp_debris(tmp_path) == []


def test_atomic_abort_keeps_destination_and_cleans_temp(tmp_path):
    target = tmp_path / "out.bin"
    target.write_bytes(b"old")
    commit = AtomicFile(target)
    commit.handle.write(b"half-finished")
    commit.abort()
    assert target.read_bytes() == b"old"
    assert temp_debris(tmp_path) == []


def test_atomic_context_manager_aborts_on_exception(tmp_path):
    target = tmp_path / "out.bin"
    target.write_bytes(b"old")
    with pytest.raises(RuntimeError):
        with AtomicFile(target) as handle:
            handle.handle.write(b"doomed")
            raise RuntimeError("boom")
    assert target.read_bytes() == b"old"
    assert temp_debris(tmp_path) == []


def test_publish_file_moves_staged_over_final(tmp_path):
    staged = tmp_path / ".snap.staged.1"
    final = tmp_path / "snap"
    staged.write_bytes(b"payload")
    final.write_bytes(b"old")
    publish_file(staged, final)
    assert final.read_bytes() == b"payload"
    assert not staged.exists()


def test_temp_debris_detection(tmp_path):
    debris = tmp_path / ".epoch_0002.rsnap.tmp.4242"
    debris.write_bytes(b"torn")
    committed = tmp_path / "epoch_0001.rsnap"
    committed.write_bytes(b"fine")
    assert is_temp_path(debris)
    assert not is_temp_path(committed)
    assert temp_debris(tmp_path) == [debris]


def test_fsync_toggle_layers(monkeypatch):
    monkeypatch.delenv(atomic.ENV_NO_FSYNC, raising=False)
    assert fsync_enabled()
    monkeypatch.setenv(atomic.ENV_NO_FSYNC, "1")
    assert not fsync_enabled()
    # The process-wide override beats the environment...
    previous = set_fsync(True)
    try:
        assert fsync_enabled()
        with no_fsync():  # ...and the context manager beats both.
            assert not fsync_enabled()
        assert fsync_enabled()
    finally:
        set_fsync(previous)


# -- reference run (shared by fsck + resume tests) ---------------------------------------


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted serial run: store + timeline, reused read-only."""
    root = tmp_path_factory.mktemp("reference")
    store = root / "store"
    timeline = root / "timeline.json"
    result = _run_cli(_churn_args(MATRIX_SEEDS[0], store, output=timeline))
    assert result.returncode == 0, result.stderr
    return {"store": store, "timeline": timeline}


def _corrupt_copy(reference, tmp_path):
    store = tmp_path / "store"
    shutil.copytree(reference["store"], store)
    return store


# -- store integrity: verify / salvage / fsck --------------------------------------------


def test_verify_clean_store(reference):
    report = EpochStore(reference["store"]).verify()
    assert report.classification == "clean"
    assert report.ok
    assert report.valid_epochs == EPOCHS + 1
    assert report.problems == ()
    assert report.debris == ()


def test_truncated_tail_is_salvageable(reference, tmp_path):
    store = _corrupt_copy(reference, tmp_path)
    tail = store / f"epoch_{EPOCHS:04d}.rsnap"
    tail.write_bytes(tail.read_bytes()[:tail.stat().st_size // 2])
    report = EpochStore(store).verify()
    assert report.classification == "salvageable"
    assert report.valid_epochs == EPOCHS
    assert [problem.epoch for problem in report.problems] == [EPOCHS]

    _, moved = EpochStore(store).salvage()
    assert (store / "quarantine" / tail.name).exists()
    assert [path.name for path in moved] == [tail.name]
    assert EpochStore(store).verify().classification == "clean"


def test_payload_bitflip_detected_by_checksum(reference, tmp_path):
    store = _corrupt_copy(reference, tmp_path)
    victim = store / "epoch_0002.rsnap"
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    victim.write_bytes(bytes(blob))
    report = EpochStore(store).verify()
    assert report.classification == "salvageable"
    # Epoch 2 breaks the prefix: epoch 3 is intact but unreachable, so
    # both quarantine.
    assert report.valid_epochs == 2
    _, moved = EpochStore(store).salvage()
    assert sorted(path.name for path in moved) == \
        ["epoch_0002.rsnap", "epoch_0003.rsnap"]


def test_missing_middle_epoch_raises_and_names_the_gap(reference, tmp_path):
    store = _corrupt_copy(reference, tmp_path)
    (store / "epoch_0001.rsnap").unlink()
    with pytest.raises(SnapshotFormatError) as exc:
        EpochStore(store).epochs
    assert "epoch_0001.rsnap is missing" in str(exc.value)
    assert "fsck" in str(exc.value)
    report = EpochStore(store).verify()
    assert report.valid_epochs == 1
    assert any(problem.epoch == 1 for problem in report.problems)


def test_debris_only_store_salvages_clean(reference, tmp_path):
    store = _corrupt_copy(reference, tmp_path)
    debris = store / ".epoch_0004.rsnap.tmp.31337"
    debris.write_bytes(b"interrupted commit")
    report = EpochStore(store).verify()
    assert report.classification == "salvageable"
    assert report.valid_epochs == EPOCHS + 1  # debris never hides epochs
    _, moved = EpochStore(store).salvage()
    assert moved == [debris]
    assert not debris.exists()


def test_corrupt_base_refuses_salvage(reference, tmp_path):
    store = _corrupt_copy(reference, tmp_path)
    (store / "epoch_0000.rsnap").write_bytes(b"not a snapshot at all")
    report = EpochStore(store).verify()
    assert report.classification == "corrupt-base"
    assert report.valid_epochs == 0
    with pytest.raises(SnapshotFormatError, match="no valid prefix"):
        EpochStore(store).salvage()


def test_fsck_cli_exit_codes(reference, tmp_path, capsys):
    assert main(["fsck", str(reference["store"])]) == 0
    assert "clean" in capsys.readouterr().out

    store = _corrupt_copy(reference, tmp_path)
    tail = store / f"epoch_{EPOCHS:04d}.rsnap"
    tail.write_bytes(tail.read_bytes()[:100])
    assert main(["fsck", str(store)]) == 1  # salvageable, not salvaged
    assert "--salvage" in capsys.readouterr().out
    assert main(["fsck", str(store), "--salvage"]) == 0
    assert "salvaged" in capsys.readouterr().out
    assert main(["fsck", str(store)]) == 0
    capsys.readouterr()

    (store / "epoch_0000.rsnap").write_bytes(b"garbage")
    assert main(["fsck", str(store)]) == 2
    assert main(["fsck", str(store), "--salvage"]) == 2
    capsys.readouterr()

    assert main(["fsck", str(tmp_path / "does-not-exist")]) == 2
    capsys.readouterr()


def test_fsck_cli_single_files(reference, tmp_path, capsys):
    epoch0 = reference["store"] / "epoch_0000.rsnap"
    assert main(["fsck", str(epoch0)]) == 0

    truncated = tmp_path / "short.rsnap"
    truncated.write_bytes(epoch0.read_bytes()[:200])
    assert main(["fsck", str(truncated)]) == 2

    flipped = tmp_path / "flipped.rsnap"
    blob = bytearray(epoch0.read_bytes())
    blob[-10] ^= 0xFF
    flipped.write_bytes(bytes(blob))
    assert main(["fsck", str(flipped)]) == 2

    # A single snapshot has no salvageable prefix.
    assert main(["fsck", str(epoch0), "--salvage"]) == 2
    capsys.readouterr()


def test_verify_snapshot_file_walks_payload(reference, tmp_path):
    epoch0 = reference["store"] / "epoch_0000.rsnap"
    verify_snapshot_file(epoch0)
    blob = bytearray(epoch0.read_bytes())
    blob[len(blob) // 2] ^= 0xFF  # payload byte; the TOC sits at the end
    bad = tmp_path / "bad.rsnap"
    bad.write_bytes(bytes(blob))
    with pytest.raises(SnapshotFormatError, match="checksum"):
        verify_snapshot_file(bad)


# -- resume: guards and determinism ------------------------------------------------------


def test_resume_requires_store(capsys):
    assert main(["churn", *WORLD_ARGS, "--epochs", "2", "--resume"]) == 2
    assert "--resume requires --store" in capsys.readouterr().err


def test_resume_empty_store_is_an_error(tmp_path, capsys):
    (tmp_path / "store").mkdir()
    code = main(_churn_args(MATRIX_SEEDS[0], tmp_path / "store",
                            extra=["--resume"]))
    assert code == 2
    assert "nothing to resume" in capsys.readouterr().err


def test_resume_rejects_mismatched_run_arguments(reference, tmp_path,
                                                 capsys):
    store = _corrupt_copy(reference, tmp_path)
    args = ["churn", *WORLD_ARGS, "--epochs", str(EPOCHS),
            "--churn-seed", str(MATRIX_SEEDS[0]), "--rates", RATES_SPEC,
            "--passes", "availability:samples=3",  # dnssec pass dropped
            "--max-names", "24", "--store", str(store), "--no-fsync",
            "--resume"]
    assert main(args) == 2
    assert "passes" in capsys.readouterr().err


def test_resume_rejects_corrupt_store_with_fsck_hint(reference, tmp_path,
                                                     capsys):
    store = _corrupt_copy(reference, tmp_path)
    tail = store / "epoch_0002.rsnap"
    tail.write_bytes(tail.read_bytes()[:100])
    code = main(_churn_args(MATRIX_SEEDS[0], store, extra=["--resume"]))
    assert code == 2
    assert "fsck" in capsys.readouterr().err


def test_resume_completes_partial_store_byte_identically(reference,
                                                         tmp_path, capsys):
    store = _corrupt_copy(reference, tmp_path)
    (store / f"epoch_{EPOCHS:04d}.rsnap").unlink()
    timeline_path = tmp_path / "timeline.json"
    code = main(_churn_args(MATRIX_SEEDS[0], store, output=timeline_path,
                            extra=["--resume"]))
    capsys.readouterr()
    assert code == 0
    _assert_stores_byte_identical(reference["store"], store)
    assert timeline_fingerprint(load_timeline(timeline_path)) == \
        timeline_fingerprint(load_timeline(reference["timeline"]))


# -- the crash matrix --------------------------------------------------------------------


@pytest.fixture(scope="module")
def matrix_references(tmp_path_factory):
    """Uninterrupted (backend, seed) reference runs for byte comparison."""
    references = {}
    for backend in ("serial", "socket"):
        for seed in MATRIX_SEEDS:
            root = tmp_path_factory.mktemp(f"ref_{backend}_{seed}")
            store, timeline = root / "store", root / "timeline.json"
            result = _run_cli(_churn_args(seed, store, output=timeline,
                                          backend=backend))
            assert result.returncode == 0, result.stderr
            references[(backend, seed)] = {"store": store,
                                           "timeline": timeline}
    return references


@pytest.mark.parametrize("plan", CRASH_POINTS)
@pytest.mark.parametrize("seed", MATRIX_SEEDS)
@pytest.mark.parametrize("backend", ("serial", "socket"))
def test_crash_matrix(matrix_references, tmp_path, capsys, backend, seed,
                      plan):
    """Kill a real churn run at one commit-protocol point; salvage;
    resume; demand bytes identical to the uninterrupted reference."""
    reference = matrix_references[(backend, seed)]
    store = tmp_path / "store"

    crashed = _run_cli(_churn_args(seed, store, backend=backend),
                       fault_plan=f"seed=1,{plan}")
    assert crashed.returncode == KILL_STATUS, (
        f"expected the injected kill, got rc={crashed.returncode}: "
        f"{crashed.stderr}")

    # Whatever the crash left behind, every *committed* epoch must load —
    # the atomic protocol never exposes a torn file under a final name.
    report = EpochStore(store).verify()
    assert report.problems == (), [str(p) for p in report.problems]
    assert report.valid_epochs >= 1

    # fsck classifies (debris from mid-commit kills is legal), salvage
    # leaves it clean.
    assert main(["fsck", str(store)]) in (0, 1)
    assert main(["fsck", str(store), "--salvage"]) == 0
    capsys.readouterr()

    timeline_path = tmp_path / "timeline.json"
    resumed = _run_cli(_churn_args(seed, store, output=timeline_path,
                                   backend=backend, extra=["--resume"]))
    assert resumed.returncode == 0, resumed.stderr

    _assert_stores_byte_identical(reference["store"], store)
    assert timeline_fingerprint(load_timeline(timeline_path)) == \
        timeline_fingerprint(load_timeline(reference["timeline"]))


# -- resurvey sidecar crash consistency --------------------------------------------------


@pytest.fixture(scope="module")
def survey_snapshot(tmp_path_factory):
    root = tmp_path_factory.mktemp("sidecar")
    snapshot = root / "prev.json"
    result = _run_cli(["survey", *WORLD_ARGS, "--max-names", "24",
                       "--output", str(snapshot)])
    assert result.returncode == 0, result.stderr
    return snapshot


def _first_host_mutation(snapshot):
    results = load_results(snapshot)
    host = sorted(results.fingerprints, key=str)[0]
    return f"set-software:host={host};software=BIND 8.2.2"


def test_sidecar_crash_between_commits_is_detected(survey_snapshot,
                                                   tmp_path):
    """Kill resurvey after the sidecar commits but before the snapshot
    publishes: the stale snapshot/new sidecar pair must be *rejected*
    (by hash), never silently replayed."""
    out = tmp_path / "next.json"
    mutation = _first_host_mutation(survey_snapshot)
    base = ["resurvey", str(survey_snapshot), *WORLD_ARGS,
            "--max-names", "24", "--mutate", mutation,
            "--output", str(out)]
    # replace events during the output commit: 1 = staged snapshot,
    # 2 = sidecar, 3 = snapshot publish.  Kill before the publish.
    crashed = _run_cli(base, fault_plan="seed=1,kill:replace:3")
    assert crashed.returncode == KILL_STATUS
    assert not out.exists()
    sidecar = pathlib.Path(str(out) + ".journal")
    assert sidecar.exists()  # committed first, describes the lost snapshot

    # A later resurvey pretending the pair is consistent must fail loudly.
    shutil.copy(survey_snapshot, out)
    replay = _run_cli(["resurvey", str(out), *WORLD_ARGS,
                       "--max-names", "24"])
    assert replay.returncode == 2
    assert "never completed" in replay.stderr


def test_sidecar_crash_before_sidecar_commit_keeps_old_pair(
        survey_snapshot, tmp_path):
    """Kill before the sidecar replaces: the old snapshot stays usable
    and a rerun of the same resurvey completes and verifies."""
    out = tmp_path / "next.json"
    mutation = _first_host_mutation(survey_snapshot)
    base = ["resurvey", str(survey_snapshot), *WORLD_ARGS,
            "--max-names", "24", "--mutate", mutation,
            "--output", str(out)]
    crashed = _run_cli(base, fault_plan="seed=1,kill:replace:2")
    assert crashed.returncode == KILL_STATUS
    assert not out.exists()
    assert not pathlib.Path(str(out) + ".journal").exists()

    redo = _run_cli(base)
    assert redo.returncode == 0, redo.stderr
    payload = json.loads(pathlib.Path(str(out) + ".journal").read_text())
    assert payload["specs"] == [mutation]
    assert payload["snapshot_sha256"] == \
        hashlib.sha256(out.read_bytes()).hexdigest()

    # And the committed pair chains: a further no-mutation resurvey
    # replays the sidecar without complaint.
    chained = _run_cli(["resurvey", str(out), *WORLD_ARGS,
                        "--max-names", "24"])
    assert chained.returncode == 0, chained.stderr
    assert "replayed 1 prior mutation(s)" in chained.stdout


# -- interrupted timelines ---------------------------------------------------------------


def _tiny_world():
    config = GeneratorConfig(seed=11, sld_count=30,
                             directory_name_count=40, university_count=8)
    return InternetGenerator(config).generate()


def _tiny_model(world):
    fraction, dnssec_seed, sign_tlds = dnssec_spec_options(PASSES_SPEC)
    return ChurnModel(world, ChurnRates.parse(RATES_SPEC), seed=5,
                      initial_dnssec=fraction, dnssec_seed=dnssec_seed,
                      dnssec_sign_tlds=sign_tlds)


@pytest.fixture(scope="module")
def interrupted_timeline():
    """A run stopped after epoch 1 of 3 by the graceful-stop hook."""
    world = _tiny_world()
    done = []

    def stop():
        return len(done) >= 2  # baseline + epoch 1 committed

    with no_fsync():
        timeline = run_churn_timeline(
            world, _tiny_model(world), epochs=EPOCHS, passes=PASSES_SPEC,
            max_names=24)
        world2 = _tiny_world()
        interrupted = run_churn_timeline(
            world2, _tiny_model(world2), epochs=EPOCHS, passes=PASSES_SPEC,
            max_names=24, progress=lambda *a: done.append(a),
            should_stop=stop)
    return {"full": timeline, "interrupted": interrupted}


def test_interrupted_marker_set_and_consistent(interrupted_timeline):
    timeline = interrupted_timeline["interrupted"]
    assert timeline.interrupted_at == 1
    assert timeline.snapshots[-1].epoch == 1
    assert interrupted_timeline["full"].interrupted_at is None


def test_interrupted_round_trip_and_validate(interrupted_timeline,
                                             tmp_path):
    timeline = interrupted_timeline["interrupted"]
    path = save_timeline(timeline, tmp_path / "t.json")
    loaded = load_timeline(path)
    assert loaded.interrupted_at == 1
    loaded.validate()
    assert json.loads(path.read_text())["config"][
        "interrupted_at_epoch"] == 1

    # A marker that does not point at the last snapshot is corruption.
    loaded.config["interrupted_at_epoch"] = 5
    with pytest.raises(ValueError, match="interrupted_at_epoch"):
        loaded.validate()


def test_interrupted_render_banner(interrupted_timeline, capsys):
    print_timeline(interrupted_timeline["interrupted"])
    output = capsys.readouterr().out
    assert "INTERRUPTED at epoch 1" in output
    assert "--resume" in output
    print_timeline(interrupted_timeline["full"])
    assert "INTERRUPTED" not in capsys.readouterr().out


def test_fingerprint_ignores_timing_but_not_content(interrupted_timeline):
    import dataclasses
    timeline = interrupted_timeline["full"]
    base = timeline_fingerprint(timeline)

    snapshots = list(timeline.snapshots)
    retimed = dataclasses.replace(snapshots[-1],
                                  delta_elapsed_s=snapshots[-1]
                                  .delta_elapsed_s + 99.0)
    timed = dataclasses.replace(timeline,
                                snapshots=snapshots[:-1] + [retimed])
    assert timeline_fingerprint(timed) == base

    moved = dataclasses.replace(snapshots[-1],
                                dirty_names=snapshots[-1].dirty_names + 1)
    changed = dataclasses.replace(timeline,
                                  snapshots=snapshots[:-1] + [moved])
    assert timeline_fingerprint(changed) != base

    # An interrupted run is distinguishable from a completed one...
    assert timeline_fingerprint(
        interrupted_timeline["interrupted"]) != base
