"""Operator organisations: who runs nameservers and for whom.

The paper's Section 3.3 distinguishes operators by what they are — gTLD
registries, ISPs with a fiduciary relationship to their customers, and
universities or non-profits that serve zones as a favour.  The generator
models every nameserver as belonging to an :class:`Organization` of a
particular :class:`OperatorKind`, which determines how many servers it runs,
where they sit in the namespace, how its BIND versions are chosen, and how
willing it is to act as an off-site secondary for others.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from repro.dns.name import DomainName, NameLike


class OperatorKind(enum.Enum):
    """Classes of nameserver operators used by the generator."""

    ROOT = "root"                  # root-server operators
    GTLD_REGISTRY = "gtld-registry"
    CCTLD_REGISTRY = "cctld-registry"
    HOSTING_PROVIDER = "hosting"   # commercial DNS/web hosting
    ISP = "isp"                    # access providers running customer DNS
    UNIVERSITY = "university"      # .edu and foreign academic institutions
    ENTERPRISE = "enterprise"      # self-hosting companies
    GOVERNMENT = "government"      # civilian government agencies
    NONPROFIT = "nonprofit"        # .org style organisations
    SMALL_BUSINESS = "small-business"

    @property
    def is_registry(self) -> bool:
        """True for TLD registry operators."""
        return self in (OperatorKind.GTLD_REGISTRY, OperatorKind.CCTLD_REGISTRY)

    @property
    def provides_secondary_service(self) -> bool:
        """True if the operator commonly slaves zones for outside parties.

        Universities and ISPs historically did this informally, which is
        exactly the behaviour that creates long transitive trust chains.
        """
        return self in (OperatorKind.UNIVERSITY, OperatorKind.ISP,
                        OperatorKind.HOSTING_PROVIDER, OperatorKind.NONPROFIT)


@dataclasses.dataclass
class Organization:
    """An organisation operating DNS infrastructure.

    Attributes
    ----------
    name:
        Human-readable identifier (also used to derive hostnames).
    kind:
        The operator class.
    domain:
        The organisation's own domain (its nameservers usually live here).
    region:
        Geographic region, used for latency and for "far-flung secondary"
        anecdotes.
    nameservers:
        Hostnames of the nameservers this organisation operates.
    hosted_zones:
        Apex names of zones this organisation's servers are authoritative
        for (its own zone plus any customer / secondary zones).
    hygiene:
        0..1 score describing patching discipline; feeds BIND assignment.
    """

    name: str
    kind: OperatorKind
    domain: DomainName
    region: str = "us"
    nameservers: List[DomainName] = dataclasses.field(default_factory=list)
    hosted_zones: List[DomainName] = dataclasses.field(default_factory=list)
    hygiene: float = 0.8

    def add_nameserver(self, hostname: NameLike) -> DomainName:
        """Register a nameserver hostname as belonging to this organisation."""
        hostname = DomainName(hostname)
        if hostname not in self.nameservers:
            self.nameservers.append(hostname)
        return hostname

    def remove_nameserver(self, hostname: NameLike) -> bool:
        """Forget a nameserver hostname (e.g. decommissioned); True if known."""
        hostname = DomainName(hostname)
        if hostname in self.nameservers:
            self.nameservers.remove(hostname)
            return True
        return False

    def add_hosted_zone(self, apex: NameLike) -> DomainName:
        """Record that this organisation serves the zone rooted at ``apex``."""
        apex = DomainName(apex)
        if apex not in self.hosted_zones:
            self.hosted_zones.append(apex)
        return apex

    @property
    def tld(self) -> Optional[str]:
        """The TLD the organisation's own domain lives under."""
        return self.domain.tld

    @property
    def is_educational(self) -> bool:
        """True for .edu-style operators (Figure 9's population)."""
        return self.kind is OperatorKind.UNIVERSITY

    def __repr__(self) -> str:
        return (f"Organization({self.name!r}, {self.kind.value}, "
                f"domain={self.domain!s}, ns={len(self.nameservers)})")


class OrganizationRegistry:
    """Index of all organisations in a synthetic Internet."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Organization] = {}
        self._by_domain: Dict[DomainName, Organization] = {}
        self._by_nameserver: Dict[DomainName, Organization] = {}

    def add(self, organization: Organization) -> Organization:
        """Register an organisation (idempotent by name)."""
        existing = self._by_name.get(organization.name)
        if existing is not None:
            return existing
        self._by_name[organization.name] = organization
        self._by_domain[organization.domain] = organization
        for nameserver in organization.nameservers:
            self._by_nameserver[nameserver] = organization
        return organization

    def index_nameserver(self, hostname: NameLike,
                         organization: Organization) -> None:
        """Associate a nameserver hostname with its operator."""
        self._by_nameserver[DomainName(hostname)] = organization

    def forget_nameserver(self, hostname: NameLike) -> None:
        """Drop a nameserver's operator association (and org membership)."""
        hostname = DomainName(hostname)
        organization = self._by_nameserver.pop(hostname, None)
        if organization is not None:
            organization.remove_nameserver(hostname)

    def by_name(self, name: str) -> Optional[Organization]:
        """Look up an organisation by its identifier."""
        return self._by_name.get(name)

    def by_domain(self, domain: NameLike) -> Optional[Organization]:
        """Look up an organisation by its own domain."""
        return self._by_domain.get(DomainName(domain))

    def operator_of(self, nameserver: NameLike) -> Optional[Organization]:
        """The organisation operating ``nameserver``, if known."""
        return self._by_nameserver.get(DomainName(nameserver))

    def of_kind(self, kind: OperatorKind) -> List[Organization]:
        """All organisations of the given kind."""
        return [org for org in self._by_name.values() if org.kind is kind]

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())
