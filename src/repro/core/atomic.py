"""Atomic, durable file commits for every persistence path.

Everything the survey persists — binary snapshots, delta epochs,
universe saves, timeline JSON, journal sidecars — goes through one
commit protocol so a reader can never observe a torn file:

1. open a temp file *in the destination directory* (same filesystem,
   so the final rename is atomic);
2. stream the payload, flush, ``fsync`` the temp file;
3. ``os.replace`` the temp over the destination (atomic on POSIX);
4. ``fsync`` the destination directory so the rename itself is durable.

A crash at any point leaves either the old file intact or the new file
complete — the only debris is a temp file (``.<name>.tmp.<pid>``),
which :meth:`repro.core.snapstore.EpochStore.verify` reports and
``salvage`` removes.

Two escape hatches:

* ``fsync`` can be disabled (``REPRO_NO_FSYNC=1``, :func:`set_fsync`,
  or the ``churn --no-fsync`` flag) for tests and benchmarks where
  durability-across-power-loss is irrelevant; atomicity (temp +
  rename) is kept regardless.
* the commit steps fire ``write`` / ``fsync`` / ``replace`` events
  into an installed fault injector (see :mod:`repro.distrib.faults`),
  which is how the crash-matrix tests kill the process at every point
  of the protocol and prove recovery.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator, Optional, Union

#: Set to any value but ``""``/``"0"`` to skip fsync calls process-wide.
ENV_NO_FSYNC = "REPRO_NO_FSYNC"

#: Infix marking a not-yet-committed temp file (crash debris when seen
#: at rest).  Temp names are ``.<final-name><TEMP_INFIX><pid>``.
TEMP_INFIX = ".tmp."

#: Process-wide override for :func:`fsync_enabled` (None = consult env).
_FSYNC_OVERRIDE: Optional[bool] = None

#: The installed io fault injector (None outside crash tests).  Must
#: expose ``io_event(point) -> Optional[FaultAction]``; installed
#: alongside the wire injector by
#: :func:`repro.distrib.wire.install_fault_injector`.
_IO_INJECTOR = None


def install_io_injector(injector):
    """Install (or, with None, clear) the io fault injector.

    Returns the previously installed injector so tests can restore it.
    """
    global _IO_INJECTOR
    previous = _IO_INJECTOR
    _IO_INJECTOR = injector
    return previous


def io_injector():
    """The currently installed io fault injector, or None."""
    return _IO_INJECTOR


def _io_event(point: str):
    if _IO_INJECTOR is not None:
        return _IO_INJECTOR.io_event(point)
    return None


def fsync_enabled() -> bool:
    """Whether commits fsync (override beats ``REPRO_NO_FSYNC``)."""
    if _FSYNC_OVERRIDE is not None:
        return _FSYNC_OVERRIDE
    return os.environ.get(ENV_NO_FSYNC, "") in ("", "0")


def set_fsync(enabled: Optional[bool]) -> Optional[bool]:
    """Set the process-wide fsync override; returns the previous one."""
    global _FSYNC_OVERRIDE
    previous = _FSYNC_OVERRIDE
    _FSYNC_OVERRIDE = None if enabled is None else bool(enabled)
    return previous


@contextlib.contextmanager
def no_fsync() -> Iterator[None]:
    """Temporarily disable fsync (benchmarks, bulk test fixtures)."""
    previous = set_fsync(False)
    try:
        yield
    finally:
        set_fsync(previous)


def is_temp_path(path: Union[str, Path]) -> bool:
    """True if ``path`` names uncommitted temp debris from this module."""
    name = Path(path).name
    return name.startswith(".") and TEMP_INFIX in name


def temp_debris(directory: Union[str, Path]):
    """The uncommitted temp files lying in ``directory`` (sorted)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(p for p in directory.iterdir()
                  if p.is_file() and is_temp_path(p))


def fsync_directory(path: Union[str, Path]) -> None:
    """fsync a directory so a just-committed rename inside it is durable."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return  # e.g. a platform that cannot open directories
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class AtomicFile:
    """A binary file handle whose contents appear atomically on commit.

    Usable directly (``handle`` / ``commit()`` / ``abort()``) or as a
    context manager (commit on clean exit, abort on exception)::

        with AtomicFile(path) as atomic:
            atomic.handle.write(payload)

    ``fsync=None`` (the default) defers to :func:`fsync_enabled`.
    """

    def __init__(self, path: Union[str, Path],
                 fsync: Optional[bool] = None):
        self.path = Path(path)
        self._fsync = fsync
        self.temp_path = self.path.parent / (
            f".{self.path.name}{TEMP_INFIX}{os.getpid()}")
        self._committed = False
        self._aborted = False
        # ``write`` event: the pre-temp-write crash point.  A returned
        # ``truncate`` action is staged — commit() writes a torn temp
        # (half the payload) and dies, simulating a mid-write crash.
        action = _io_event("write")
        self._torn = action is not None and action.op == "truncate"
        self.handle = self.temp_path.open("wb")

    # -- commit protocol -----------------------------------------------------------------

    def commit(self) -> None:
        """flush -> fsync(temp) -> replace -> fsync(dir)."""
        if self._committed or self._aborted:
            return
        do_fsync = fsync_enabled() if self._fsync is None else self._fsync
        self.handle.flush()
        if self._torn:
            self._die_torn()
        _io_event("fsync")  # crash here: temp complete, final untouched
        if do_fsync:
            os.fsync(self.handle.fileno())
        self.handle.close()
        _io_event("replace")  # crash here: temp durable, final untouched
        os.replace(self.temp_path, self.path)
        _io_event("fsync")  # crash here: final complete, rename volatile
        if do_fsync:
            fsync_directory(self.path.parent)
        self._committed = True

    def abort(self) -> None:
        """Close and remove the temp file; the destination is untouched."""
        if self._committed or self._aborted:
            return
        self._aborted = True
        try:
            self.handle.close()
        except OSError:
            pass
        try:
            self.temp_path.unlink()
        except OSError:
            pass

    def _die_torn(self) -> None:
        # Leave half the payload on disk, then die the way SIGKILL
        # would: no cleanup, no atexit, torn temp left behind.
        size = os.fstat(self.handle.fileno()).st_size
        os.ftruncate(self.handle.fileno(), max(1, size // 2))
        os.fsync(self.handle.fileno())
        self.handle.close()
        os._exit(137)  # faults.KILL_EXIT_STATUS (no import cycle)

    # -- context manager -----------------------------------------------------------------

    def __enter__(self) -> "AtomicFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.abort()


def publish_file(staged: Union[str, Path], final: Union[str, Path],
                 fsync: Optional[bool] = None) -> None:
    """Atomically publish an already-committed staged file at ``final``.

    The tail of the commit protocol for callers that must interleave
    another commit between writing a payload and revealing it (the
    resurvey sidecar protocol: stage snapshot, commit sidecar, publish
    snapshot).  Fires the same ``replace``/``fsync`` crash points as
    :meth:`AtomicFile.commit`.
    """
    staged = Path(staged)
    final = Path(final)
    do_fsync = fsync_enabled() if fsync is None else fsync
    _io_event("replace")  # crash here: staged durable, final untouched
    os.replace(staged, final)
    _io_event("fsync")  # crash here: final complete, rename volatile
    if do_fsync:
        fsync_directory(final.parent)


def atomic_write_bytes(path: Union[str, Path], data: bytes,
                       fsync: Optional[bool] = None) -> None:
    """Atomically replace ``path``'s contents with ``data``."""
    with AtomicFile(path, fsync=fsync) as atomic:
        atomic.handle.write(data)


def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8",
                      fsync: Optional[bool] = None) -> None:
    """Atomically replace ``path``'s contents with encoded ``text``."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


@contextlib.contextmanager
def atomic_writer(path: Union[str, Path],
                  fsync: Optional[bool] = None):
    """Context manager yielding a binary handle committed atomically."""
    atomic = AtomicFile(path, fsync=fsync)
    try:
        yield atomic.handle
    except BaseException:
        atomic.abort()
        raise
    atomic.commit()
