"""Tests for the synthetic Internet generator and the planted anecdotes.

These tests use the session-scoped ``small_internet`` fixture; its
configuration is small but exercises every builder stage (registries, ccTLDs,
providers, ISPs, universities, generic SLDs, anecdotes).
"""

import pytest

from repro.dns.name import DomainName, ROOT_NAME
from repro.dns.rdtypes import RRType
from repro.topology.anecdotes import FBI_WEB_NAME, LVIV_WEB_NAME
from repro.topology.generator import GeneratorConfig, InternetGenerator
from repro.topology.operators import OperatorKind
from repro.vulns.database import default_database


# -- configuration validation -----------------------------------------------------

def test_config_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        GeneratorConfig(sld_count=-1).validate()
    with pytest.raises(ValueError):
        GeneratorConfig(offsite_secondary_prob=1.5).validate()
    with pytest.raises(ValueError):
        GeneratorConfig(hosting_provider_count=0).validate()
    with pytest.raises(ValueError):
        GeneratorConfig(university_group_sizes=(2, 3),
                        university_group_weights=(1.0,)).validate()


def test_generator_rejects_invalid_config_at_construction():
    with pytest.raises(ValueError):
        InternetGenerator(GeneratorConfig(multi_provider_prob=2.0))


# -- structural invariants ------------------------------------------------------------

def test_root_zone_and_hints(small_internet):
    root_zone = small_internet.zone(ROOT_NAME)
    assert root_zone is not None
    assert len(root_zone.apex_nameservers()) == 13
    assert len(small_internet.root_hints) == 13
    for hostname, addresses in small_internet.root_hints.items():
        assert hostname.is_subdomain_of("root-servers.net")
        assert addresses


def test_every_tld_is_delegated_from_root(small_internet):
    root_zone = small_internet.zone(ROOT_NAME)
    for label in ("com", "net", "edu", "gov", "ua", "de"):
        delegation = root_zone.get_delegation(label)
        assert delegation is not None, label
        assert delegation.nameservers
        zone = small_internet.zone(label)
        assert zone is not None
        assert zone.apex_nameservers()


def test_all_servers_registered_on_network(small_internet):
    for hostname, server in small_internet.servers.items():
        assert small_internet.network.find_server(hostname) is server
        assert server.addresses
    # Other tests may register extra (attacker) hosts on the shared network,
    # so the network can only ever know about at least as many servers.
    assert small_internet.network.server_count() >= \
        small_internet.server_count()
    assert small_internet.non_root_server_count() == \
        small_internet.server_count() - 13


def test_every_zone_has_apex_ns_and_serving_servers(small_internet):
    for apex, zone in small_internet.zones.items():
        nameservers = zone.apex_nameservers()
        assert nameservers, f"zone {apex} has no NS"
        served = [small_internet.server(ns) for ns in nameservers
                  if small_internet.server(ns) is not None]
        assert any(zone in server.zones() for server in served), \
            f"zone {apex} not attached to any of its nameservers"


def test_delegations_match_child_zone_location(small_internet):
    com_zone = small_internet.zone("com")
    for delegation in com_zone.iter_delegations():
        child_zone = small_internet.zone(delegation.child)
        assert child_zone is not None
        for nameserver in delegation.nameservers:
            # In-bailiwick delegation nameservers must carry glue.
            if nameserver.is_subdomain_of(delegation.child):
                assert nameserver in delegation.glue


def test_nameserver_hostnames_have_address_records(small_internet):
    missing = []
    for hostname in small_internet.servers:
        if hostname.is_subdomain_of("root-servers.net"):
            continue
        holder = None
        for apex, zone in small_internet.zones.items():
            if hostname.is_subdomain_of(apex) and \
                    zone.get_rrset(hostname, RRType.A):
                holder = zone
                break
        missing.append(hostname) if holder is None else None
    assert not [h for h in missing if h is not None]


def test_operator_registry_covers_all_servers(small_internet):
    for hostname in small_internet.servers:
        org = small_internet.organizations.operator_of(hostname)
        assert org is not None, hostname


def test_directory_names_resolve(small_internet):
    resolver = small_internet.make_resolver()
    entries = small_internet.directory.entries()[:40]
    for entry in entries:
        trace = resolver.resolve(entry.name)
        assert trace.succeeded, f"{entry.name} did not resolve"


def test_directory_composition(small_internet):
    directory = small_internet.directory
    assert len(directory) >= 200
    counts = directory.tld_counts()
    assert counts.get("com", 0) > counts.get("ua", 0)
    assert "edu" in counts
    categories = {entry.category for entry in directory}
    assert {"small-business", "enterprise", "university"} <= categories


def test_vulnerable_server_fraction_in_plausible_band(small_internet):
    database = default_database()
    servers = [server for hostname, server in small_internet.servers.items()
               if not hostname.is_subdomain_of("root-servers.net")]
    vulnerable = sum(1 for server in servers
                     if database.is_vulnerable(server.software))
    fraction = vulnerable / len(servers)
    assert 0.08 <= fraction <= 0.35


def test_gtld_registry_servers_are_safe(small_internet):
    database = default_database()
    for hostname, server in small_internet.servers.items():
        org = small_internet.organizations.operator_of(hostname)
        if org is not None and org.kind in (OperatorKind.ROOT,
                                            OperatorKind.GTLD_REGISTRY):
            assert not database.is_vulnerable(server.software), hostname


def test_universities_form_exchange_groups(small_internet):
    universities = small_internet.organizations.of_kind(OperatorKind.UNIVERSITY)
    assert universities
    offsite = 0
    for university in universities:
        zone = small_internet.zone(university.domain)
        if zone is None:
            continue
        for nameserver in zone.apex_nameservers():
            if not nameserver.is_subdomain_of(university.domain):
                offsite += 1
    assert offsite > 0, "no university uses an off-site secondary"


def test_seed_reproducibility():
    config = GeneratorConfig(seed=5, sld_count=40, directory_name_count=60,
                             university_count=10, hosting_provider_count=4,
                             isp_count=3)
    first = InternetGenerator(config).generate()
    second = InternetGenerator(config).generate()
    assert sorted(map(str, first.servers)) == sorted(map(str, second.servers))
    assert [str(e.name) for e in first.directory] == \
        [str(e.name) for e in second.directory]
    first_banner = {str(h): s.software for h, s in first.servers.items()}
    second_banner = {str(h): s.software for h, s in second.servers.items()}
    assert first_banner == second_banner


def test_different_seeds_differ():
    base = GeneratorConfig(seed=5, sld_count=40, directory_name_count=60,
                           university_count=10, hosting_provider_count=4,
                           isp_count=3)
    other = GeneratorConfig(seed=6, sld_count=40, directory_name_count=60,
                            university_count=10, hosting_provider_count=4,
                            isp_count=3)
    first = InternetGenerator(base).generate()
    second = InternetGenerator(other).generate()
    first_banner = {str(h): s.software for h, s in first.servers.items()}
    second_banner = {str(h): s.software for h, s in second.servers.items()}
    assert first_banner != second_banner


def test_summary_keys(small_internet):
    summary = small_internet.summary()
    assert set(summary) == {"servers", "zones", "organizations",
                            "directory_names", "tlds"}
    assert summary["servers"] > 100


def test_restricted_tld_set():
    config = GeneratorConfig(seed=2, sld_count=30, directory_name_count=40,
                             university_count=6, hosting_provider_count=3,
                             isp_count=2, include_cctlds=["de", "uk"],
                             plant_anecdotes=False)
    internet = InternetGenerator(config).generate()
    cctlds = {entry.tld for entry in internet.directory if len(entry.tld) == 2}
    assert cctlds <= {"de", "uk"}


# -- anecdotes --------------------------------------------------------------------------------

def test_fbi_anecdote_planted(small_internet):
    assert FBI_WEB_NAME in small_internet.directory
    fbi_zone = small_internet.zone("fbi.gov")
    assert fbi_zone is not None
    ns_names = {str(ns) for ns in fbi_zone.apex_nameservers()}
    assert ns_names == {"dns.sprintip.com", "dns2.sprintip.com"}
    sprintip_zone = small_internet.zone("sprintip.com")
    assert {str(ns) for ns in sprintip_zone.apex_nameservers()} == {
        "reston-ns1.telemail.net", "reston-ns2.telemail.net",
        "reston-ns3.telemail.net"}
    weak = small_internet.server("reston-ns2.telemail.net")
    assert weak.software == "BIND 8.2.4"
    assert default_database().is_compromisable(weak.software)


def test_fbi_name_resolves(small_internet):
    resolver = small_internet.make_resolver()
    trace = resolver.resolve(FBI_WEB_NAME)
    assert trace.succeeded


def test_lviv_anecdote_planted(small_internet):
    assert LVIV_WEB_NAME in small_internet.directory
    lviv_zone = small_internet.zone("lviv.ua")
    assert lviv_zone is not None
    regions = set()
    for nameserver in lviv_zone.apex_nameservers():
        server = small_internet.server(nameserver)
        if server is not None:
            regions.add(server.region)
    assert len(regions) >= 2, "lviv.ua secondaries should span regions"
    resolver = small_internet.make_resolver()
    assert resolver.resolve(LVIV_WEB_NAME).succeeded


def test_anecdotes_can_be_disabled():
    config = GeneratorConfig(seed=3, sld_count=30, directory_name_count=40,
                             university_count=6, hosting_provider_count=3,
                             isp_count=2, plant_anecdotes=False)
    internet = InternetGenerator(config).generate()
    assert FBI_WEB_NAME not in internet.directory
    assert internet.zone("fbi.gov") is None
