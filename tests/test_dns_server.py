"""Tests for :mod:`repro.dns.server`."""

import pytest

from repro.dns.errors import ZoneError
from repro.dns.message import make_query
from repro.dns.name import DomainName
from repro.dns.rdtypes import RCode, RRClass, RRType
from repro.dns.server import AuthoritativeServer, ServerStatus, VERSION_BIND
from repro.dns.zone import Zone


def make_server() -> AuthoritativeServer:
    server = AuthoritativeServer("ns1.example.com", addresses=["10.0.0.53"],
                                 software="BIND 8.2.4", operator="example")
    zone = Zone("example.com")
    zone.set_apex_nameservers(["ns1.example.com"])
    zone.add("ns1.example.com", RRType.A, "10.0.0.53")
    zone.add("www.example.com", RRType.A, "10.0.0.80")
    zone.add("alias.example.com", RRType.CNAME, "www.example.com")
    zone.add("external.example.com", RRType.CNAME, "www.elsewhere.net")
    zone.delegate("sub.example.com", ["ns1.sub.example.com"],
                  glue={"ns1.sub.example.com": ["10.1.0.53"]})
    server.add_zone(zone)
    return server


# -- zone management -------------------------------------------------------------

def test_find_zone_picks_deepest():
    server = make_server()
    deep = Zone("deep.example.com")
    deep.set_apex_nameservers(["ns1.example.com"])
    server.add_zone(deep)
    assert server.find_zone("www.deep.example.com").apex == \
        DomainName("deep.example.com")
    assert server.find_zone("www.example.com").apex == DomainName("example.com")
    assert server.find_zone("other.org") is None


def test_zone_listing_and_removal():
    server = make_server()
    assert server.zone_apexes() == [DomainName("example.com")]
    server.remove_zone("example.com")
    assert server.zones() == []


def test_is_authoritative_for():
    server = make_server()
    assert server.is_authoritative_for("www.example.com")
    assert not server.is_authoritative_for("www.sub.example.com")
    assert not server.is_authoritative_for("other.org")


# -- query answering ----------------------------------------------------------------

def test_authoritative_answer():
    server = make_server()
    response = server.query("www.example.com")
    assert response.authoritative
    assert response.rcode is RCode.NOERROR
    assert [str(r.rdata) for r in response.answers] == ["10.0.0.80"]
    assert server.stats.answers == 1


def test_referral_below_zone_cut():
    server = make_server()
    response = server.query("www.sub.example.com")
    assert response.is_referral
    assert response.referral_nameservers() == [DomainName("ns1.sub.example.com")]
    assert response.glue_addresses("ns1.sub.example.com") == ["10.1.0.53"]
    assert server.stats.referrals == 1


def test_nxdomain_for_missing_name():
    server = make_server()
    response = server.query("missing.example.com")
    assert response.rcode is RCode.NXDOMAIN
    assert server.stats.nxdomains == 1


def test_nodata_for_existing_name_wrong_type():
    server = make_server()
    response = server.query("www.example.com", RRType.MX)
    assert response.rcode is RCode.NOERROR
    assert response.answers == []


def test_refused_outside_authority():
    server = make_server()
    response = server.query("www.other.org")
    assert response.rcode is RCode.REFUSED
    assert server.stats.refused == 1


def test_cname_chain_within_zone():
    server = make_server()
    response = server.query("alias.example.com")
    types = [r.rtype for r in response.answers]
    assert RRType.CNAME in types
    assert RRType.A in types


def test_cname_pointing_outside_zone_returns_partial_chain():
    server = make_server()
    response = server.query("external.example.com")
    assert [r.rtype for r in response.answers] == [RRType.CNAME]
    assert response.rcode is RCode.NOERROR


def test_version_bind_fingerprinting():
    server = make_server()
    response = server.handle_query(
        make_query(VERSION_BIND, RRType.TXT, RRClass.CH))
    assert response.rcode is RCode.NOERROR
    assert str(response.answers[0].rdata) == "BIND 8.2.4"


def test_version_bind_refused_when_hidden():
    server = make_server()
    server.software = None
    response = server.handle_query(
        make_query(VERSION_BIND, RRType.TXT, RRClass.CH))
    assert response.rcode is RCode.REFUSED


def test_other_chaos_queries_not_implemented():
    server = make_server()
    response = server.handle_query(
        make_query("hostname.bind", RRType.TXT, RRClass.CH))
    assert response.rcode is RCode.NOTIMP


# -- operational state -----------------------------------------------------------------

def test_fail_and_restore():
    server = make_server()
    assert server.is_up
    server.fail()
    assert not server.is_up
    assert server.status is ServerStatus.DOWN
    server.restore()
    assert server.is_up


def test_hijack_requires_compromise():
    server = make_server()
    with pytest.raises(ZoneError):
        server.hijack("www.example.com", "6.6.6.6")
    server.compromise()
    server.hijack("www.example.com", "6.6.6.6")
    response = server.query("www.example.com")
    assert [str(r.rdata) for r in response.answers] == ["6.6.6.6"]


def test_compromised_server_answers_foreign_names_it_hijacked():
    server = make_server()
    server.compromise()
    server.hijack("www.victim.gov", "6.6.6.6")
    response = server.query("www.victim.gov")
    assert [str(r.rdata) for r in response.answers] == ["6.6.6.6"]


def test_restore_clears_hijacked_records():
    server = make_server()
    server.compromise()
    server.hijack("www.example.com", "6.6.6.6")
    server.restore()
    response = server.query("www.example.com")
    assert [str(r.rdata) for r in response.answers] == ["10.0.0.80"]


def test_stats_reset():
    server = make_server()
    server.query("www.example.com")
    assert server.stats.queries == 1
    server.stats.reset()
    assert server.stats.queries == 0
    assert server.stats.answers == 0
