"""``repro-dns merge``: union shard snapshot files off the binary columns.

Each input is a ``KIND_SHARD`` REPRO-SNAP container (written by
``repro-dns survey --shard i/n``) whose ``rows`` section holds the
*global* directory index of every record.  The merge is purely textual:
record columns are copied cell-by-cell into one global column set,
strings re-intern by text, TCB/mincut sets re-intern by member texts,
and the aggregate maps are recomputed from the columns — counts by
walking resolved rows' TCB memberships (exactly what
``SurveyAggregator.add_record`` counts), verdict sets by unioning the
shard flag maps, fingerprints by text-level union.  No
:class:`~repro.core.survey.NameRecord`, ``DomainName``, or frozenset is
ever hydrated, so merging scales with the bytes, not the object graph.

The output is a ``KIND_RESULTS`` file whose records and aggregates are
byte-identical to a serial survey of the same world (the guarantee CI
asserts with ``repro-dns diff``); its *metadata* records merge
provenance (``backend: "merged"``, the input shard count) rather than
impersonating the serial engine's run parameters.

Shard coverage is validated before anything is written: the row indices
of all inputs must partition ``0..total-1`` exactly, and any gap,
overlap, or out-of-range index names the offending files and row.
"""

from __future__ import annotations

import json
import pathlib
from array import array
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.core.snapstore import (_FLAG_RESOLVED, _NO_BANNER, _INT_COLUMNS,
                                  KIND_RESULTS, KIND_SHARD, _PoolWriter,
                                  _RecordReader, _SectionReader,
                                  _SectionWriter, _SetWriter,
                                  _write_extras_sections)
from repro.distrib.wire import DistribError

PathLike = object


class MergeReport(NamedTuple):
    """What a merge did (the CLI's reporting surface)."""

    output: pathlib.Path
    names: int
    shards: int
    bytes_written: int


class _ShardFile:
    """One opened shard input: column reader + its global row indices."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self.reader = _SectionReader(path, KIND_SHARD)
        self.records = _RecordReader(self.reader)
        self.rows = list(self.reader.q("rows"))
        if len(self.rows) != len(self.records):
            raise DistribError(
                f"{self.path}: shard row index covers {len(self.rows)} rows "
                f"for {len(self.records)} records")

    def set_member_texts(self, set_id: int) -> List[str]:
        store, text = self.records.sets, self.records.pool.text
        return [text(member) for member in
                store._members[store._offsets[set_id]:
                               store._offsets[set_id + 1]]]


def merge_shard_snapshots(paths, output) -> MergeReport:
    """Union shard files into one results snapshot (see module docstring)."""
    if not paths:
        raise DistribError("merge needs at least one shard file")
    shards = [_ShardFile(path) for path in paths]
    total = sum(len(shard.rows) for shard in shards)
    owner: List[Optional[_ShardFile]] = [None] * total
    for shard in shards:
        for row in shard.rows:
            if not 0 <= row < total:
                raise DistribError(
                    f"{shard.path}: row index {row} outside the merged "
                    f"range 0..{total - 1} — shard inputs do not form a "
                    f"complete partition")
            if owner[row] is not None:
                raise DistribError(
                    f"row {row} covered by both {owner[row].path} and "
                    f"{shard.path} — overlapping shard inputs")
            owner[row] = shard
    # sum(len)==total and no overlap => no gaps; owner[] is fully set.

    writer = _SectionWriter(output, KIND_RESULTS)
    pool = _PoolWriter()
    sets = _SetWriter(pool)

    names = array("q", bytes(8 * total))
    tlds = array("q", bytes(8 * total))
    categories = array("q", bytes(8 * total))
    classifications = array("q", bytes(8 * total))
    flags = bytearray(total)
    ints = {column: array("q", bytes(8 * total)) for column in _INT_COLUMNS}
    safety = array("d", bytes(8 * total))
    tcb_sets = array("q", bytes(8 * total))
    cut_sets = array("q", bytes(8 * total))
    extras_values: Dict[str, Dict[int, object]] = {}

    counts: Dict[str, int] = {}
    vulnerable: Set[str] = set()
    compromisable: Set[str] = set()
    popular: Set[str] = set()
    fingerprints: Dict[str, Tuple[Optional[str], bool, List[str]]] = {}

    for shard in shards:
        rec = shard.records
        rec_pool = rec.pool
        for local, row in enumerate(shard.rows):
            names[row] = pool.intern(rec_pool.text(rec._names[local]))
            tlds[row] = pool.intern(rec_pool.text(rec._tlds[local]))
            categories[row] = pool.intern(
                rec_pool.text(rec._categories[local]))
            classifications[row] = pool.intern(
                rec_pool.text(rec._classifications[local]))
            flag = rec._flags[local]
            flags[row] = flag
            for column in _INT_COLUMNS:
                ints[column][row] = rec._ints[column][local]
            safety[row] = rec._safety[local]
            tcb_members = shard.set_member_texts(rec._tcb_sets[local])
            tcb_sets[row] = sets.intern(tcb_members)
            cut_sets[row] = sets.intern(
                shard.set_member_texts(rec._cut_sets[local]))
            if flag & _FLAG_RESOLVED:
                for member in tcb_members:
                    counts[member] = counts.get(member, 0) + 1
            for position, entry in enumerate(rec.extras_dir):
                if rec.reader.bytes_view(f"ex.{position}.pres")[local]:
                    extras_values.setdefault(entry["column"], {})[row] = \
                        rec._extra_cell(position, entry["kind"], local)

        for prefix, target in (("vm", vulnerable), ("cm", compromisable)):
            host_ids = shard.reader.q(f"{prefix}.host")
            host_flags = shard.reader.bytes_view(f"{prefix}.flag")
            target.update(rec_pool.text(host_ids[position])
                          for position in range(len(host_ids))
                          if host_flags[position])
        popular.update(rec_pool.text(name_id)
                       for name_id in shard.reader.q("pop"))

        fp_hosts = shard.reader.q("fp.host")
        fp_banners = shard.reader.q("fp.banner")
        fp_reach = shard.reader.bytes_view("fp.reach")
        fp_offsets = shard.reader.q("fp.vuln.off")
        fp_members = shard.reader.q("fp.vuln.mem")
        for position in range(len(fp_hosts)):
            banner_id = fp_banners[position]
            fingerprints[rec_pool.text(fp_hosts[position])] = (
                None if banner_id == _NO_BANNER
                else rec_pool.text(banner_id),
                bool(fp_reach[position]),
                [rec_pool.text(member) for member in
                 fp_members[fp_offsets[position]:fp_offsets[position + 1]]])

    writer.add("rec.name", names)
    writer.add("rec.tld", tlds)
    writer.add("rec.category", categories)
    writer.add("rec.classification", classifications)
    writer.add("rec.flags", bytes(flags))
    for column in _INT_COLUMNS:
        writer.add(f"rec.{column}", ints[column])
    writer.add("rec.safety", safety)
    writer.add("rec.tcbset", tcb_sets)
    writer.add("rec.cutset", cut_sets)
    _write_extras_sections(writer, total, extras_values, pool)

    ordered_counts = sorted(counts.items())
    writer.add("agg.counts.host",
               array("q", [pool.intern(host) for host, _ in ordered_counts]))
    writer.add("agg.counts.n",
               array("q", [count for _, count in ordered_counts]))
    for section, members in (("agg.vuln", vulnerable),
                             ("agg.comp", compromisable),
                             ("agg.pop", popular)):
        writer.add(section, array("q", sorted(
            pool.intern(member) for member in members)))

    ordered_fp = sorted(fingerprints.items())
    writer.add("fp.host",
               array("q", [pool.intern(host) for host, _ in ordered_fp]))
    writer.add("fp.banner", array("q", [
        _NO_BANNER if banner is None else pool.intern(banner)
        for _, (banner, _reach, _vulns) in ordered_fp]))
    writer.add("fp.reach", bytes(1 if reach else 0
                                 for _, (_banner, reach, _vulns)
                                 in ordered_fp))
    vuln_offsets = array("q", [0])
    vuln_members = array("q")
    for _, (_banner, _reach, vulns) in ordered_fp:
        vuln_members.extend(pool.intern(item) for item in vulns)
        vuln_offsets.append(len(vuln_members))
    writer.add("fp.vuln.off", vuln_offsets)
    writer.add("fp.vuln.mem", vuln_members)

    metadata = dict(shards[0].records.metadata())
    metadata.update({
        "backend": "merged",
        "workers": len(shards),
        "shards": len(shards),
        "names_requested": total,
        "merged_from": [str(shard.path.name) for shard in shards],
    })
    writer.add("meta", json.dumps(metadata, sort_keys=True).encode("utf-8"))
    sets.write(writer, "sets")
    pool.write(writer, "strs")
    written = writer.close()
    return MergeReport(output=written, names=total, shards=len(shards),
                       bytes_written=written.stat().st_size)
