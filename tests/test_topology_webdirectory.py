"""Tests for :mod:`repro.topology.webdirectory`."""

import random

from repro.dns.name import DomainName
from repro.topology.webdirectory import DirectoryEntry, WebDirectory


def build_directory() -> WebDirectory:
    directory = WebDirectory()
    directory.add_name("www.popular.com", category="enterprise",
                       popularity=100.0, source="yahoo")
    directory.add_name("www.ordinary.com", category="small-business",
                       popularity=2.0)
    directory.add_name("www.site.ua", category="small-business",
                       popularity=1.0)
    directory.add_name("www.uni.edu", category="university", popularity=10.0)
    return directory


def test_add_deduplicates_by_name():
    directory = build_directory()
    assert not directory.add_name("www.popular.com", popularity=5.0)
    assert len(directory) == 4


def test_entry_lookup_and_contains():
    directory = build_directory()
    assert "www.popular.com" in directory
    assert DomainName("WWW.POPULAR.COM") in directory
    assert "www.missing.com" not in directory
    entry = directory.entry("www.popular.com")
    assert entry is not None
    assert entry.source == "yahoo"


def test_tld_is_derived_when_not_given():
    directory = WebDirectory()
    directory.add_name("www.example.org")
    assert directory.entry("www.example.org").tld == "org"


def test_tld_counts_and_ordering():
    directory = build_directory()
    counts = directory.tld_counts()
    assert counts == {"com": 2, "ua": 1, "edu": 1}
    assert directory.tlds()[0] == "com"


def test_by_tld_and_by_category():
    directory = build_directory()
    assert len(directory.by_tld("com")) == 2
    assert [e.name for e in directory.by_category("university")] == \
        [DomainName("www.uni.edu")]


def test_alexa_top_orders_by_popularity():
    directory = build_directory()
    top2 = directory.alexa_top(2)
    assert [str(e.name) for e in top2] == ["www.popular.com", "www.uni.edu"]
    assert len(directory.alexa_top(100)) == 4


def test_uniform_sample_without_replacement():
    directory = build_directory()
    sample = directory.sample(3, rng=random.Random(1))
    assert len(sample) == 3
    assert len({e.name for e in sample}) == 3
    assert directory.sample(10) == directory.entries()


def test_weighted_sample_prefers_popular_entries():
    directory = WebDirectory()
    directory.add_name("www.huge.com", popularity=1000.0)
    for index in range(30):
        directory.add_name(f"www.small{index}.com", popularity=1.0)
    hits = 0
    for seed in range(30):
        sample = directory.weighted_sample(5, rng=random.Random(seed))
        if any(str(e.name) == "www.huge.com" for e in sample):
            hits += 1
    assert hits >= 25


def test_summary_counts_gtld_vs_cctld():
    directory = build_directory()
    summary = directory.summary()
    assert summary["names"] == 4
    assert summary["tlds"] == 3
    assert summary["gtld_names"] == 3
    assert summary["cctld_names"] == 1


def test_entry_normalises_name():
    entry = DirectoryEntry(name="WWW.Example.COM", tld="com",
                           category="x", popularity=1.0)
    assert entry.name == DomainName("www.example.com")
