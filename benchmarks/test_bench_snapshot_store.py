"""Columnar snapshot store acceptance: O(1) open, lazy records, shared epochs.

The workload a longitudinal survey implies is *open-heavy*: every diff,
resurvey, and timeline report starts by loading a previous snapshot, and a
JSON codec pays a full parse + hydrate for it no matter how little of the
snapshot the command touches.  This bench saves the session survey through
both codecs and measures what the binary mmap store buys:

* **open**: ``open_results`` (header + TOC validation only) vs. a full
  ``load_results`` of the JSON document.  Acceptance floor: the binary
  open must be at least ``MIN_OPEN_SPEEDUP`` faster at bench scale.
* **random access**: 1,000 seeded-random ``record_for`` lookups against a
  freshly opened lazy view — the lookup path hydrates one row per query.
* **epoch sharing**: a private world churned for eight epochs through an
  :class:`EpochStore`; the whole store (full epoch 0 + eight column
  deltas) must stay under twice the size of epoch 0 alone.

Metrics land in ``BENCH_results.json`` under ``snapshot_store``; the
``names_per_s`` field (random record_for queries per second) rides the CI
perf-smoke regression gate.
"""

import os
import random
import time

from repro.core.engine import EngineConfig, SurveyEngine
from repro.core.snapshot import load_results, save_results
from repro.core.snapstore import EpochStore, open_results
from repro.topology.changes import ChangeJournal
from repro.topology.churn import ChurnModel, ChurnRates
from repro.topology.generator import InternetGenerator

from conftest import BENCH_CONFIG

#: Acceptance floor on json-load / binary-open wall-clock.  The tiny CI
#: world parses so little JSON that constant overheads compress the gap;
#: the 10x floor is asserted at full bench scale.
MIN_OPEN_SPEEDUP = 10.0 if not os.environ.get("REPRO_BENCH_TINY") else 3.0

#: Ceiling on eight-epoch store size relative to one full epoch.
MAX_STORE_RATIO = 2.0

QUERIES = 1000

#: Modest per-epoch churn relative to the bench directory — the "a few
#: zones changed hands overnight" regime the timeline store targets.
CHURN_RATES = ChurnRates(transfer=2.0, death=1.0, upgrade=3.0,
                         downgrade=1.0, region=2.0)

EPOCHS = 8


def _median_time(action, repeats=5):
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        timings.append(time.perf_counter() - start)
    return sorted(timings)[len(timings) // 2]


def test_bench_snapshot_store(paper_survey, figure_writer, bench_metrics,
                              tmp_path):
    results = paper_survey
    json_path = tmp_path / "survey.json"
    binary_path = tmp_path / "survey.rsnap"

    start = time.perf_counter()
    save_results(results, binary_path, format="binary")
    save_s = time.perf_counter() - start
    save_results(results, json_path)

    json_load_s = _median_time(lambda: load_results(json_path), repeats=3)
    open_s = _median_time(lambda: open_results(binary_path))
    open_speedup = json_load_s / open_s

    # Seeded random record_for lookups on a cold lazy view: every query
    # hydrates at most one row, repeats hit the per-row cache.
    lazy = open_results(binary_path)
    names = [record.name for record in results.records]
    rng = random.Random(BENCH_CONFIG.seed)
    queries = [rng.choice(names) for _ in range(QUERIES)]
    start = time.perf_counter()
    for name in queries:
        assert lazy.record_for(name) is not None
    query_1k_s = time.perf_counter() - start
    names_per_s = QUERIES / query_1k_s
    assert lazy.hydrated_record_count <= min(QUERIES, len(names))

    # Eight churned epochs through the delta-sharing store (private world:
    # the journals mutate it in place).
    internet = InternetGenerator(BENCH_CONFIG).generate()
    engine = SurveyEngine(
        internet,
        config=EngineConfig(popular_count=BENCH_CONFIG.alexa_count))
    epoch_results = engine.run()
    model = ChurnModel(internet, CHURN_RATES, seed=BENCH_CONFIG.seed)
    store = EpochStore(tmp_path / "epochs")
    store.append(epoch_results)
    for _ in range(EPOCHS):
        journal = ChangeJournal(internet)
        model.advance(journal)
        outcome = engine.run_delta(epoch_results, journal)
        store.append(outcome.results, previous=epoch_results,
                     dirty=outcome.dirty)
        epoch_results = outcome.results
    epoch0_bytes = store.epoch_path(0).stat().st_size
    store_bytes = store.total_bytes()
    store_ratio = store_bytes / epoch0_bytes

    figure_writer.write(
        "snapshot_store", "Columnar snapshot store vs. JSON codec",
        [f"records                   {len(results.records)}",
         f"binary save               {save_s:.3f}s",
         f"json load (full hydrate)  {json_load_s:.3f}s",
         f"binary open (lazy)        {open_s * 1000:.2f}ms "
         f"({open_speedup:.0f}x faster, floor {MIN_OPEN_SPEEDUP:.0f}x)",
         f"{QUERIES} random record_for   {query_1k_s:.3f}s "
         f"({names_per_s:.0f} queries/s)",
         f"bytes on disk             binary "
         f"{binary_path.stat().st_size} vs json "
         f"{json_path.stat().st_size}",
         f"epoch store ({EPOCHS} epochs)    {store_bytes} bytes "
         f"({store_ratio:.2f}x one full epoch, "
         f"ceiling {MAX_STORE_RATIO:.1f}x)"])
    bench_metrics.record(
        "snapshot_store", records=len(results.records),
        save_s=round(save_s, 4),
        open_s=round(open_s, 6),
        json_load_s=round(json_load_s, 4),
        open_speedup=round(open_speedup, 1),
        query_1k_s=round(query_1k_s, 4),
        names_per_s=round(names_per_s, 1),
        binary_bytes=binary_path.stat().st_size,
        json_bytes=json_path.stat().st_size,
        store_bytes_8_epochs=store_bytes,
        epoch0_bytes=epoch0_bytes,
        store_ratio=round(store_ratio, 3))

    assert open_speedup >= MIN_OPEN_SPEEDUP, (
        f"binary open only {open_speedup:.1f}x faster than a JSON load "
        f"(floor {MIN_OPEN_SPEEDUP:.0f}x)")
    assert store_ratio < MAX_STORE_RATIO, (
        f"{EPOCHS}-epoch store is {store_ratio:.2f}x one full epoch "
        f"(ceiling {MAX_STORE_RATIO:.1f}x)")
