"""Distributed survey: socket coordinator, workers, and shard merging.

The subsystem that lets several processes (or hosts — the protocol only
sees sockets) survey one directory:

* :mod:`repro.distrib.wire` — length-prefixed frames whose bulk payloads
  are REPRO-SNAP column containers.
* :mod:`repro.distrib.worker` — ``repro-dns worker --listen``: a warm
  serial engine behind a socket.
* :mod:`repro.distrib.coordinator` — shard striping, work-order
  shipping, and the byte-identical shard-order fold; plus
  :class:`LocalWorkerFleet` for CI-friendly local multi-host simulation.
* :mod:`repro.distrib.merge` — ``repro-dns merge``: union shard snapshot
  files off the binary columns, no hydration.
"""

from repro.distrib.wire import DistribError, WireError

__all__ = ["DistribError", "WireError"]
