"""Hijack feasibility analysis and end-to-end hijack simulation.

Two layers are provided:

* :class:`HijackAnalyzer` works purely on delegation graphs plus the
  vulnerability map: it classifies a name (safe / partially hijackable /
  hijackable with one DoS / completely hijackable), and extracts a readable
  *attack path* — the dependency chain from the name to a vulnerable server,
  like the paper's fbi.gov → sprintip.com → reston-ns2.telemail.net story.

* :class:`HijackSimulator` actually carries the attack out against the
  simulated network: it compromises the chosen bottleneck servers, stands up
  a rogue nameserver, plants forged records, and re-resolves the victim name
  to check whether clients are diverted.  This closes the loop between the
  graph-level prediction and the protocol-level outcome.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.dns.name import DomainName, NameLike
from repro.dns.rdtypes import RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.core.delegation import DelegationGraph, NS_KIND, ZONE_KIND
from repro.core.mincut import BottleneckAnalyzer, BottleneckResult

#: Classifications the paper counts as hijackable (Section 3.2): the
#: min-cut is entirely vulnerable, or one DoS away from it.  The home of
#: the taxonomy — the survey engine, DNSSEC impact analysis, and analysis
#: passes all import it from here.
HIJACKABLE_CLASSIFICATIONS: tuple = ("complete", "dos-assisted")


@dataclasses.dataclass
class AttackStep:
    """One hop in an attack-path narrative."""

    kind: str          # "name", "zone", or "ns"
    entity: DomainName
    note: str = ""

    def __str__(self) -> str:
        return f"[{self.kind}] {self.entity} {self.note}".rstrip()


@dataclasses.dataclass
class HijackAssessment:
    """Graph-level verdict for one name."""

    name: DomainName
    classification: str  # "safe", "partial", "dos-assisted", "complete"
    bottleneck: BottleneckResult
    vulnerable_in_tcb: int
    attack_path: List[AttackStep] = dataclasses.field(default_factory=list)

    @property
    def is_hijackable(self) -> bool:
        """True if some queries for the name can be diverted."""
        return self.classification in ("partial", "dos-assisted", "complete")

    @property
    def is_completely_hijackable(self) -> bool:
        """True if every query for the name can be diverted."""
        return self.classification == "complete"


@dataclasses.dataclass
class HijackOutcome:
    """Result of a simulated hijack attempt."""

    name: DomainName
    attacker_address: str
    trials: int
    diverted: int
    compromised_servers: List[DomainName]

    @property
    def diversion_rate(self) -> float:
        """Fraction of resolutions that returned the attacker's address."""
        return self.diverted / self.trials if self.trials else 0.0

    @property
    def complete(self) -> bool:
        """True if every trial was diverted."""
        return self.trials > 0 and self.diverted == self.trials


class HijackAnalyzer:
    """Classifies names by how easily they can be hijacked."""

    def __init__(self, vulnerability_map: Optional[Mapping[DomainName, bool]] = None):
        self.vulnerability_map = dict(vulnerability_map or {})
        self._bottleneck = BottleneckAnalyzer(self.vulnerability_map,
                                              vulnerability_aware=True)

    def assess(self, graph: DelegationGraph) -> HijackAssessment:
        """Produce the hijack verdict for one delegation graph."""
        bottleneck = self._bottleneck.analyze(graph)
        vulnerable_in_tcb = sum(1 for host in graph.tcb()
                                if self.vulnerability_map.get(host, False))
        if bottleneck.fully_vulnerable:
            classification = "complete"
        elif bottleneck.one_safe_server and bottleneck.vulnerable_in_cut > 0:
            classification = "dos-assisted"
        elif vulnerable_in_tcb > 0:
            classification = "partial"
        else:
            classification = "safe"
        path = self.attack_path(graph)
        return HijackAssessment(name=graph.target,
                                classification=classification,
                                bottleneck=bottleneck,
                                vulnerable_in_tcb=vulnerable_in_tcb,
                                attack_path=path)

    def attack_path(self, graph: DelegationGraph) -> List[AttackStep]:
        """Dependency chain from the target to its nearest vulnerable server.

        Returns an empty list when the TCB has no vulnerable member.  The
        path alternates zones and nameservers and reads as a narrative:
        the name is served by zone X, whose server Y lives in zone Z, which
        is served by the vulnerable machine W.
        """
        vulnerable = [host for host in graph.tcb()
                      if self.vulnerability_map.get(host, False)]
        if not vulnerable:
            return []
        best_nodes: List = []
        for host in vulnerable:
            nodes = graph.dependency_path(host)
            if nodes and (not best_nodes or len(nodes) < len(best_nodes)):
                best_nodes = nodes
        steps: List[AttackStep] = []
        for kind, entity in best_nodes:
            if kind == ZONE_KIND:
                note = "zone on the resolution path"
            elif kind == NS_KIND:
                vulnerable_here = self.vulnerability_map.get(entity, False)
                note = ("VULNERABLE nameserver" if vulnerable_here
                        else "nameserver")
            else:
                note = "target name"
            steps.append(AttackStep(kind=kind, entity=entity, note=note))
        return steps


class HijackSimulator:
    """Carries out a hijack against the simulated network.

    Parameters
    ----------
    internet:
        The :class:`~repro.topology.generator.SyntheticInternet` under attack.
    attacker_address:
        Address the attacker wants victims to connect to.
    """

    ROGUE_HOSTNAME = DomainName("ns.attacker.example")

    def __init__(self, internet, attacker_address: str = "203.0.113.66"):
        self.internet = internet
        self.attacker_address = attacker_address
        self._rogue: Optional[AuthoritativeServer] = None
        self._compromised: List[AuthoritativeServer] = []

    # -- attack set-up ----------------------------------------------------------------

    def _ensure_rogue_server(self, victim: DomainName) -> AuthoritativeServer:
        """Stand up (or extend) the attacker's own nameserver."""
        if self._rogue is None:
            self._rogue = AuthoritativeServer(self.ROGUE_HOSTNAME,
                                              addresses=["203.0.113.53"],
                                              software="BIND 9.2.3",
                                              operator="attacker",
                                              region="us")
            self.internet.network.register_server(self._rogue)
        # The rogue claims authority for the victim's zone and answers every
        # query for the victim with the attacker's address.
        zone_apex = victim.parent() if victim.depth > 1 else victim
        zone = Zone(zone_apex)
        zone.set_apex_nameservers([self.ROGUE_HOSTNAME])
        zone.add(victim, RRType.A, self.attacker_address)
        self._rogue.add_zone(zone)
        return self._rogue

    def compromise(self, hostnames: Iterable[NameLike],
                   victim: NameLike,
                   diverted_names: Optional[Sequence[NameLike]] = None) -> int:
        """Compromise servers and plant records diverting resolution.

        On each compromised server the attacker plants:

        * a direct forged A record for the victim name, and
        * forged A records for any ``diverted_names`` (typically the
          hostnames of the victim's legitimate nameservers) pointing at the
          rogue server, which then answers for the victim.

        Returns the number of servers actually compromised.
        """
        victim = DomainName(victim)
        rogue = self._ensure_rogue_server(victim)
        count = 0
        for hostname in hostnames:
            server = self.internet.network.find_server(hostname)
            if server is None:
                continue
            server.compromise()
            server.hijack(victim, self.attacker_address)
            for diverted in diverted_names or ():
                server.hijack(diverted, rogue.addresses[0])
            self._compromised.append(server)
            count += 1
        return count

    def restore(self) -> None:
        """Undo every compromise performed by this simulator."""
        for server in self._compromised:
            server.restore()
        self._compromised.clear()

    # -- attack execution ---------------------------------------------------------------

    def attempt(self, victim: NameLike, trials: int = 50,
                rng: Optional[random.Random] = None) -> HijackOutcome:
        """Resolve the victim repeatedly and measure the diversion rate.

        Each trial uses a fresh randomised resolver with an empty cache,
        modelling independent clients whose nameserver selection differs.
        """
        victim = DomainName(victim)
        rng = rng or random.Random(7)
        diverted = 0
        for trial in range(trials):
            resolver = self.internet.make_resolver(
                selection="random", use_glue=True)
            resolver._rng = random.Random(rng.random())
            trace = resolver.resolve(victim)
            if self.attacker_address in trace.addresses:
                diverted += 1
        return HijackOutcome(
            name=victim, attacker_address=self.attacker_address,
            trials=trials, diverted=diverted,
            compromised_servers=[s.hostname for s in self._compromised])

    def execute(self, assessment: HijackAssessment, trials: int = 50,
                diverted_names: Optional[Sequence[NameLike]] = None
                ) -> HijackOutcome:
        """Compromise the assessed bottleneck and measure the outcome."""
        self.compromise(assessment.bottleneck.cut_servers, assessment.name,
                        diverted_names=diverted_names)
        return self.attempt(assessment.name, trials=trials)
