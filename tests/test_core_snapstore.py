"""Tests for :mod:`repro.core.snapstore` (the binary columnar store).

The contract under test: the REPRO-SNAP codec is a *lossless peer* of the
JSON snapshot — byte-identical ``results_to_dict`` output on every backend
and every seed — while opening in O(1) (no record is hydrated until
touched), serving diffs and delta re-surveys straight off the columns, and
storing an epoch timeline as shared deltas whose total size grows with
churn rather than with ``epochs × universe``.
"""

import json

import pytest

from repro.core.delta import DirtyIndex
from repro.core.engine import EngineConfig, SurveyEngine
from repro.core.snapshot import (
    diff_results,
    load_results,
    results_to_dict,
    save_results,
    sniff_format,
)
from repro.core.snapstore import (
    KIND_DELTA,
    KIND_RESULTS,
    MAGIC,
    EpochStore,
    LazySurveyResults,
    SnapshotFormatError,
    load_universe,
    open_results,
    save_results_snapshot,
    save_universe,
    sniff_kind,
)
from repro.topology.changes import ChangeJournal
from repro.topology.churn import ChurnModel, ChurnRates
from repro.topology.generator import GeneratorConfig, InternetGenerator

#: Two seeds so the codec matrix never passes by topological accident.
SEEDS = (20040722, 1977)

#: Every execution backend must produce snapshots both codecs round-trip.
BACKENDS = ("serial", "thread", "sharded", "process")

#: Passes chosen for column coverage: float extras (availability), string
#: extras (dnssec_status), and a finalize() cross-record reduce (value).
PASSES = ("availability:samples=4", "dnssec:fraction=0.4", "value")


def _make_internet(seed):
    config = GeneratorConfig(seed=seed, sld_count=90,
                             directory_name_count=140, university_count=18,
                             hosting_provider_count=8, isp_count=6,
                             alexa_count=25)
    return InternetGenerator(config).generate()


def _snapshot_bytes(results):
    return json.dumps(results_to_dict(results), sort_keys=True)


# -- codec identity matrix -------------------------------------------------------------

@pytest.fixture(scope="module", params=SEEDS)
def codec_world(request):
    return _make_internet(request.param)


@pytest.mark.parametrize("backend", BACKENDS)
def test_binary_and_json_roundtrip_identically(codec_world, backend,
                                               tmp_path):
    engine = SurveyEngine(codec_world, config=EngineConfig(
        backend=backend, workers=3, passes=PASSES))
    results = engine.run()
    reference = _snapshot_bytes(results)

    json_path = save_results(results, tmp_path / "snap.json")
    binary_path = save_results(results, tmp_path / "snap.rsnap",
                               format="binary")
    assert sniff_format(json_path) == "json"
    assert sniff_format(binary_path) == "binary"
    assert binary_path.read_bytes().startswith(MAGIC)
    assert sniff_kind(binary_path) == KIND_RESULTS

    assert _snapshot_bytes(load_results(json_path)) == reference
    assert _snapshot_bytes(load_results(binary_path)) == reference


# -- lazy open behaviour ---------------------------------------------------------------

@pytest.fixture(scope="module")
def lazy_world(tmp_path_factory):
    """One serial survey, its binary snapshot, and a mutated successor."""
    internet = _make_internet(SEEDS[0])
    engine = SurveyEngine(internet, config=EngineConfig(passes=PASSES))
    results = engine.run()
    root = tmp_path_factory.mktemp("snapstore")
    path = root / "results.rsnap"
    save_results_snapshot(results, path)

    journal = ChangeJournal(internet)
    victim = sorted(results.fingerprints)[0]
    journal.set_server_software(victim, "BIND 8.2.2")
    journal.move_server_region(victim, "eu")
    outcome = engine.run_delta(results, journal)
    next_path = root / "next.rsnap"
    save_results_snapshot(outcome.results, next_path)
    return {
        "internet": internet, "engine": engine, "results": results,
        "path": path, "journal": journal, "outcome": outcome,
        "next_path": next_path,
    }


def test_open_results_hydrates_nothing(lazy_world):
    lazy = open_results(lazy_world["path"])
    results = lazy_world["results"]
    assert isinstance(lazy, LazySurveyResults)
    assert len(lazy.records) == len(results.records)
    # Aggregates and metadata are column/JSON sections, not records.
    assert lazy.vulnerable_servers == results.vulnerable_servers
    assert lazy.compromisable_servers == results.compromisable_servers
    assert lazy.popular_names == results.popular_names
    assert lazy.server_names_controlled == results.server_names_controlled
    assert set(lazy.fingerprints) == set(results.fingerprints)
    assert lazy.metadata == results.metadata
    assert lazy.hydrated_record_count == 0


def test_record_for_hydrates_exactly_one_record(lazy_world):
    lazy = open_results(lazy_world["path"])
    record = lazy_world["results"].records[7]
    loaded = lazy.record_for(record.name)
    assert loaded.to_dict() == record.to_dict()
    assert lazy.hydrated_record_count == 1
    # Repeat access serves the cached object, not a second hydration.
    assert lazy.record_for(record.name) is loaded
    assert lazy.hydrated_record_count == 1
    assert lazy.record_for("no.such.name.zz") is None


def test_lazy_view_satisfies_the_full_results_protocol(lazy_world):
    """Walking every record through the lazy view reproduces the exact
    canonical JSON document — the strongest codec-identity statement."""
    lazy = open_results(lazy_world["path"])
    assert _snapshot_bytes(lazy) == _snapshot_bytes(lazy_world["results"])
    assert lazy.hydrated_record_count == len(lazy.records)


def test_verify_passes_on_a_clean_file(lazy_world):
    open_results(lazy_world["path"]).verify()


def test_dirty_index_builds_without_hydration(lazy_world):
    lazy = open_results(lazy_world["path"])
    index = DirtyIndex(lazy)
    assert len(index) == len(lazy_world["results"].records)
    assert lazy.hydrated_record_count == 0
    record = next(r for r in lazy_world["results"].resolved_records()
                  if r.tcb_servers)
    host = sorted(record.tcb_servers)[0]
    assert record.name in index.names_depending_on(host)


# -- mmap-fed incremental re-survey ----------------------------------------------------

def test_run_delta_from_binary_snapshot_is_byte_identical(lazy_world):
    """The CLI resurvey path with a binary previous: fresh engine, lazy
    snapshot in, byte-identical results out — and only the clean (patched)
    records are ever hydrated."""
    internet, journal = lazy_world["internet"], lazy_world["journal"]
    reference = lazy_world["outcome"]
    lazy = open_results(lazy_world["path"])
    engine = SurveyEngine(internet, config=EngineConfig(passes=PASSES))
    outcome = engine.run_delta(lazy, journal)
    assert _snapshot_bytes(outcome.results) == \
        _snapshot_bytes(reference.results)
    assert outcome.stats.dirty_names == reference.stats.dirty_names
    assert lazy.hydrated_record_count == outcome.stats.patched_names


# -- hydration-free diffing ------------------------------------------------------------

def test_diff_of_two_lazy_snapshots_hydrates_nothing(lazy_world):
    before = open_results(lazy_world["path"])
    after = open_results(lazy_world["next_path"])
    eager = diff_results(lazy_world["results"],
                         lazy_world["outcome"].results)
    lazy = diff_results(before, after)
    assert before.hydrated_record_count == 0
    assert after.hydrated_record_count == 0
    assert lazy.common == eager.common
    assert lazy.changed == eager.changed
    assert lazy.numeric == eager.numeric
    assert lazy.transitions == eager.transitions
    assert [(c.name, c.fields) for c in lazy.top_movers(10)] == \
        [(c.name, c.fields) for c in eager.top_movers(10)]


def test_diff_mixes_lazy_and_hydrated_sides(lazy_world):
    lazy = open_results(lazy_world["path"])
    diff = diff_results(lazy, lazy_world["outcome"].results)
    eager = diff_results(lazy_world["results"],
                         lazy_world["outcome"].results)
    assert lazy.hydrated_record_count == 0
    assert diff.changed == eager.changed
    assert diff.numeric == eager.numeric


# -- corruption and error paths --------------------------------------------------------

def test_open_rejects_wrong_magic(tmp_path):
    junk = tmp_path / "junk.rsnap"
    junk.write_bytes(b"definitely not a snapshot, sorry about that")
    with pytest.raises(SnapshotFormatError, match="magic"):
        open_results(junk)
    with pytest.raises(SnapshotFormatError):
        load_results(junk)


def test_open_rejects_truncated_files(lazy_world, tmp_path):
    data = lazy_world["path"].read_bytes()
    for cut in (0, 4, len(MAGIC) + 2, len(data) // 2):
        clipped = tmp_path / f"cut{cut}.rsnap"
        clipped.write_bytes(data[:cut])
        with pytest.raises(SnapshotFormatError):
            open_results(clipped)


def test_open_rejects_corrupt_header(lazy_world, tmp_path):
    data = bytearray(lazy_world["path"].read_bytes())
    data[len(MAGIC) + 1] ^= 0xFF
    broken = tmp_path / "header.rsnap"
    broken.write_bytes(bytes(data))
    with pytest.raises(SnapshotFormatError):
        open_results(broken)


def test_verify_catches_payload_corruption(lazy_world, tmp_path):
    """A flipped payload byte is invisible to the O(1) open (header and
    TOC still check out) but must fail the explicit checksum walk."""
    data = bytearray(lazy_world["path"].read_bytes())
    data[len(data) // 2] ^= 0xFF
    flipped = tmp_path / "flipped.rsnap"
    flipped.write_bytes(bytes(data))
    lazy = open_results(flipped)
    with pytest.raises(SnapshotFormatError, match="checksum"):
        lazy.verify()


def test_binary_save_rejects_compression(lazy_world, tmp_path):
    with pytest.raises(ValueError, match="compress"):
        save_results(lazy_world["results"], tmp_path / "snap.rsnap",
                     format="binary", compress=True)


# -- compressed JSON sniffing ----------------------------------------------------------

def test_compressed_json_round_trips_transparently(lazy_world, tmp_path):
    results = lazy_world["results"]
    plain = save_results(results, tmp_path / "snap.json")
    packed = save_results(results, tmp_path / "snap.json.z", compress=True)
    assert sniff_format(packed) == "zlib"
    assert packed.stat().st_size < plain.stat().st_size
    assert _snapshot_bytes(load_results(packed)) == _snapshot_bytes(results)


def test_corrupt_zlib_stream_reports_cleanly(tmp_path):
    bad = tmp_path / "bad.json.z"
    bad.write_bytes(b"\x78\x9c" + b"\x00" * 16)
    with pytest.raises(SnapshotFormatError, match="zlib"):
        load_results(bad)


# -- the delta-shared epoch store ------------------------------------------------------

RATES = ChurnRates(transfer=1.0, death=0.5, upgrade=1.0, downgrade=0.5,
                   region=1.0)


def _store_world(seed):
    config = GeneratorConfig(seed=seed, sld_count=60,
                             directory_name_count=90, university_count=12,
                             hosting_provider_count=6, isp_count=4,
                             alexa_count=15)
    return InternetGenerator(config).generate()


def test_epoch_store_eight_epochs_identity_and_size(tmp_path):
    """Eight churn epochs: every reconstructed epoch is byte-identical to
    the results it archived, and the whole store stays under twice the
    size of one full epoch (the headline delta-sharing guarantee)."""
    world = _store_world(4242)
    model = ChurnModel(world, RATES, seed=9)
    engine = SurveyEngine(world, config=EngineConfig())
    results = engine.run()
    store = EpochStore(tmp_path / "epochs")
    store.append(results)
    expected = [_snapshot_bytes(results)]
    for _ in range(8):
        journal = ChangeJournal(world)
        model.advance(journal)
        outcome = engine.run_delta(results, journal)
        store.append(outcome.results, previous=results,
                     dirty=outcome.dirty)
        results = outcome.results
        expected.append(_snapshot_bytes(results))

    assert store.epochs == 9
    assert sniff_kind(store.epoch_path(0)) == KIND_RESULTS
    assert all(sniff_kind(store.epoch_path(e)) == KIND_DELTA
               for e in range(1, 9))
    for epoch in range(9):
        assert _snapshot_bytes(store.load_epoch(epoch)) == expected[epoch]
    full_epoch = store.epoch_path(0).stat().st_size
    assert store.total_bytes() < 2 * full_epoch

    with pytest.raises(SnapshotFormatError, match="epoch"):
        store.load_epoch(9)


def test_epoch_store_load_is_lazy(tmp_path):
    world = _store_world(1977)
    model = ChurnModel(world, RATES, seed=3)
    engine = SurveyEngine(world, config=EngineConfig())
    results = engine.run()
    store = EpochStore(tmp_path / "epochs")
    store.append(results)
    journal = ChangeJournal(world)
    model.advance(journal)
    outcome = engine.run_delta(results, journal)
    store.append(outcome.results, previous=results, dirty=outcome.dirty)

    lazy = store.load_epoch(1)
    assert lazy.hydrated_record_count == 0
    assert lazy.metadata == outcome.results.metadata
    record = outcome.results.records[3]
    # to_dict comparison: the codec canonicalises like the JSON snapshot
    # does (safety_percentage at three decimals), by design.
    assert lazy.record_for(record.name).to_dict() == record.to_dict()
    assert lazy.hydrated_record_count == 1


# -- universe archive ------------------------------------------------------------------

def test_universe_round_trips_through_binary(tmp_path):
    world = _store_world(4242)
    engine = SurveyEngine(world, config=EngineConfig())
    engine.run()
    universe = engine.builder.universe
    path = save_universe(universe, tmp_path / "universe.rsnap")
    restored = load_universe(path)
    assert len(restored) == len(universe)
    assert list(restored.kinds) == list(universe.kinds)
    assert [restored.key_of(i) for i in range(len(restored))] == \
        [universe.key_of(i) for i in range(len(universe))]
    offsets, targets = universe.csr()
    restored_offsets, restored_targets = restored.csr()
    assert list(restored_offsets) == list(offsets)
    assert list(restored_targets) == list(targets)
    # NS slot assignment reproduces too (the bitmask layout closures use).
    assert restored.slot_count() == universe.slot_count()

def test_epoch_store_periodic_keyframes(tmp_path):
    """``keyframe_every=K`` bounds every overlay chain at K files: full
    snapshots land on each multiple of K, deltas between them, and each
    reconstructed epoch stays byte-identical to what was archived."""
    world = _store_world(4242)
    model = ChurnModel(world, RATES, seed=9)
    engine = SurveyEngine(world, config=EngineConfig())
    results = engine.run()
    store = EpochStore(tmp_path / "epochs", keyframe_every=3)
    store.append(results)
    expected = [_snapshot_bytes(results)]
    for _ in range(7):
        journal = ChangeJournal(world)
        model.advance(journal)
        outcome = engine.run_delta(results, journal)
        store.append(outcome.results, previous=results,
                     dirty=outcome.dirty)
        results = outcome.results
        expected.append(_snapshot_bytes(results))

    assert store.epochs == 8
    kinds = [sniff_kind(store.epoch_path(epoch)) for epoch in range(8)]
    assert kinds == [KIND_RESULTS, KIND_DELTA, KIND_DELTA, KIND_RESULTS,
                     KIND_DELTA, KIND_DELTA, KIND_RESULTS, KIND_DELTA]
    for epoch in range(8):
        assert _snapshot_bytes(store.load_epoch(epoch)) == expected[epoch]


def test_epoch_store_reads_any_keyframe_cadence(tmp_path):
    """Readers sniff keyframes from the file kinds, so a store written
    with one cadence opens fine through a handle configured with another
    (or none at all)."""
    world = _store_world(1977)
    model = ChurnModel(world, RATES, seed=3)
    engine = SurveyEngine(world, config=EngineConfig())
    results = engine.run()
    writer = EpochStore(tmp_path / "epochs", keyframe_every=2)
    writer.append(results)
    history = [_snapshot_bytes(results)]
    for _ in range(3):
        journal = ChangeJournal(world)
        model.advance(journal)
        outcome = engine.run_delta(results, journal)
        writer.append(outcome.results, previous=results,
                      dirty=outcome.dirty)
        results = outcome.results
        history.append(_snapshot_bytes(results))

    plain_reader = EpochStore(tmp_path / "epochs")
    for epoch in range(4):
        assert _snapshot_bytes(plain_reader.load_epoch(epoch)) == \
            history[epoch]


def test_epoch_store_rejects_bad_keyframe_cadence(tmp_path):
    with pytest.raises(ValueError, match="keyframe_every"):
        EpochStore(tmp_path / "epochs", keyframe_every=0)
