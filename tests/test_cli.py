"""Tests for the ``repro-dns`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

#: Tiny generator arguments so each CLI invocation stays fast.
TINY = ["--sld-count", "40", "--directory-names", "60",
        "--universities", "10", "--seed", "11"]


def test_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_survey_defaults():
    parser = build_parser()
    args = parser.parse_args(["survey"])
    assert args.command == "survey"
    assert args.seed == 20040722
    assert args.output is None


def test_survey_command_prints_headline_and_figures(capsys):
    exit_code = main(["survey", "--max-names", "30", *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "mean_tcb_size" in output
    assert "fraction_completely_hijackable" in output
    assert "Figure 3" in output
    # The ccTLD table (Figure 4) only appears when enough ccTLD names were
    # surveyed, which a tiny --max-names run cannot guarantee.


def test_survey_command_writes_snapshot(tmp_path, capsys):
    snapshot = tmp_path / "snapshot.json"
    exit_code = main(["survey", "--max-names", "25", "--output",
                      str(snapshot), *TINY])
    assert exit_code == 0
    assert snapshot.exists()
    payload = json.loads(snapshot.read_text())
    assert payload["records"]
    assert "snapshot written" in capsys.readouterr().out


def test_report_command_reads_snapshot(tmp_path, capsys):
    snapshot = tmp_path / "snapshot.json"
    main(["survey", "--max-names", "25", "--output", str(snapshot), *TINY])
    capsys.readouterr()
    exit_code = main(["report", str(snapshot)])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "mean_tcb_size" in output


def test_survey_no_bottleneck_flag(capsys):
    exit_code = main(["survey", "--max-names", "15", "--no-bottleneck", *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "mean_mincut_size" in output


def test_inspect_known_anecdote(capsys):
    exit_code = main(["inspect", "www.fbi.gov", *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "TCB size" in output
    assert "classification" in output


def test_inspect_unknown_name(capsys):
    exit_code = main(["inspect", "www.does-not-exist.zz", *TINY])
    assert exit_code == 1
    assert "could not walk" in capsys.readouterr().out


def test_survey_backend_and_workers_flags(capsys):
    exit_code = main(["survey", "--max-names", "25", "--backend", "thread",
                      "--workers", "2", *TINY])
    assert exit_code == 0
    assert "mean_tcb_size" in capsys.readouterr().out


def test_survey_backends_agree_on_headline(capsys):
    outputs = {}
    for backend in ("serial", "sharded"):
        main(["survey", "--max-names", "30", "--backend", backend,
              "--workers", "3", *TINY])
        outputs[backend] = capsys.readouterr().out
    assert outputs["serial"] == outputs["sharded"]


def test_survey_progress_flag_prints_to_stderr(capsys):
    exit_code = main(["survey", "--max-names", "20", "--progress", *TINY])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "surveyed 20/20 names" in captured.err
    assert "surveyed 20/20 names" not in captured.out


def test_survey_process_backend(capsys):
    exit_code = main(["survey", "--max-names", "25", "--backend", "process",
                      "--workers", "2", *TINY])
    assert exit_code == 0
    assert "mean_tcb_size" in capsys.readouterr().out


def test_survey_passes_flag_prints_pass_summary(capsys):
    exit_code = main(["survey", "--max-names", "25", "--passes",
                      "availability,dnssec:fraction=0.5", *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Analysis passes" in output
    assert "availability" in output
    assert "dnssec_status=" in output


def test_diff_command_reports_churn(tmp_path, capsys):
    # Same world surveyed with and without the bottleneck analysis: names
    # align, min-cut sizes and classifications churn.
    base = tmp_path / "base.json"
    other = tmp_path / "other.json"
    main(["survey", "--max-names", "30", "--output", str(base), *TINY])
    main(["survey", "--max-names", "30", "--output", str(other),
          "--no-bottleneck", *TINY])
    capsys.readouterr()
    exit_code = main(["diff", str(base), str(other), "--top", "5"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "snapshot diff" in output
    assert "common" in output
    assert "tcb_size" in output
    assert "mincut_size" in output


def test_resurvey_command_round_trip(tmp_path, capsys):
    """Survey -> mutate -> resurvey: the incremental snapshot must equal a
    cold survey of the mutated world, and only touched names re-survey."""
    prev = tmp_path / "prev.json"
    nxt = tmp_path / "next.json"
    main(["survey", "--output", str(prev), *TINY])
    capsys.readouterr()

    # Pick the discovered server with the smallest TCB footprint so the
    # re-survey provably touches a minority of the directory.
    from repro.core.snapshot import load_results
    previous = load_results(prev)
    counts = {}
    for record in previous.resolved_records():
        for host in record.tcb_servers:
            counts[host] = counts.get(host, 0) + 1
    victim = min(sorted(counts), key=lambda host: counts[host])
    mutation = f"set-software:host={victim};software=BIND 8.2.2"
    exit_code = main(["resurvey", str(prev), "--mutate", mutation,
                      "--output", str(nxt), *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "mutated: software(" in output
    assert "re-surveyed" in output and "patched from" in output
    assert "snapshot written" in output

    # The mutation's footprint is a single university server: most of the
    # directory must have been patched, not re-surveyed.
    import re
    match = re.search(r"re-surveyed (\d+)/(\d+) names", output)
    dirty, total = int(match.group(1)), int(match.group(2))
    assert 0 < dirty < total / 2

    # And the snapshot equals a cold survey of the same mutated world.
    from repro.core.snapshot import diff_results
    from repro.core.engine import SurveyEngine
    from repro.topology.changes import apply_mutation_spec, ChangeJournal
    from repro.topology.generator import GeneratorConfig, InternetGenerator
    internet = InternetGenerator(GeneratorConfig(
        seed=11, sld_count=40, directory_name_count=60,
        university_count=10)).generate()
    apply_mutation_spec(ChangeJournal(internet), mutation)
    cold = SurveyEngine(internet).run()
    diff = diff_results(load_results(nxt), cold)
    assert diff.is_identical


def test_resurvey_chains_through_sidecar_journal(tmp_path, capsys):
    """resurvey of a resurvey-produced snapshot replays the earlier
    mutations from the sidecar journal, so the chained snapshot matches a
    cold survey of the *twice*-mutated world."""
    prev = tmp_path / "prev.json"
    mid = tmp_path / "mid.json"
    last = tmp_path / "last.json"
    main(["survey", "--output", str(prev), *TINY])
    capsys.readouterr()

    from repro.core.snapshot import diff_results, load_results
    host_a, host_b = sorted(load_results(prev).vulnerable_servers |
                            load_results(prev).compromisable_servers |
                            set(load_results(prev).fingerprints))[:2]
    first = f"set-software:host={host_a};software=BIND 8.2.2"
    second = f"set-software:host={host_b};software=BIND 9.2.3"

    main(["resurvey", str(prev), "--mutate", first, "--output", str(mid),
          *TINY])
    assert (tmp_path / "mid.json.journal").exists()
    capsys.readouterr()
    main(["resurvey", str(mid), "--mutate", second, "--output", str(last),
          *TINY])
    output = capsys.readouterr().out
    assert "replayed 1 prior mutation(s)" in output
    sidecar = json.loads((tmp_path / "last.json.journal").read_text())
    assert sidecar["specs"] == [first, second]
    # The v2 sidecar binds itself to the published snapshot by hash.
    import hashlib
    assert sidecar["snapshot_sha256"] == \
        hashlib.sha256(last.read_bytes()).hexdigest()

    # Cold survey of the twice-mutated world must match the chained result.
    from repro.core.engine import SurveyEngine
    from repro.topology.changes import ChangeJournal, apply_mutation_spec
    from repro.topology.generator import GeneratorConfig, InternetGenerator
    internet = InternetGenerator(GeneratorConfig(
        seed=11, sld_count=40, directory_name_count=60,
        university_count=10)).generate()
    journal = ChangeJournal(internet)
    apply_mutation_spec(journal, first)
    apply_mutation_spec(journal, second)
    cold = SurveyEngine(internet).run()
    diff = diff_results(load_results(last), cold)
    assert diff.is_identical
    assert load_results(last).vulnerable_servers == cold.vulnerable_servers


def test_survey_output_removes_stale_sidecar_journal(tmp_path, capsys):
    """Overwriting a snapshot with a fresh full survey must retire any
    mutation sidecar a previous resurvey left at that path."""
    snap = tmp_path / "snap.json"
    sidecar = tmp_path / "snap.json.journal"
    sidecar.write_text('["set-software:host=x.example.com"]')
    main(["survey", "--max-names", "15", "--output", str(snap), *TINY])
    output = capsys.readouterr().out
    assert not sidecar.exists()
    assert "stale mutation journal" in output


def test_resurvey_rejects_bad_mutation_spec(tmp_path, capsys):
    prev = tmp_path / "prev.json"
    main(["survey", "--output", str(prev), *TINY])
    capsys.readouterr()
    with pytest.raises(ValueError, match="unknown mutation kind"):
        main(["resurvey", str(prev), "--mutate", "frobnicate:zone=com",
              *TINY])


def test_diff_command_identical_snapshots(tmp_path, capsys):
    snapshot = tmp_path / "snap.json"
    main(["survey", "--max-names", "20", "--output", str(snapshot), *TINY])
    capsys.readouterr()
    exit_code = main(["diff", str(snapshot), str(snapshot)])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "0 changed" in output


def test_churn_command_writes_validated_timeline(tmp_path, capsys):
    timeline_path = tmp_path / "timeline.json"
    exit_code = main(["churn", "--epochs", "3", "--churn-seed", "4",
                      "--rates", "transfer=1,death=0.5,upgrade=1,dnssec=0.2",
                      "--output", str(timeline_path), *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "churn timeline: 3 epochs" in output
    assert "hijackable" in output

    payload = json.loads(timeline_path.read_text())
    assert payload["format_version"] == 1
    assert [row["epoch"] for row in payload["snapshots"]] == [0, 1, 2, 3]
    fractions = [row["dnssec_fraction"] for row in payload["snapshots"]]
    assert fractions == sorted(fractions)
    assert sum(row["changed_names"] for row in payload["snapshots"]) > 0


def test_churn_command_cold_check_passes(capsys):
    exit_code = main(["churn", "--epochs", "2", "--churn-seed", "4",
                      "--rates", "transfer=1,upgrade=1", "--cold-check",
                      *TINY])
    assert exit_code == 0
    assert "cold audit: 2/2 epochs byte-identical" in capsys.readouterr().out


def test_churn_command_is_deterministic(tmp_path, capsys):
    paths = [tmp_path / "a.json", tmp_path / "b.json"]
    for path in paths:
        main(["churn", "--epochs", "2", "--churn-seed", "11",
              "--rates", "transfer=1,upgrade=2,region=1",
              "--output", str(path), *TINY])
        capsys.readouterr()
    payloads = [json.loads(path.read_text()) for path in paths]
    for payload in payloads:
        for row in payload["snapshots"]:
            row["delta_elapsed_s"] = 0
    assert payloads[0] == payloads[1]


def test_churn_command_rejects_bad_rates(capsys):
    with pytest.raises(ValueError, match="unknown churn class"):
        main(["churn", "--epochs", "1", "--rates", "meteor=1", *TINY])


def test_timeline_command_renders_drift(tmp_path, capsys):
    timeline_path = tmp_path / "timeline.json"
    main(["churn", "--epochs", "3", "--churn-seed", "4",
          "--rates", "transfer=1,upgrade=1,dnssec=0.2",
          "--passes", "dnssec:fraction=0.2",
          "--output", str(timeline_path), *TINY])
    capsys.readouterr()
    exit_code = main(["timeline", str(timeline_path)])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "epoch" in output and "hijackable" in output
    assert "signed" in output
    # The dnssec pass contributes the secure-fraction drift column.
    assert "secure" in output


def test_timeline_command_rejects_corrupt_timeline(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format_version": 1, "config": {},
                               "snapshots": []}))
    with pytest.raises(ValueError, match="no snapshots"):
        main(["timeline", str(bad)])


# -- snapshot formats ------------------------------------------------------------------

def test_survey_binary_output_round_trips(tmp_path, capsys):
    """--format binary writes a REPRO-SNAP file every reading subcommand
    accepts by sniffing magic bytes, never the file extension."""
    from repro.core.snapstore import MAGIC

    snap = tmp_path / "snapshot.json"  # deliberately misleading extension
    exit_code = main(["survey", "--max-names", "25", "--format", "binary",
                      "--output", str(snap), *TINY])
    assert exit_code == 0
    assert snap.read_bytes().startswith(MAGIC)
    capsys.readouterr()
    assert main(["report", str(snap)]) == 0
    assert "mean_tcb_size" in capsys.readouterr().out
    assert main(["diff", str(snap), str(snap)]) == 0
    assert "0 changed" in capsys.readouterr().out


def test_survey_compressed_output_round_trips(tmp_path, capsys):
    """--compress emits zlib the loader sniffs transparently; the binary
    and compressed-JSON codecs describe byte-identical results."""
    plain = tmp_path / "plain.json"
    packed = tmp_path / "packed.json"
    binary = tmp_path / "binary.rsnap"
    main(["survey", "--max-names", "25", "--output", str(plain), *TINY])
    main(["survey", "--max-names", "25", "--output", str(packed),
          "--compress", *TINY])
    main(["survey", "--max-names", "25", "--output", str(binary),
          "--format", "binary", *TINY])
    assert packed.stat().st_size < plain.stat().st_size
    capsys.readouterr()
    assert main(["diff", str(packed), str(binary)]) == 0
    assert "0 changed" in capsys.readouterr().out


def test_survey_rejects_compressed_binary(tmp_path, capsys):
    exit_code = main(["survey", "--max-names", "15", "--format", "binary",
                      "--compress", "--output", str(tmp_path / "s.rsnap"),
                      *TINY])
    assert exit_code == 2
    assert "error:" in capsys.readouterr().err


def test_report_rejects_corrupt_snapshot(tmp_path, capsys):
    junk = tmp_path / "junk.json"
    junk.write_text("this is not a snapshot of anything")
    exit_code = main(["report", str(junk)])
    assert exit_code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "not a recognised snapshot" in err


def test_report_rejects_truncated_binary(tmp_path, capsys):
    snap = tmp_path / "snap.rsnap"
    main(["survey", "--max-names", "15", "--format", "binary",
          "--output", str(snap), *TINY])
    snap.write_bytes(snap.read_bytes()[:40])
    capsys.readouterr()
    exit_code = main(["report", str(snap)])
    assert exit_code == 2
    assert "error:" in capsys.readouterr().err


def test_resurvey_accepts_binary_previous(tmp_path, capsys):
    """The incremental path works straight off an mmap'd binary previous
    and can emit a binary successor."""
    prev = tmp_path / "prev.rsnap"
    nxt = tmp_path / "next.rsnap"
    main(["survey", "--output", str(prev), "--format", "binary", *TINY])
    capsys.readouterr()

    from repro.core.snapshot import load_results
    previous = load_results(prev)
    victim = sorted(previous.fingerprints)[0]
    mutation = f"set-software:host={victim};software=BIND 8.2.2"
    exit_code = main(["resurvey", str(prev), "--mutate", mutation,
                      "--output", str(nxt), "--format", "binary", *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "re-surveyed" in output and "patched from" in output
    restored = load_results(nxt)
    assert restored.metadata == load_results(prev).metadata


def test_churn_store_flag_archives_epochs(tmp_path, capsys):
    from repro.core.snapstore import EpochStore

    store_dir = tmp_path / "epochs"
    exit_code = main(["churn", "--epochs", "2", "--churn-seed", "4",
                      "--rates", "transfer=1,upgrade=1",
                      "--store", str(store_dir), *TINY])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "epoch store:" in output
    store = EpochStore(store_dir)
    assert store.epochs == 3
    assert store.total_bytes() < 2 * store.epoch_path(0).stat().st_size
    assert len(store.load_epoch(2).records) > 0

# -- the distributed survey surface -------------------------------------------------------


def test_parser_worker_and_merge_defaults():
    parser = build_parser()
    worker_args = parser.parse_args(["worker"])
    assert worker_args.command == "worker"
    assert worker_args.listen == "127.0.0.1:0"
    merge_args = parser.parse_args(["merge", "a.rsnap", "b.rsnap",
                                    "--output", "out.rsnap"])
    assert merge_args.shards == ["a.rsnap", "b.rsnap"]
    with pytest.raises(SystemExit):  # --output is required
        parser.parse_args(["merge", "a.rsnap"])


def test_parser_shard_spec():
    parser = build_parser()
    args = parser.parse_args(["survey", "--shard", "2/5"])
    assert args.shard == (2, 5)
    for bad in ("5/5", "-1/3", "1of3", "2/"):
        with pytest.raises(SystemExit):
            parser.parse_args(["survey", "--shard", bad])


def test_survey_shard_requires_output(capsys):
    exit_code = main(["survey", "--shard", "0/2", *TINY])
    assert exit_code == 2
    assert "requires --output" in capsys.readouterr().err


def test_worker_addrs_rejected_off_socket_backend(capsys):
    exit_code = main(["survey", "--worker-addrs", "127.0.0.1:9999",
                      "--max-names", "5", *TINY])
    assert exit_code == 2
    assert "only applies to --backend socket" in capsys.readouterr().err


def test_survey_socket_backend_spawns_local_fleet(tmp_path, capsys):
    """``--backend socket`` without addresses spawns ``--workers`` local
    worker processes and the result matches a serial run of the world."""
    serial_path = tmp_path / "serial.json"
    socket_path = tmp_path / "socket.json"
    main(["survey", "--max-names", "30", "--output", str(serial_path),
          *TINY])
    exit_code = main(["survey", "--max-names", "30", "--backend", "socket",
                      "--workers", "2", "--output", str(socket_path),
                      *TINY])
    assert exit_code == 0
    capsys.readouterr()
    assert main(["diff", str(serial_path), str(socket_path)]) == 0
    assert " 0 changed" in capsys.readouterr().out


def test_churn_keyframe_every_flag(tmp_path, capsys):
    from repro.core.snapstore import (EpochStore, KIND_DELTA, KIND_RESULTS,
                                      sniff_kind)

    store_dir = tmp_path / "epochs"
    exit_code = main(["churn", "--epochs", "4", "--churn-seed", "4",
                      "--rates", "transfer=1,upgrade=1",
                      "--store", str(store_dir), "--keyframe-every", "2",
                      *TINY])
    assert exit_code == 0
    assert "epoch store:" in capsys.readouterr().out
    store = EpochStore(store_dir)
    assert store.epochs == 5
    kinds = [sniff_kind(store.epoch_path(epoch)) for epoch in range(5)]
    assert kinds == [KIND_RESULTS, KIND_DELTA, KIND_RESULTS, KIND_DELTA,
                     KIND_RESULTS]
    assert len(store.load_epoch(4).records) > 0
