"""Tests for :mod:`repro.topology.churn` (the seeded churn model).

The load-bearing property is determinism: the same seed and rates over the
same world must produce the identical journal event sequence, epoch after
epoch — that is what makes a churn timeline a reproducible experiment.
"""

import pytest

from repro.dns.name import DomainName
from repro.topology.changes import ChangeJournal, zone_nameserver_union
from repro.topology.churn import (
    ChurnModel,
    ChurnRates,
    DOWNGRADE_BANNERS,
    INFRASTRUCTURE_SUFFIXES,
    UPGRADE_BANNERS,
)
from repro.topology.generator import GeneratorConfig, InternetGenerator

CONFIG = GeneratorConfig(seed=4242, sld_count=60, directory_name_count=90,
                         university_count=12, hosting_provider_count=6,
                         isp_count=4, alexa_count=15)

RATES = ChurnRates(transfer=2.0, death=1.0, upgrade=2.0, downgrade=1.0,
                   region=1.0, dnssec=0.1)


def _world():
    return InternetGenerator(CONFIG).generate()


def _event_fingerprint(event):
    """A comparable identity for one journal event."""
    return (event.kind, str(event.zone) if event.zone else None,
            tuple(str(h) for h in event.hosts_before),
            tuple(str(h) for h in event.hosts_after),
            {key: value for key, value in event.details.items()
             if key != "deployment"})


def _run_epochs(world, seed, epochs=3, rates=RATES):
    model = ChurnModel(world, rates, seed=seed)
    sequence = []
    for _ in range(epochs):
        journal = ChangeJournal(world)
        for event in model.advance(journal):
            sequence.append(_event_fingerprint(event))
    return sequence


# -- determinism -----------------------------------------------------------------------

def test_same_seed_and_rates_reproduce_the_event_sequence():
    first = _run_epochs(_world(), seed=7)
    second = _run_epochs(_world(), seed=7)
    assert first == second
    assert len(first) > 0


def test_different_seeds_diverge():
    assert _run_epochs(_world(), seed=7) != _run_epochs(_world(), seed=8)


def test_different_rates_diverge():
    quiet = ChurnRates(transfer=0.0, death=0.0, upgrade=1.0, downgrade=0.0,
                       region=0.0, dnssec=0.0)
    assert _run_epochs(_world(), seed=7) != \
        _run_epochs(_world(), seed=7, rates=quiet)


def test_zero_rates_produce_no_events():
    world = _world()
    model = ChurnModel(world, ChurnRates(transfer=0, death=0, upgrade=0,
                                         downgrade=0, region=0, dnssec=0))
    journal = ChangeJournal(world)
    assert model.advance(journal) == []
    assert journal.changes().empty


# -- event semantics -------------------------------------------------------------------

def test_infrastructure_is_never_churned():
    """Root / gTLD / TLD-serving hosts and zones stay untouched."""
    world = _world()
    model = ChurnModel(world, RATES, seed=3)
    infrastructure = tuple(DomainName(s) for s in INFRASTRUCTURE_SUFFIXES)

    def is_infra(name):
        return any(name.is_subdomain_of(suffix) for suffix in infrastructure)

    tld_hosts = {host for apex in world.zones if apex.depth <= 1
                 for host in zone_nameserver_union(world, apex)}
    for _ in range(6):
        journal = ChangeJournal(world)
        for event in model.advance(journal):
            if event.zone is not None:
                assert event.zone.depth >= 2
                assert not is_infra(event.zone)
            for host in event.touched_hosts:
                assert not is_infra(host)
            if event.kind in ("software", "region", "server-remove"):
                assert not event.touched_hosts & tld_hosts


def test_death_replaces_before_removing():
    """A death event leaves every affected zone served, by the replacement."""
    world = _world()
    model = ChurnModel(world, ChurnRates(transfer=0, death=1.0, upgrade=0,
                                         downgrade=0, region=0, dnssec=0),
                       seed=1)
    journal = ChangeJournal(world)
    events = model.advance(journal)
    assert events, "death rate 1.0 must kill a server every epoch"
    removal = next(e for e in events if e.kind == "server-remove")
    victim = next(iter(removal.touched_hosts))
    addition = next(e for e in events if e.kind == "server-add")
    replacement = addition.hosts_after[0]
    assert replacement.parent() == victim.parent()
    for apex in removal.details["zones"]:
        union = zone_nameserver_union(world, DomainName(apex))
        assert victim not in union
        assert replacement in union
    assert world.servers[replacement].software == \
        addition.details["software"]


def test_software_churn_draws_from_the_catalogues():
    world = _world()
    model = ChurnModel(world, ChurnRates(transfer=0, death=0, upgrade=2.0,
                                         downgrade=2.0, region=0, dnssec=0),
                       seed=2)
    banners = set()
    for _ in range(5):
        journal = ChangeJournal(world)
        for event in model.advance(journal):
            assert event.kind == "software"
            banners.add(event.details["after"])
    assert banners <= set(UPGRADE_BANNERS) | set(DOWNGRADE_BANNERS)
    assert banners & set(UPGRADE_BANNERS)
    assert banners & set(DOWNGRADE_BANNERS)


def test_region_migration_changes_the_region():
    world = _world()
    model = ChurnModel(world, ChurnRates(transfer=0, death=0, upgrade=0,
                                         downgrade=0, region=1.0, dnssec=0),
                       seed=4)
    journal = ChangeJournal(world)
    event = model.advance(journal)[0]
    assert event.kind == "region"
    assert event.details["before"] != event.details["after"]


def test_dnssec_adoption_is_monotone_and_saturates():
    world = _world()
    model = ChurnModel(world, ChurnRates(transfer=0, death=0, upgrade=0,
                                         downgrade=0, region=0, dnssec=0.4),
                       seed=5)
    fractions = []
    for _ in range(4):
        journal = ChangeJournal(world)
        model.advance(journal)
        fractions.append(model.dnssec_fraction)
    assert fractions == [0.4, 0.8, 1.0, 1.0]
    # Saturated: the fourth epoch journals no further deployment.
    journal = ChangeJournal(world)
    assert model.advance(journal) == []


def test_transfer_moves_zone_to_another_operator():
    world = _world()
    model = ChurnModel(world, ChurnRates(transfer=3.0, death=0, upgrade=0,
                                         downgrade=0, region=0, dnssec=0),
                       seed=6)
    journal = ChangeJournal(world)
    events = model.advance(journal)
    assert events, "transfer rate 3.0 over a 60-SLD world must land one"
    organizations = world.organizations
    for event in events:
        assert event.kind == "zone-ns"
        new_operator = organizations.operator_of(event.hosts_after[0])
        assert new_operator is not None
        assert event.hosts_after != event.hosts_before


# -- rates -----------------------------------------------------------------------------

def test_rates_parse_defaults_and_overrides():
    assert ChurnRates.parse(None) == ChurnRates()
    assert ChurnRates.parse("  ") == ChurnRates()
    rates = ChurnRates.parse("transfer=2,death=0.25, dnssec=0.05")
    assert rates.transfer == 2.0
    assert rates.death == 0.25
    assert rates.dnssec == 0.05
    assert rates.upgrade == ChurnRates().upgrade


@pytest.mark.parametrize("spec, message", [
    ("transfer", "malformed churn rate"),
    ("warp=1", "unknown churn class"),
    ("death=fast", "must be a number"),
    ("death=-1", "must be >= 0"),
    ("dnssec=1.5", "per-epoch fraction increment"),
])
def test_rates_parse_rejects_bad_specs(spec, message):
    with pytest.raises(ValueError, match=message):
        ChurnRates.parse(spec)


def test_rates_to_dict_round_trips():
    rates = ChurnRates(transfer=1.5, dnssec=0.02)
    assert ChurnRates(**rates.to_dict()) == rates
