"""Ancestor-invalidation fan-out: dirty-set size vs. mutated-zone depth.

The delta engine's cost model: re-delegating a zone invalidates every name
whose dependency closure crosses it.  For a TLD that is most of the
directory; for a leaf site it is a handful of names.  This micro-benchmark
quantifies both halves of that fan-out on a warm engine —

* the :class:`~repro.core.delegation.ClosureIndex` memo entries dropped by
  invalidating the zone's node (the graph-side cost), and
* the :class:`~repro.core.delta.DirtyIndex` dirty-name count for an NS-set
  edit of the zone (the re-survey cost)

— at increasing zone depth, asserting both shrink monotonically.
"""

import time

from repro.core.delegation import zone_node
from repro.core.delta import DirtyIndex
from repro.core.engine import EngineConfig, SurveyEngine
from repro.topology.changes import ChangeSet
from repro.topology.generator import InternetGenerator

from conftest import BENCH_CONFIG


def _edit_change_set(internet, apex):
    """The ChangeSet an NS-set edit of ``apex`` would fold to (no mutation)."""
    nameservers = internet.zones[apex].apex_nameservers()
    return ChangeSet(edited_zones={apex: list(nameservers)},
                     created_zones=(), chain_zones=(),
                     touched_hosts=frozenset(nameservers),
                     refingerprint_hosts=frozenset(),
                     added_names=frozenset(), dnssec_deployments=(),
                     dirty_all=False)


def _pick_zones(internet, previous, index):
    """One zone per depth tier: a TLD, a provider SLD, and a leaf cut.

    The SLD is a hosting provider (a mid-sized dependency hub, not shared
    registry infrastructure); the deep zone is the depth>=3 cut with the
    smallest dirty footprint (a genuinely leafy delegation).
    """
    from repro.dns.name import DomainName
    by_tld = {}
    for record in previous.resolved_records():
        by_tld[record.tld] = by_tld.get(record.tld, 0) + 1
    tld = max(sorted(by_tld), key=lambda label: by_tld[label])
    sld = next(org.domain for org in internet.organizations
               if org.kind.value == "hosting" and org.domain.depth == 2)
    zones = internet.zones

    def footprint(apex):
        return len(index.dirty_names(_edit_change_set(internet, apex)))

    deep = min((apex for apex in zones
                if apex.depth >= 3 and zones[apex].apex_nameservers() and
                not apex.is_subdomain_of("root-servers.net")),
               key=lambda apex: (footprint(apex), str(apex)))
    return [DomainName(tld), sld, deep]


def test_bench_invalidation_fanout_by_depth(figure_writer, bench_metrics):
    internet = InternetGenerator(BENCH_CONFIG).generate()
    engine = SurveyEngine(
        internet,
        config=EngineConfig(popular_count=BENCH_CONFIG.alexa_count))
    previous = engine.run()
    index = DirtyIndex(previous)
    closures = engine.builder.closures
    targets = _pick_zones(internet, previous, index)

    lines = ["zone                        depth  closure-drops  dirty-names"
             "  map-time"]
    rows = []
    for apex in targets:
        # Re-warm the memo (invalidations below drop entries).
        for record in previous.records:
            engine.builder.tcb_view(record.name)
        warm = len(closures)
        closures.invalidate(zone_node(apex))
        dropped = warm - len(closures)

        start = time.perf_counter()
        dirty = index.dirty_names(_edit_change_set(internet, apex))
        map_elapsed = time.perf_counter() - start
        rows.append((apex, dropped, len(dirty), map_elapsed))
        lines.append(f"{str(apex):26s}  {apex.depth:5d}  {dropped:13d}  "
                     f"{len(dirty):11d}  {map_elapsed * 1e3:7.2f}ms")

    (tld, tld_drops, tld_dirty, _t0) = rows[0]
    (_sld, sld_drops, sld_dirty, _t1) = rows[1]
    (_deep, deep_drops, deep_dirty, _t2) = rows[2]
    lines.append("")
    lines.append(f"fan-out ratio TLD/deep: {tld_dirty / max(deep_dirty, 1):.0f}x "
                 f"dirty names, {tld_drops / max(deep_drops, 1):.0f}x "
                 f"closure drops")
    figure_writer.write("delta_fanout",
                        "Invalidation fan-out vs. mutated-zone depth", lines)
    bench_metrics.record(
        "delta_fanout",
        tld_dirty=tld_dirty, sld_dirty=sld_dirty, deep_dirty=deep_dirty,
        tld_closure_drops=tld_drops, deep_closure_drops=deep_drops)

    # Fan-out must shrink with depth: the delta engine's economics.
    assert tld_dirty >= sld_dirty >= deep_dirty
    assert tld_dirty > deep_dirty, "TLD edit should dwarf a leaf edit"
    assert tld_drops >= deep_drops
    # A TLD edit dirties a large share of the directory; a leaf edit a
    # sliver of it.
    assert tld_dirty >= len(previous.records) * 0.05
    assert deep_dirty <= len(previous.records) * 0.05
