"""The survey orchestrator: crawl, resolve, fingerprint, analyse, aggregate.

:class:`Survey` reproduces the paper's measurement pipeline end to end:

1. take the list of web-server names from the (simulated) directory crawl;
2. for every name, walk its delegation chains with a real iterative resolver
   and build its delegation graph (Section 2);
3. fingerprint every nameserver discovered along the way via ``version.bind``
   and match the banners against the catalogue of known BIND holes;
4. compute, per name, the TCB report, the bottleneck (min-cut) analysis, and
   the hijack classification;
5. aggregate everything into a :class:`SurveyResults` object from which each
   of the paper's figures and headline statistics can be regenerated.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.dns.name import DomainName, NameLike
from repro.core.value import NameserverValueAnalyzer, ServerValue
from repro.core.report import CDFSeries, average_by_group, summary_stats
from repro.vulns.database import VulnerabilityDatabase
from repro.vulns.fingerprint import FingerprintResult


@dataclasses.dataclass
class NameRecord:
    """Everything the survey learned about one name."""

    name: DomainName
    tld: str
    category: str
    is_popular: bool
    resolved: bool
    tcb_size: int
    in_bailiwick: int
    vulnerable_in_tcb: int
    compromisable_in_tcb: int
    safety_percentage: float
    mincut_size: int
    mincut_safe: int
    mincut_vulnerable: int
    classification: str
    tcb_servers: Set[DomainName] = dataclasses.field(default_factory=set)
    mincut_servers: Set[DomainName] = dataclasses.field(default_factory=set)
    #: Columns contributed by engine analysis passes (availability, DNSSEC,
    #: ...).  Values are JSON-scalar (bool/int/float/str) so snapshots and
    #: cross-backend byte-identity hold without special casing.
    extras: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def is_cctld_name(self) -> bool:
        """True if the name lives under a two-letter (country-code) TLD."""
        return len(self.tld) == 2

    @property
    def completely_hijackable(self) -> bool:
        """True if the min-cut consists solely of vulnerable servers."""
        return self.classification == "complete"

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly record used by snapshots."""
        return {
            "name": str(self.name),
            "tld": self.tld,
            "category": self.category,
            "is_popular": self.is_popular,
            "resolved": self.resolved,
            "tcb_size": self.tcb_size,
            "in_bailiwick": self.in_bailiwick,
            "vulnerable_in_tcb": self.vulnerable_in_tcb,
            "compromisable_in_tcb": self.compromisable_in_tcb,
            "safety_percentage": round(self.safety_percentage, 3),
            "mincut_size": self.mincut_size,
            "mincut_safe": self.mincut_safe,
            "mincut_vulnerable": self.mincut_vulnerable,
            "classification": self.classification,
            "tcb_servers": sorted(str(s) for s in self.tcb_servers),
            "mincut_servers": sorted(str(s) for s in self.mincut_servers),
            "extras": {key: self.extras[key] for key in sorted(self.extras)},
        }


@dataclasses.dataclass
class SurveyResults:
    """Aggregated output of a survey run."""

    records: List[NameRecord]
    server_names_controlled: Dict[DomainName, int]
    vulnerable_servers: Set[DomainName]
    compromisable_servers: Set[DomainName]
    fingerprints: Dict[DomainName, FingerprintResult]
    popular_names: Set[DomainName]
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)
    _record_index: Optional[Dict[DomainName, NameRecord]] = dataclasses.field(
        default=None, init=False, repr=False, compare=False)

    # -- cohorts ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def resolved_records(self) -> List[NameRecord]:
        """Records for names whose delegation chain could be walked."""
        return [record for record in self.records if record.resolved]

    def popular_records(self) -> List[NameRecord]:
        """Records for the Alexa-style popular cohort."""
        return [record for record in self.records if record.is_popular]

    def records_by_tld(self) -> Dict[str, List[NameRecord]]:
        """Records grouped by TLD."""
        grouped: Dict[str, List[NameRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.tld, []).append(record)
        return grouped

    def record_for(self, name: NameLike) -> Optional[NameRecord]:
        """The record for ``name``, if it was surveyed.

        Backed by a name-indexed dictionary built on first use, so repeated
        lookups are O(1) instead of scanning the record list.
        """
        index = self._record_index
        if index is None or len(index) != len(self.records):
            index = {record.name: record for record in self.records}
            self._record_index = index
        return index.get(DomainName(name))

    def tcb_index_rows(self):
        """Yield ``(name, resolved, tcb_servers)`` per record.

        The :class:`~repro.core.delta.DirtyIndex` feed: dirty-set
        computation needs exactly these three columns, so exposing them as
        a protocol lets column-backed lazy views
        (:class:`~repro.core.snapstore.LazySurveyResults`) serve the index
        without materialising a single :class:`NameRecord`.
        """
        for record in self.records:
            yield record.name, record.resolved, record.tcb_servers

    # -- figure 2: TCB size distribution ----------------------------------------------

    def tcb_sizes(self, popular_only: bool = False) -> List[int]:
        """TCB sizes across the survey (optionally only the popular cohort)."""
        records = self.popular_records() if popular_only else self.records
        return [record.tcb_size for record in records if record.resolved]

    def tcb_cdf(self, popular_only: bool = False) -> CDFSeries:
        """The Figure 2 CDF."""
        return CDFSeries.from_values(self.tcb_sizes(popular_only=popular_only))

    # -- figures 3-4: per-TLD averages ---------------------------------------------------

    def mean_tcb_by_tld(self, kind: str = "all",
                        minimum_samples: int = 3) -> Dict[str, float]:
        """Mean TCB size per TLD; ``kind`` is "gtld", "cctld", or "all"."""
        grouped: Dict[str, List[float]] = {}
        for record in self.resolved_records():
            if kind == "gtld" and record.is_cctld_name:
                continue
            if kind == "cctld" and not record.is_cctld_name:
                continue
            grouped.setdefault(record.tld, []).append(float(record.tcb_size))
        return average_by_group(grouped, minimum_samples=minimum_samples)

    # -- figures 5-6: vulnerability exposure -----------------------------------------------

    def vulnerable_in_tcb_counts(self, popular_only: bool = False) -> List[int]:
        """Per-name count of vulnerable TCB members (Figure 5)."""
        records = self.popular_records() if popular_only else self.records
        return [record.vulnerable_in_tcb for record in records if record.resolved]

    def safety_percentages(self, popular_only: bool = False) -> List[float]:
        """Per-name percentage of safe TCB members (Figure 6)."""
        records = self.popular_records() if popular_only else self.records
        return [record.safety_percentage for record in records if record.resolved]

    def fraction_with_vulnerable_dependency(self) -> float:
        """Fraction of names depending on >= 1 vulnerable server (45 %)."""
        resolved = self.resolved_records()
        if not resolved:
            return 0.0
        affected = sum(1 for record in resolved if record.vulnerable_in_tcb > 0)
        return affected / len(resolved)

    # -- figure 7: bottlenecks -----------------------------------------------------------------

    def safe_bottleneck_counts(self, popular_only: bool = False) -> List[int]:
        """Per-name number of safe servers in the min-cut (Figure 7)."""
        records = self.popular_records() if popular_only else self.records
        return [record.mincut_safe for record in records if record.resolved]

    def fraction_completely_hijackable(self) -> float:
        """Fraction of names whose min-cut is entirely vulnerable (30 %)."""
        resolved = self.resolved_records()
        if not resolved:
            return 0.0
        hijackable = sum(1 for record in resolved
                         if record.completely_hijackable)
        return hijackable / len(resolved)

    def mean_mincut_size(self) -> float:
        """Average bottleneck size (paper: 2.5 servers)."""
        sizes = [record.mincut_size for record in self.resolved_records()
                 if record.mincut_size > 0]
        return sum(sizes) / len(sizes) if sizes else 0.0

    # -- figures 8-9: nameserver value ------------------------------------------------------------

    def value_analyzer(self) -> NameserverValueAnalyzer:
        """A value analyzer loaded with this survey's TCBs."""
        vulnerability_map = {host: True for host in self.vulnerable_servers}
        analyzer = NameserverValueAnalyzer(vulnerability_map)
        for record in self.resolved_records():
            analyzer.add_name(record.tcb_servers)
        return analyzer

    def server_value_ranking(self, only_vulnerable: bool = False,
                             tld_filter: Optional[Sequence[str]] = None
                             ) -> List[ServerValue]:
        """Rank servers by the number of surveyed names they control."""
        return self.value_analyzer().ranking(only_vulnerable=only_vulnerable,
                                             tld_filter=tld_filter)

    # -- analysis-pass columns --------------------------------------------------------------------

    def extras_columns(self) -> List[str]:
        """Every pass-contributed column appearing on at least one record."""
        columns: Set[str] = set()
        for record in self.records:
            columns.update(record.extras)
        return sorted(columns)

    def extra_values(self, column: str,
                     resolved_only: bool = True) -> List[object]:
        """Values of one pass column (records missing it are skipped)."""
        records = self.resolved_records() if resolved_only else self.records
        return [record.extras[column] for record in records
                if column in record.extras]

    def extras_summary(self) -> Dict[str, float]:
        """Aggregate pass columns: means for numbers, fractions for the rest.

        Boolean columns become the fraction of records where they are true;
        string columns expand into one ``column=value`` fraction per
        observed value, so e.g. ``dnssec_status`` summarises to
        ``dnssec_status=secure: 0.93``.  Deterministic (sorted) keying so
        snapshots and CLI output are stable.
        """
        summary: Dict[str, float] = {}
        for column in self.extras_columns():
            values = self.extra_values(column)
            if not values:
                continue
            if all(isinstance(value, bool) for value in values):
                summary[column] = sum(1 for v in values if v) / len(values)
            elif all(isinstance(value, (int, float)) for value in values):
                summary[column] = sum(float(v) for v in values) / len(values)
            else:
                texts = [str(value) for value in values]
                for observed in sorted(set(texts)):
                    summary[f"{column}={observed}"] = \
                        texts.count(observed) / len(texts)
        return summary

    # -- headline summary -------------------------------------------------------------------------

    def total_servers_discovered(self) -> int:
        """Distinct nameservers appearing in at least one TCB."""
        return len(self.server_names_controlled)

    def vulnerable_server_fraction(self) -> float:
        """Fraction of discovered servers with a known vulnerability (17 %)."""
        total = self.total_servers_discovered()
        if not total:
            return 0.0
        vulnerable = sum(1 for host in self.server_names_controlled
                         if host in self.vulnerable_servers)
        return vulnerable / total

    def headline(self) -> Dict[str, float]:
        """The paper's headline statistics, computed from this survey."""
        sizes = self.tcb_sizes()
        stats = summary_stats(sizes)
        popular_stats = summary_stats(self.tcb_sizes(popular_only=True))
        in_bailiwick = [record.in_bailiwick
                        for record in self.resolved_records()]
        vulnerable_counts = self.vulnerable_in_tcb_counts()
        return {
            "names_surveyed": float(len(self.records)),
            "names_resolved": float(len(self.resolved_records())),
            "servers_discovered": float(self.total_servers_discovered()),
            "mean_tcb_size": stats["mean"],
            "median_tcb_size": stats["median"],
            "fraction_tcb_over_200": CDFSeries.from_values(sizes)
            .fraction_above(200) if sizes else 0.0,
            "popular_mean_tcb_size": popular_stats["mean"],
            "mean_in_bailiwick": (sum(in_bailiwick) / len(in_bailiwick))
            if in_bailiwick else 0.0,
            "vulnerable_server_fraction": self.vulnerable_server_fraction(),
            "fraction_names_with_vulnerable_dependency":
                self.fraction_with_vulnerable_dependency(),
            "mean_vulnerable_in_tcb": (sum(vulnerable_counts) /
                                       len(vulnerable_counts))
            if vulnerable_counts else 0.0,
            "fraction_completely_hijackable":
                self.fraction_completely_hijackable(),
            "mean_mincut_size": self.mean_mincut_size(),
        }


class Survey:
    """Runs the measurement pipeline against a synthetic Internet.

    ``Survey`` is a thin backwards-compatible facade over
    :class:`~repro.core.engine.SurveyEngine` — the staged pipeline that
    separates discovery, closure, fingerprinting, and analysis, with
    memoized dependency closures and pluggable execution backends.  Code
    that only needs "survey this Internet" keeps using this class; code
    that wants to tune the execution (shard counts, custom aggregation)
    should use the engine directly.

    Parameters
    ----------
    internet:
        The :class:`~repro.topology.generator.SyntheticInternet` to survey.
    vulnerability_db:
        Catalogue used to interpret fingerprints; defaults to the standard
        BIND catalogue.
    popular_count:
        Size of the "Alexa top-N" popular cohort.
    include_bottleneck:
        Whether to run the (slightly more expensive) min-cut analysis.
    backend:
        Execution backend: ``"serial"`` (default), ``"thread"``,
        ``"sharded"``, or ``"process"``.  All backends produce identical
        results for the same seed.
    workers:
        Worker/shard count for the partitioned backends.
    passes:
        Extra analysis passes to run per name — pass instances or spec
        strings such as ``"availability"`` (see :mod:`repro.core.passes`).
    """

    def __init__(self, internet, vulnerability_db: Optional[VulnerabilityDatabase] = None,
                 popular_count: int = 500, include_bottleneck: bool = True,
                 use_glue: bool = True, backend: str = "serial",
                 workers: int = 1, passes: Sequence = (),
                 worker_addrs: Sequence[str] = (), retries: int = 0,
                 min_workers: int = 1, auth_token: Optional[str] = None):
        from repro.core.engine import EngineConfig, SurveyEngine
        self.internet = internet
        self.popular_count = popular_count
        self.include_bottleneck = include_bottleneck
        self.engine = SurveyEngine(
            internet, vulnerability_db,
            EngineConfig(backend=backend, workers=workers,
                         popular_count=popular_count,
                         include_bottleneck=include_bottleneck,
                         use_glue=use_glue, passes=tuple(passes),
                         worker_addrs=tuple(worker_addrs),
                         retries=retries, min_workers=min_workers,
                         auth_token=auth_token))
        self.database = self.engine.database

    def close(self) -> None:
        """Release engine resources (socket-backend worker connections)."""
        self.engine.close()

    # -- engine pass-throughs (kept for backwards compatibility) --------------------

    @property
    def resolver(self):
        """The engine's primary resolver."""
        return self.engine.resolver

    @property
    def builder(self):
        """The engine's primary delegation-graph builder."""
        return self.engine.builder

    @property
    def fingerprinter(self):
        """The engine's primary fingerprinter."""
        return self.engine.fingerprinter

    # -- main pipeline --------------------------------------------------------------------

    def run(self, names: Optional[Iterable[NameLike]] = None,
            max_names: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None
            ) -> SurveyResults:
        """Survey the given names (default: the whole directory)."""
        return self.engine.run(names=names, max_names=max_names,
                               progress=progress)

    def _vulnerability_maps(self):
        """Per-hostname vulnerability flags derived from fingerprints."""
        return self.engine.vulnerability_maps()
