#!/usr/bin/env python
"""Reproduce Figure 1: the delegation graph of a single name.

The paper opens with a drawing of www.cs.cornell.edu's delegation graph:
the name depends on the cs.cornell.edu zone, served partly by cit.cornell.edu
servers and by cayuga.cs.rochester.edu, whose own resolution drags in
rochester.edu, wisc.edu, and ultimately umich.edu — none of which Cornell
chose to trust directly.

This example picks a university department name from the synthetic Internet
(or any name you pass on the command line), prints its delegation graph as
an indented dependency tree with vulnerable servers highlighted, and writes
Graphviz DOT / GraphML files you can render:

    python examples/figure1_delegation_graph.py
    python examples/figure1_delegation_graph.py www.fbi.gov
    dot -Tpdf delegation.dot -o delegation.pdf
"""

from __future__ import annotations

import sys

from repro import GeneratorConfig, InternetGenerator
from repro.core.delegation import DelegationGraphBuilder
from repro.core.export import to_ascii_tree, to_graphml, write_dot
from repro.vulns.database import default_database
from repro.vulns.fingerprint import Fingerprinter


def pick_default_name(internet) -> str:
    """A university department name (the Figure 1 pattern), if one exists."""
    for entry in internet.directory:
        name = str(entry.name)
        if entry.category == "university" and name.count(".") >= 3:
            return name
    return str(internet.directory.entries()[0].name)


def main() -> None:
    config = GeneratorConfig(seed=20040722, sld_count=300,
                             directory_name_count=480, university_count=60,
                             hosting_provider_count=14, isp_count=10)
    print("Generating the synthetic Internet ...")
    internet = InternetGenerator(config).generate()

    target = sys.argv[1] if len(sys.argv) > 1 else pick_default_name(internet)
    print(f"Building the delegation graph of {target} ...\n")
    builder = DelegationGraphBuilder(internet.make_resolver())
    graph = builder.build(target)

    database = default_database()
    fingerprinter = Fingerprinter(internet.network, database)
    vulnerability_map = {}
    for hostname in graph.tcb():
        result = fingerprinter.fingerprint(hostname)
        vulnerability_map[hostname] = result.is_vulnerable

    print(to_ascii_tree(graph, vulnerability_map))
    in_bailiwick = graph.in_bailiwick_servers()
    vulnerable = [host for host, flag in vulnerability_map.items() if flag]
    print(f"\nTCB: {graph.tcb_size()} nameservers across "
          f"{len(graph.zones())} zones; {len(in_bailiwick)} under the "
          f"name's own zone; {len(vulnerable)} with known vulnerabilities.")

    dot_path = write_dot(graph, "delegation.dot", vulnerability_map)
    graphml_path = to_graphml(graph, "delegation.graphml")
    print(f"\nwrote {dot_path} and {graphml_path} "
          f"(render with: dot -Tpdf {dot_path} -o delegation.pdf)")


if __name__ == "__main__":
    main()
