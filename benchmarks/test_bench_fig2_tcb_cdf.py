"""Figure 2: cumulative distribution of TCB sizes (all names vs top-500).

Paper: median 26, mean 46, ~6.5 % of names above 200 servers; the 500 most
popular names average 69 servers and 15 % of them exceed 200.
"""

from conftest import PAPER, comparison_rows


def _cdf_summary(survey, popular_only):
    sizes = survey.tcb_sizes(popular_only=popular_only)
    cdf = survey.tcb_cdf(popular_only=popular_only)
    return {
        "mean": sum(sizes) / len(sizes),
        "median": cdf.value_at_percentile(50),
        "p90": cdf.value_at_percentile(90),
        "over_200": cdf.fraction_above(200),
        "count": len(sizes),
        "cdf": cdf,
    }


def test_fig2_tcb_size_cdf(benchmark, paper_survey, figure_writer):
    all_names = benchmark(lambda: _cdf_summary(paper_survey, False))
    popular = _cdf_summary(paper_survey, True)

    measured = {
        "mean_tcb_size": all_names["mean"],
        "median_tcb_size": all_names["median"],
        "fraction_tcb_over_200": all_names["over_200"],
        "popular_mean_tcb_size": popular["mean"],
        "popular_fraction_tcb_over_200": popular["over_200"],
    }
    lines = comparison_rows(measured, list(measured))
    lines.append("")
    lines.append("CDF sample points (all names): size -> percentile")
    for percentile in (10, 25, 50, 75, 90, 95, 99):
        lines.append(f"  p{percentile:<3d} "
                     f"{all_names['cdf'].value_at_percentile(percentile):8.1f}")
    figure_writer.write("figure2_tcb_cdf", "Figure 2: TCB size CDF", lines)

    # Shape: heavy tail, popular cohort heavier than the full population.
    assert all_names["median"] < all_names["mean"]
    assert all_names["p90"] > 1.5 * all_names["median"]
    assert 0.0 < all_names["over_200"] < 0.25
    assert popular["mean"] > all_names["mean"]
    assert popular["count"] <= 300


def test_fig2_cdf_monotonicity(paper_survey):
    cdf = paper_survey.tcb_cdf()
    percentiles = [cdf.points[i][1] for i in range(len(cdf.points))]
    assert percentiles == sorted(percentiles)
    assert cdf.points[-1][1] == 100.0
