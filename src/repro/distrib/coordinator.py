"""The shard coordinator: drives N socket workers and folds their columns.

:class:`ShardCoordinator` owns one TCP connection per worker.  On
creation it ships a BUILD frame describing the world (the seeded
``GeneratorConfig``) and the engine options, so each worker regenerates
the identical synthetic Internet and holds a warm serial engine.  Each
:meth:`run_shards` call stripes the indexed entries exactly like
``SurveyEngine._run_partitioned`` (``indexed[offset::shard_count]``),
ships one ``KIND_ORDER`` frame per shard in parallel, then folds the
returned ``KIND_SHARD`` columns **in shard order** — the same fold
``_consume_process_pool`` performs — so the merged
:class:`~repro.core.survey.SurveyResults` is byte-identical to the
serial backend's.

Delta runs compose through :meth:`sync_journal`: the coordinator keeps
the full mutation-spec history (one spec per journal event, via
``ChangeEvent.to_spec()``) and every work order carries it; workers
apply only the tail they have not seen.  The epoch's complete dirty-name
set rides along so every worker invalidates its warm state for *all*
dirty names, not just the ones striped onto it this epoch.

Any worker failure — connect refusal, timeout, truncated or corrupt
frame, an ERROR frame carrying the worker's exception — aborts the whole
run promptly: the coordinator closes every connection (unblocking any
thread still waiting on a slower worker) and raises a
:class:`~repro.distrib.wire.DistribError` naming the worker and cause.
No partial results are ever folded into the caller's aggregator state on
the failure path before the raise completes the fold loop.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.snapstore import (ShardPayload, SnapshotFormatError,
                                  unpack_shard_result)
from repro.distrib.wire import (FRAME_BUILD, FRAME_ERROR, FRAME_HEADER_SIZE,
                                FRAME_NAMES, FRAME_OK, FRAME_RESULT,
                                FRAME_SHUTDOWN, FRAME_SURVEY, DistribError,
                                WireError, decode_error, pack_work_order,
                                parse_address, recv_frame, send_frame)


class ShardCoordinator:
    """Connect to workers, build their worlds, and run sharded surveys."""

    def __init__(self, engine, worker_addrs: Sequence[str],
                 connect_timeout: float = 10.0,
                 response_timeout: float = 600.0):
        if not worker_addrs:
            raise DistribError("socket backend needs at least one worker "
                               "address (host:port)")
        generator_config = getattr(engine.internet, "config", None)
        if generator_config is None:
            raise DistribError(
                "socket backend needs a generator-built internet: workers "
                "reproduce the world from internet.config, which this "
                "internet does not carry")
        self._engine = engine
        self._labels = [str(address) for address in worker_addrs]
        self._response_timeout = response_timeout
        self._sockets: List[Optional[socket.socket]] = \
            [None] * len(self._labels)
        self.bytes_sent = [0] * len(self._labels)
        self.bytes_received = [0] * len(self._labels)
        #: Full mutation-spec history; every work order carries it all.
        self._specs: List[str] = []
        #: (journal, events-consumed) pairs, keyed by journal identity.
        self._journals: List[Tuple[object, int]] = []
        self._closed = False

        for position, label in enumerate(self._labels):
            host, port = parse_address(label)
            try:
                connection = socket.create_connection(
                    (host, port), timeout=connect_timeout)
            except OSError as error:
                self._abort()
                raise DistribError(
                    f"cannot connect to worker {label}: {error}") from error
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sockets[position] = connection

        build = json.dumps({
            "generator": dataclasses.asdict(generator_config),
            "engine": {
                "popular_count": engine.config.popular_count,
                "include_bottleneck": engine.config.include_bottleneck,
                "use_glue": engine.config.use_glue,
                "passes": self._pass_specs(engine),
            },
        }, sort_keys=True).encode("utf-8")
        self._broadcast(FRAME_BUILD, [build] * len(self._labels), FRAME_OK)

    @staticmethod
    def _pass_specs(engine) -> List[str]:
        """Spec strings reconstructing this engine's passes on a worker."""
        specs = []
        for pass_ in engine.passes:
            try:
                specs.append(pass_.spec())
            except NotImplementedError as error:
                raise DistribError(
                    f"pass {pass_.name!r} cannot run on the socket backend: "
                    f"{error}") from error
        return specs

    # -- request plumbing ----------------------------------------------------------------

    def _request(self, position: int, frame_type: int, payload: bytes,
                 expect: int) -> bytes:
        """One frame exchange with worker ``position`` (thread-safe per worker)."""
        connection = self._sockets[position]
        label = self._labels[position]
        if connection is None:
            raise DistribError(f"worker {label}: connection already closed")
        self.bytes_sent[position] += send_frame(connection, frame_type,
                                                payload)
        reply_type, reply = recv_frame(connection,
                                       timeout=self._response_timeout,
                                       peer=f"worker {label}")
        self.bytes_received[position] += FRAME_HEADER_SIZE + len(reply)
        if reply_type == FRAME_ERROR:
            raise DistribError(
                f"worker {label} failed: {decode_error(reply, label)}")
        if reply_type != expect:
            raise WireError(
                f"worker {label}: expected {FRAME_NAMES[expect]} frame, "
                f"got {FRAME_NAMES[reply_type]}")
        return reply

    def _broadcast(self, frame_type: int, payloads: Sequence[bytes],
                   expect: int) -> List[bytes]:
        """Send one frame to every worker in parallel; abort-all on error."""
        replies: List[Optional[bytes]] = [None] * len(payloads)
        first_error: Optional[BaseException] = None
        with ThreadPoolExecutor(max_workers=len(payloads)) as pool:
            futures = {
                pool.submit(self._request, position, frame_type,
                            payloads[position], expect): position
                for position in range(len(payloads))}
            for future in as_completed(futures):
                try:
                    replies[futures[future]] = future.result()
                except BaseException as error:
                    if first_error is None:
                        first_error = error
                        # Closing every socket unblocks threads still
                        # waiting on slower workers.
                        self._abort()
        if first_error is not None:
            if isinstance(first_error, DistribError):
                raise first_error
            raise DistribError(f"worker exchange failed: "
                               f"{first_error}") from first_error
        return [reply for reply in replies if reply is not None]

    # -- delta composition ---------------------------------------------------------------

    def sync_journal(self, journal) -> None:
        """Extend the spec history with a journal's unseen events."""
        events = getattr(journal, "events", None)
        if events is None:
            raise DistribError(
                "the socket backend needs the ChangeJournal itself (its "
                "events become wire specs); a pre-folded ChangeSet cannot "
                "be shipped to workers")
        for position, (seen, consumed) in enumerate(self._journals):
            if seen is journal:
                fresh = events[consumed:]
                self._journals[position] = (journal, len(events))
                break
        else:
            fresh = list(events)
            self._journals.append((journal, len(events)))
        self._specs.extend(event.to_spec() for event in fresh)

    # -- the sharded survey --------------------------------------------------------------

    def run_shards(self, indexed, popular, aggregator,
                   dirty: Sequence = ()) -> None:
        """Survey ``indexed`` entries across the workers and fold results.

        Mirrors ``_run_partitioned`` striping and the process backend's
        shard-order fold exactly, so results are byte-identical to the
        serial engine over the same (possibly delta-invalidated) world.
        """
        if self._closed:
            raise DistribError("coordinator already closed")
        shard_count = min(len(self._labels), max(len(indexed), 1))
        shards = [indexed[offset::shard_count]
                  for offset in range(shard_count)]
        dirty_names = sorted(str(name) for name in dirty)
        orders = []
        for shard in shards:
            orders.append(pack_work_order(
                [index for index, _entry in shard],
                [str(entry.name) for _index, entry in shard],
                [entry.name in popular for _index, entry in shard],
                self._specs, dirty_names))
        payloads = self._broadcast(FRAME_SURVEY, orders, FRAME_RESULT)

        engine = self._engine
        for position, payload in enumerate(payloads):
            label = self._labels[position]
            try:
                shard: ShardPayload = unpack_shard_result(
                    payload, label=f"worker {label} result")
            except SnapshotFormatError as error:
                self._abort()
                raise DistribError(
                    f"worker {label} returned an undecodable shard: "
                    f"{error}") from error
            for index, record in zip(shard.rows, shard.records):
                aggregator.add_record(index, record)
            aggregator.merge_maps(shard.fingerprints,
                                  shard.vulnerability_map,
                                  shard.compromisable_map)
            engine._root.fingerprinter.adopt(shard.fingerprints)
            engine._root.vulnerability_map.update(shard.vulnerability_map)
            engine._root.compromisable_map.update(shard.compromisable_map)

    # -- wire accounting / lifecycle -----------------------------------------------------

    def wire_stats(self) -> Dict[str, object]:
        """Bytes on the wire, total and per worker (for benchmarks)."""
        return {
            "workers": len(self._labels),
            "bytes_sent": sum(self.bytes_sent),
            "bytes_received": sum(self.bytes_received),
            "per_worker": [
                {"worker": label, "sent": sent, "received": received}
                for label, sent, received in zip(
                    self._labels, self.bytes_sent, self.bytes_received)],
        }

    def _abort(self) -> None:
        """Hard-close every connection (failure path)."""
        self._closed = True
        for position, connection in enumerate(self._sockets):
            if connection is not None:
                try:
                    connection.close()
                except OSError:
                    pass
                self._sockets[position] = None

    def close(self) -> None:
        """Politely shut workers down, then close the connections."""
        if self._closed:
            return
        self._closed = True
        for position, connection in enumerate(self._sockets):
            if connection is None:
                continue
            try:
                send_frame(connection, FRAME_SHUTDOWN)
                recv_frame(connection, timeout=2.0,
                           peer=f"worker {self._labels[position]}")
            except (WireError, OSError):
                pass
            try:
                connection.close()
            except OSError:
                pass
            self._sockets[position] = None

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalWorkerFleet:
    """Spawn N ``repro-dns worker`` subprocesses on loopback ports.

    The CLI's ``--backend socket --workers N`` convenience (and the tests
    and benchmarks) use this to simulate multi-host locally: each worker
    is a separate OS process with its own interpreter, world copy, and
    socket — exactly what a remote host would run, minus the network.
    """

    def __init__(self, count: int):
        if count < 1:
            raise DistribError("worker fleet needs at least one worker")
        self.count = count
        self.addresses: List[str] = []
        self._processes: List[subprocess.Popen] = []

    def start(self) -> List[str]:
        import repro
        source_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        environment = dict(os.environ)
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = source_root + (
            os.pathsep + existing if existing else "")
        for _ in range(self.count):
            self._processes.append(subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "worker",
                 "--listen", "127.0.0.1:0"],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                env=environment))
        for process in self._processes:
            line = process.stdout.readline().decode("utf-8",
                                                    "replace").strip()
            prefix = "listening on "
            if not line.startswith(prefix):
                stderr = b""
                if process.poll() is not None and process.stderr:
                    stderr = process.stderr.read() or b""
                self.stop()
                detail = stderr.decode("utf-8", "replace").strip()
                raise DistribError(
                    f"worker process failed to start "
                    f"(got {line!r}){': ' + detail if detail else ''}")
            self.addresses.append(line[len(prefix):])
        return list(self.addresses)

    def stop(self) -> None:
        for process in self._processes:
            if process.poll() is None:
                process.terminate()
        for process in self._processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            for stream in (process.stdout, process.stderr):
                if stream is not None:
                    stream.close()
        self._processes = []
        self.addresses = []

    def __enter__(self) -> "LocalWorkerFleet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
