"""A change journal for synthetic Internets: who changed what, when.

The paper's central observation is that a name's effective TCB *churns* as
zones change hands: a registry recruits a new off-site secondary, a
university decommissions a box, an operator upgrades (or fails to upgrade)
BIND.  The interesting workload is therefore *repeated* surveys of a slowly
mutating namespace — and re-surveying everything after every edit wastes
almost all of the work.

:class:`ChangeJournal` is the mutation boundary that makes incremental
re-survey possible: every supported world edit goes through a journal
method, which

1. applies the change consistently across the layers that encode it (zone
   apex NS RRSets, the parent zone's delegation + glue, the authoritative
   servers' zone attachments, the organisation registry, the network), and
2. records a :class:`ChangeEvent` capturing the before/after footprint.

:meth:`ChangeJournal.changes` folds the event log into a :class:`ChangeSet`
— the compact summary the survey engine's delta path consumes: which zones
were re-delegated (with their new canonical NS order), which zones were
newly cut, and which hosts were touched.  The engine maps that footprint
back to dirty directory names through the previous run's TCBs (every name
that depends on a zone holds that zone's nameservers in its TCB, because
the TCB is the transitive closure), re-surveys only those, and patches the
rest straight from the previous snapshot.

Supported mutations: zone NS-set edits (replace / add / remove one server),
cutting a brand-new zone out of an existing one, server addition and
decommissioning, software (banner) changes, region moves, and extending a
DNSSEC deployment.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.dns.name import DomainName, NameLike
from repro.dns.rdtypes import RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
# The one non-dns import: core.delegation is import-cycle-free from here
# (it pulls in only dns.* and core.graphcore), and sharing the constant
# keeps the journal's TCB-footprint reasoning aligned with the builder's
# exclusion list instead of drifting behind a hand-maintained copy.
from repro.core.delegation import DEFAULT_EXCLUDED_SUFFIXES

#: Hostname suffixes whose servers never enter TCBs.  Journals attached to
#: engines whose builders use a *custom* exclusion list must be given the
#: same list, or the dirty-all safety guard for footprint-free zone edits
#: cannot see which old nameservers left no TCB trace.
EXCLUDED_SUFFIXES: Tuple[str, ...] = DEFAULT_EXCLUDED_SUFFIXES


@dataclasses.dataclass
class ChangeEvent:
    """One journalled world mutation.

    ``touched_hosts`` is the event's TCB footprint: the hosts whose
    presence in a previous survey's TCB marks that name as needing
    re-survey.  For zone events it is the union of the zone's pre- and
    post-mutation nameserver sets — any name depending on the zone holds
    the *old* set in its TCB, which is what makes the mapping sound.
    """

    kind: str  # "zone-ns", "zone-created", "server-add", "server-remove",
               # "software", "region", "dnssec"
    zone: Optional[DomainName] = None
    hosts_before: Tuple[DomainName, ...] = ()
    hosts_after: Tuple[DomainName, ...] = ()
    touched_hosts: FrozenSet[DomainName] = frozenset()
    created_zone: bool = False
    details: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:
        subject = self.zone if self.zone is not None else \
            ",".join(str(h) for h in sorted(self.touched_hosts))
        return f"{self.kind}({subject})"

    def to_spec(self) -> str:
        """This event as a replayable CLI mutation spec.

        The distributed coordinator ships world mutations to its workers
        as spec strings; replaying a journal's events in order through
        :func:`apply_mutation_spec` on an identically-generated world
        reproduces the same world state *and* the same event sequence
        (a replayed ``remove-server`` finds its zones already
        re-delegated by the preceding ``set-ns`` events and journals only
        itself, exactly mirroring the original event log).
        """
        def safe(value: str) -> str:
            if ";" in value or value != value.strip():
                raise ValueError(
                    f"cannot encode {value!r} in a mutation spec")
            return value

        details = self.details
        if self.kind in ("zone-ns", "zone-created"):
            hosts = "+".join(safe(h) for h in details["nameservers"])
            return f"set-ns:zone={self.zone};ns={hosts}"
        if self.kind == "server-add":
            parts = [f"add-server:host={self.hosts_after[0]}"]
            if details.get("software") is not None:
                parts.append(f"software={safe(details['software'])}")
            region = details.get("region")
            if region is not None and region != "us":
                parts.append(f"region={safe(region)}")
            if details.get("organization") is not None:
                parts.append(f"org={safe(details['organization'])}")
            return ";".join(parts)
        if self.kind == "server-remove":
            return f"remove-server:host={self.hosts_before[0]}"
        if self.kind == "software":
            host = details.get("host") or \
                next(iter(sorted(self.touched_hosts)))
            spec = f"set-software:host={host}"
            after = details.get("after")
            return spec if after is None else \
                f"{spec};software={safe(after)}"
        if self.kind == "region":
            host = details.get("host") or \
                next(iter(sorted(self.touched_hosts)))
            return f"move-region:host={host};region={safe(details['after'])}"
        if self.kind == "dnssec":
            sign_tlds = "true" if details.get("sign_tlds", True) else "false"
            seed = safe(str(details.get("seed", "repro-dnssec")))
            return (f"dnssec:fraction={details['fraction']!r}"
                    f";sign_tlds={sign_tlds};seed={seed}")
        raise ValueError(f"event kind {self.kind!r} has no spec encoding")


@dataclasses.dataclass
class ChangeSet:
    """The folded footprint of a journal, consumed by the delta engine."""

    #: Re-delegated zones -> their final canonical NS order (the order a
    #: cold discovery's ``ZoneCut.nameservers`` would report: the parent
    #: delegation and apex sets are kept identical by the journal).
    edited_zones: Dict[DomainName, List[DomainName]]
    #: Zones newly cut out of an existing zone (names below them gained a
    #: delegation level).
    created_zones: Tuple[DomainName, ...]
    #: Zones whose *chain-local* state changed (newly DNSSEC-signed): only
    #: names below them are affected — chain-of-trust validation walks a
    #: name's own ancestor chain, never the transitive dependency web — so
    #: they dirty by ancestry instead of by TCB footprint.
    chain_zones: Tuple[DomainName, ...]
    #: Every host whose role or record set changed (see ChangeEvent).
    touched_hosts: FrozenSet[DomainName]
    #: Hosts whose ``version.bind`` banner changed: cached fingerprints and
    #: vulnerability verdicts for them are stale.
    refingerprint_hosts: FrozenSet[DomainName]
    #: Hostnames that did not exist before (negative resolver-cache entries
    #: for them are stale).
    added_names: FrozenSet[DomainName]
    #: DNSSEC deployments applied through the journal, in order.
    dnssec_deployments: Tuple[object, ...]
    #: True when an event's footprint cannot be mapped through previous
    #: TCBs (e.g. a re-delegated zone whose old NS set had no non-excluded
    #: member) — every name must then be treated as dirty.
    dirty_all: bool
    #: Per re-delegated zone, the NS set it held when the previous survey
    #: ran (the first in-window edit's before-set; created zones have no
    #: entry — ancestry covers them).  A name depends on the zone iff its
    #: previous TCB holds *every* non-excluded member, so the delta engine
    #: dirties by dependant-set intersection instead of unioning every
    #: name that merely shares one (possibly heavily co-hosted) server.
    zone_footprints: Dict[DomainName, Tuple[DomainName, ...]] = \
        dataclasses.field(default_factory=dict)
    #: Hosts whose dependants are individually dirty (software, region,
    #: and server-lifecycle events).  ``None`` means "not computed" — a
    #: hand-built ChangeSet — and makes the delta engine fall back to
    #: unioning over :attr:`touched_hosts`.
    host_footprints: Optional[FrozenSet[DomainName]] = None

    @property
    def empty(self) -> bool:
        """True if the journal recorded no effective change."""
        return not (self.edited_zones or self.created_zones or
                    self.chain_zones or self.touched_hosts or
                    self.refingerprint_hosts or self.added_names or
                    self.dnssec_deployments or self.dirty_all)

    @property
    def analyses_stale(self) -> bool:
        """True when cached vulnerability / signature verdicts are stale."""
        return bool(self.refingerprint_hosts or self.dnssec_deployments)


def zone_nameserver_union(internet, apex: NameLike) -> List[DomainName]:
    """A zone's effective NS union in discovery order.

    Mirrors :attr:`repro.dns.resolver.ZoneCut.nameservers`: the parent
    delegation's preferential order first, then apex-only extras.  Shared
    by the journal (re-delegation bookkeeping) and the churn model
    (server-death eligibility), so "which zones does this host serve"
    can never diverge between the two.
    """
    apex = DomainName(apex)
    zones = internet.zones
    zone = zones.get(apex)
    delegation = None
    for ancestor in apex.ancestors(include_self=False):
        parent = zones.get(ancestor)
        if parent is not None:
            delegation = parent.get_delegation(apex)
            break
    merged: List[DomainName] = []
    seen: Set[DomainName] = set()
    sources = []
    if delegation is not None:
        sources.append(delegation.nameservers)
    if zone is not None:
        sources.append(zone.apex_nameservers())
    for source in sources:
        for hostname in source:
            if hostname not in seen:
                seen.add(hostname)
                merged.append(hostname)
    return merged


class ChangeJournal:
    """Applies and records mutations to a :class:`SyntheticInternet`.

    All mutations are applied synchronously and keep the world internally
    consistent, so a cold survey of the mutated Internet is always
    well-defined — the delta engine's byte-identity contract is stated
    against exactly that cold run.
    """

    def __init__(self, internet,
                 excluded_suffixes: Sequence[str] = EXCLUDED_SUFFIXES):
        self.internet = internet
        self.events: List[ChangeEvent] = []
        self._excluded = tuple(DomainName(s) for s in excluded_suffixes)
        self._address_counter = 0

    def __len__(self) -> int:
        return len(self.events)

    # -- zone NS-set edits -----------------------------------------------------------

    def set_zone_nameservers(self, apex: NameLike,
                             nameservers: Sequence[NameLike]) -> ChangeEvent:
        """Re-delegate a zone: replace its NS set (parent + apex) wholesale.

        The given order becomes the zone's canonical nameserver order
        everywhere it is encoded — apex NS RRSet, parent delegation, glue —
        so a discovery walk's ``ZoneCut.nameservers`` reports exactly this
        list.  If the zone does not exist yet it is cut out of its
        enclosing zone: records and deeper delegations below the new apex
        move into it (see :meth:`Zone.extract_subtree`).
        """
        apex = DomainName(apex)
        if apex.is_root:
            raise ValueError("cannot re-delegate the root zone")
        internet = self.internet
        zone = internet.zones.get(apex)
        created = zone is None
        before = () if created else tuple(self._zone_ns_union(apex))
        ns_list = self._dedup(nameservers)
        if not ns_list:
            raise ValueError(f"zone {apex} needs at least one nameserver")

        if created:
            zone = Zone(apex)
            internet.zones[apex] = zone
            enclosing = self._enclosing_zone(apex)
            if enclosing is not None:
                rrsets, delegations = enclosing.extract_subtree(apex)
                for rrset in rrsets:
                    for record in rrset:
                        zone.add_record(record)
                for delegation in delegations:
                    zone.delegate(delegation.child, delegation.nameservers,
                                  glue={str(host): list(addresses)
                                        for host, addresses
                                        in delegation.glue.items()})

        zone.replace_apex_nameservers(ns_list)
        self._rewire_delegation(apex, ns_list)
        self._reattach_servers(zone, before, ns_list)

        event = ChangeEvent(
            kind="zone-created" if created else "zone-ns", zone=apex,
            hosts_before=before, hosts_after=tuple(ns_list),
            touched_hosts=frozenset(before) | frozenset(ns_list),
            created_zone=created,
            details={"nameservers": [str(h) for h in ns_list]})
        self.events.append(event)
        return event

    def add_zone_nameserver(self, apex: NameLike,
                            hostname: NameLike) -> ChangeEvent:
        """Append one nameserver to a zone's NS set (a new secondary)."""
        apex = DomainName(apex)
        hostname = DomainName(hostname)
        current = self._zone_ns_union(apex)
        if hostname not in current:
            current.append(hostname)
        return self.set_zone_nameservers(apex, current)

    def remove_zone_nameserver(self, apex: NameLike,
                               hostname: NameLike) -> ChangeEvent:
        """Drop one nameserver from a zone's NS set."""
        apex = DomainName(apex)
        hostname = DomainName(hostname)
        current = self._zone_ns_union(apex)
        if hostname not in current:
            raise ValueError(f"{hostname} does not serve {apex}")
        return self.set_zone_nameservers(
            apex, [host for host in current if host != hostname])

    # -- server lifecycle -------------------------------------------------------------

    def add_server(self, hostname: NameLike, software: Optional[str] = None,
                   region: str = "us",
                   organization: Optional[str] = None) -> ChangeEvent:
        """Bring a brand-new nameserver online (addressed and registered).

        The server is created with a deterministic address, registered on
        the network, given an A record in the deepest existing zone that
        covers its hostname, and attached to ``organization`` (by name; an
        existing organisation is reused, otherwise only the operator label
        is set).  It serves nothing until a zone edit references it.
        """
        hostname = DomainName(hostname)
        internet = self.internet
        if internet.servers.get(hostname) is not None:
            raise ValueError(f"server {hostname} already exists")
        address = self._allocate_address()
        operator = organization or "journal"
        server = AuthoritativeServer(hostname, addresses=[address],
                                     software=software, operator=operator,
                                     region=region)
        internet.servers[hostname] = server
        internet.network.register_server(server)
        organizations = getattr(internet, "organizations", None)
        if organizations is not None and organization is not None:
            existing = organizations.by_name(organization)
            if existing is not None:
                existing.add_nameserver(hostname)
                organizations.index_nameserver(hostname, existing)
                server.region = existing.region if region == "us" else region
        home = self._enclosing_zone(hostname)
        if home is not None:
            home.add(hostname, RRType.A, address)
        # The hostname is the event's own footprint: normally no previous
        # TCB contains a brand-new server, but a zone that listed this
        # hostname as a ghost NS (lame delegation) put it into TCBs, and
        # every such name's fingerprint verdict changes when the server
        # comes online.
        event = ChangeEvent(kind="server-add", hosts_after=(hostname,),
                            touched_hosts=frozenset((hostname,)),
                            details={"address": address,
                                     "software": software,
                                     "region": region,
                                     "organization": organization})
        self.events.append(event)
        return event

    def remove_server(self, hostname: NameLike) -> ChangeEvent:
        """Decommission a server: every zone listing it is re-delegated.

        The server object stays registered (decommissioning does not
        un-route its address), but after this no delegation or apex NS set
        references it, so no resolution path reaches it.
        """
        hostname = DomainName(hostname)
        internet = self.internet
        if internet.servers.get(hostname) is None:
            raise ValueError(f"unknown server {hostname}")
        serving = [apex for apex in internet.zones
                   if hostname in self._zone_ns_union(apex)]
        # Validate before mutating anything: a rejected decommission must
        # not leave the world half re-delegated.
        orphaned = [apex for apex in serving
                    if len(self._zone_ns_union(apex)) == 1]
        if orphaned:
            raise ValueError(
                f"cannot remove {hostname}: it is the only nameserver "
                f"of {sorted(orphaned)[0]}")
        for apex in serving:
            remaining = [host for host in self._zone_ns_union(apex)
                         if host != hostname]
            self.set_zone_nameservers(apex, remaining)
        organizations = getattr(internet, "organizations", None)
        if organizations is not None:
            organizations.forget_nameserver(hostname)
        event = ChangeEvent(kind="server-remove", hosts_before=(hostname,),
                            touched_hosts=frozenset((hostname,)),
                            details={"zones": [str(a) for a in serving]})
        self.events.append(event)
        return event

    def set_server_software(self, hostname: NameLike,
                            software: Optional[str]) -> ChangeEvent:
        """Change a server's ``version.bind`` banner (upgrade / downgrade)."""
        hostname = DomainName(hostname)
        server = self.internet.servers.get(hostname)
        if server is None:
            raise ValueError(f"unknown server {hostname}")
        before = server.software
        server.software = software
        event = ChangeEvent(kind="software",
                            touched_hosts=frozenset((hostname,)),
                            details={"host": str(hostname),
                                     "before": before, "after": software})
        self.events.append(event)
        return event

    def move_server_region(self, hostname: NameLike,
                           region: str) -> ChangeEvent:
        """Move a server to another geographic region."""
        hostname = DomainName(hostname)
        server = self.internet.servers.get(hostname)
        if server is None:
            raise ValueError(f"unknown server {hostname}")
        before = server.region
        server.region = region
        event = ChangeEvent(kind="region",
                            touched_hosts=frozenset((hostname,)),
                            details={"host": str(hostname),
                                     "before": before, "after": region})
        self.events.append(event)
        return event

    # -- DNSSEC ------------------------------------------------------------------------

    def deploy_dnssec(self, fraction: float = 1.0,
                      always_sign_tlds: bool = True,
                      seed: str = "repro-dnssec") -> ChangeEvent:
        """Extend the world's DNSSEC deployment to ``fraction``.

        Signing is additive; with the same ``seed`` a larger fraction signs
        a superset of a smaller one, so this models deployment *progress*
        (see :func:`repro.core.dnssec_impact.deploy_dnssec`, which rejects
        shrinking).  The event's footprint is the set of newly signed
        zones, mapped by *ancestry*: chain-of-trust validation only reads a
        name's own ancestor chain, so exactly the names below a newly
        signed apex can change verdict.
        """
        # Imported lazily: the topology layer must not depend on the core
        # survey machinery at module load time.
        from repro.core.dnssec_impact import deploy_dnssec
        internet = self.internet
        before = self._signed_zones()
        deployment = deploy_dnssec(internet, fraction=fraction,
                                   always_sign_tlds=always_sign_tlds,
                                   seed=seed)
        newly_signed = sorted(self._signed_zones() - before)
        event = ChangeEvent(
            kind="dnssec",
            details={"deployment": deployment,
                     "fraction": fraction,
                     "sign_tlds": always_sign_tlds,
                     "seed": seed,
                     "newly_signed": newly_signed})
        self.events.append(event)
        return event

    # -- folding -----------------------------------------------------------------------

    def changes(self, since: int = 0) -> ChangeSet:
        """Fold the event log (from event index ``since``) into a ChangeSet.

        ``since`` supports replay workflows: a caller that re-applied
        already-surveyed mutations to rebuild world state (the CLI's
        sidecar journal) folds only the events *after* the replay, so the
        dirty set stays proportional to the new changes instead of the
        whole history.  DNSSEC deployments are the one exception — they
        are cumulative world state a deployment-tracking pass must adopt
        in full for its metadata to match a cold engine, so the whole
        chain is always included (adoption is idempotent; the dirty
        mapping still uses only the new events' ``newly_signed`` zones).
        """
        edited: Dict[DomainName, List[DomainName]] = {}
        created: List[DomainName] = []
        chain_zones: List[DomainName] = []
        touched: Set[DomainName] = set()
        refingerprint: Set[DomainName] = set()
        added: Set[DomainName] = set()
        deployments: List[object] = []
        footprints: Dict[DomainName, Tuple[DomainName, ...]] = {}
        host_dirty: Set[DomainName] = set()
        dirty_all = False
        for index, event in enumerate(self.events):
            if event.kind == "dnssec":
                deployments.append(event.details["deployment"])
                if index >= since:
                    chain_zones.extend(event.details["newly_signed"])
                continue
            if index < since:
                continue
            touched.update(event.touched_hosts)
            if event.kind in ("zone-ns", "zone-created"):
                edited[event.zone] = list(event.hosts_after)
                if event.created_zone and event.zone not in created:
                    created.append(event.zone)
                if not event.created_zone and event.zone not in created \
                        and event.zone not in footprints:
                    # The first in-window edit's before-set is what the
                    # previous survey's TCBs reflect: a name depends on
                    # the zone iff it holds every countable member, so
                    # this set is the zone's precise dirty footprint.
                    # (Later edits see intermediate states no TCB holds;
                    # zones created in-window dirty by ancestry instead.)
                    footprints[event.zone] = tuple(event.hosts_before)
                if not event.created_zone and \
                        not self._has_countable_host(event.hosts_before):
                    # The old NS set leaves no trace in any TCB, so the
                    # event's footprint cannot be mapped to names.
                    dirty_all = True
            elif event.kind == "software":
                refingerprint.update(event.touched_hosts)
                host_dirty.update(event.touched_hosts)
            elif event.kind == "server-add":
                added.update(event.hosts_after)
                # A ghost NS coming online flips its fingerprint from
                # unreachable to a live banner; cached verdicts are stale.
                refingerprint.update(event.hosts_after)
                host_dirty.update(event.touched_hosts)
            else:  # server-remove, region, future host-scoped kinds
                host_dirty.update(event.touched_hosts)
        return ChangeSet(edited_zones=edited, created_zones=tuple(created),
                         chain_zones=tuple(chain_zones),
                         touched_hosts=frozenset(touched),
                         refingerprint_hosts=frozenset(refingerprint),
                         added_names=frozenset(added),
                         dnssec_deployments=tuple(deployments),
                         dirty_all=dirty_all,
                         zone_footprints=footprints,
                         host_footprints=frozenset(host_dirty))

    # -- internals ---------------------------------------------------------------------

    @staticmethod
    def _dedup(nameservers: Sequence[NameLike]) -> List[DomainName]:
        seen: Set[DomainName] = set()
        out: List[DomainName] = []
        for hostname in nameservers:
            hostname = DomainName(hostname)
            if hostname not in seen:
                seen.add(hostname)
                out.append(hostname)
        return out

    def _is_excluded(self, hostname: DomainName) -> bool:
        return any(hostname.is_subdomain_of(suffix)
                   for suffix in self._excluded)

    def _has_countable_host(self, hosts: Sequence[DomainName]) -> bool:
        return any(not self._is_excluded(host) for host in hosts)

    def _allocate_address(self) -> str:
        """A deterministic benchmark-range address unused by any server.

        Checked against every address already registered on the world, so
        consecutive journals over one internet (the carried-engine
        re-survey chaining pattern) never hand two servers the same
        address — the network routes by address and would silently
        deliver the first server's queries to the second.
        """
        used = {address for server in self.internet.servers.values()
                for address in server.addresses}
        while True:
            self._address_counter += 1
            index = self._address_counter
            address = f"198.18.{index // 250}.{index % 250 + 1}"
            if address not in used:
                return address

    def _signed_zones(self) -> Set[DomainName]:
        """Apexes currently carrying a DNSKEY RRSet."""
        return {apex for apex, zone in self.internet.zones.items()
                if zone.get_rrset(apex, RRType.DNSKEY) is not None}

    def _enclosing_zone(self, name: DomainName) -> Optional[Zone]:
        """The deepest existing zone strictly above ``name``."""
        zones = self.internet.zones
        for ancestor in name.ancestors(include_self=False):
            zone = zones.get(ancestor)
            if zone is not None:
                return zone
        return None

    def _parent_delegation(self, apex: DomainName):
        """(parent zone, delegation) currently covering ``apex``, if any."""
        parent = self._enclosing_zone(apex)
        if parent is None:
            return None, None
        return parent, parent.get_delegation(apex)

    def _zone_ns_union(self, apex: NameLike) -> List[DomainName]:
        """The zone's NS union in discovery order (parent set, then apex)."""
        return zone_nameserver_union(self.internet, apex)

    def _glue_for(self, nameservers: Sequence[DomainName]
                  ) -> Dict[DomainName, List[str]]:
        """Glue addresses for every listed server the world knows."""
        glue: Dict[DomainName, List[str]] = {}
        servers = self.internet.servers
        for hostname in nameservers:
            server = servers.get(hostname)
            if server is not None and server.addresses:
                glue[hostname] = list(server.addresses)
        return glue

    def _rewire_delegation(self, apex: DomainName,
                           ns_list: List[DomainName]) -> None:
        """Point the parent-side delegation for ``apex`` at ``ns_list``."""
        parent, delegation = self._parent_delegation(apex)
        if parent is None:
            return
        glue = self._glue_for(ns_list)
        if delegation is None:
            parent.delegate(apex, ns_list,
                            glue={str(host): addresses
                                  for host, addresses in glue.items()})
        else:
            delegation.set_nameservers(ns_list, glue=glue)

    def _reattach_servers(self, zone: Zone, before: Sequence[DomainName],
                          after: Sequence[DomainName]) -> None:
        """Attach/detach authoritative servers to match the new NS set."""
        servers = self.internet.servers
        after_set = set(after)
        for hostname in before:
            if hostname not in after_set:
                server = servers.get(hostname)
                if server is not None:
                    server.remove_zone(zone.apex)
        for hostname in after:
            server = servers.get(hostname)
            if server is not None:
                server.add_zone(zone)


# -- CLI mutation specs ---------------------------------------------------------------

def apply_mutation_spec(journal: ChangeJournal, spec: str) -> ChangeEvent:
    """Apply one CLI-style mutation spec to a journal.

    Specs follow the pass-spec grammar ``kind:key=value[;key=value...]``:

    * ``set-ns:zone=Z;ns=H1+H2+...`` — re-delegate ``Z`` to the listed hosts
    * ``add-ns:zone=Z;ns=H`` / ``drop-ns:zone=Z;ns=H``
    * ``add-server:host=H[;software=BANNER][;region=R][;org=NAME]``
    * ``remove-server:host=H``
    * ``set-software:host=H[;software=BANNER]`` (omitted banner = hidden)
    * ``move-region:host=H;region=R``
    * ``dnssec:fraction=F[;sign_tlds=BOOL][;seed=S]``
    """
    text = spec.strip()
    kind, _, option_text = text.partition(":")
    kind = kind.strip()
    options: Dict[str, str] = {}
    if option_text:
        for item in option_text.split(";"):
            item = item.strip()
            if not item:
                continue
            key, separator, value = item.partition("=")
            if not separator:
                raise ValueError(f"malformed option {item!r} in mutation "
                                 f"spec {text!r} (expected key=value)")
            options[key.strip()] = value.strip()

    def need(key: str) -> str:
        if key not in options:
            raise ValueError(f"mutation {kind!r} needs {key}=...")
        return options.pop(key)

    def finish(event: ChangeEvent) -> ChangeEvent:
        if options:
            raise ValueError(f"unknown option(s) {sorted(options)} for "
                             f"mutation {kind!r}")
        return event

    if kind == "set-ns":
        zone = need("zone")
        hosts = [h for h in need("ns").split("+") if h]
        return finish(journal.set_zone_nameservers(zone, hosts))
    if kind == "add-ns":
        return finish(journal.add_zone_nameserver(need("zone"), need("ns")))
    if kind == "drop-ns":
        return finish(journal.remove_zone_nameserver(need("zone"),
                                                     need("ns")))
    if kind == "add-server":
        host = need("host")
        return finish(journal.add_server(
            host, software=options.pop("software", None),
            region=options.pop("region", "us"),
            organization=options.pop("org", None)))
    if kind == "remove-server":
        return finish(journal.remove_server(need("host")))
    if kind == "set-software":
        return finish(journal.set_server_software(
            need("host"), options.pop("software", None)))
    if kind == "move-region":
        return finish(journal.move_server_region(need("host"),
                                                 need("region")))
    if kind == "dnssec":
        fraction = float(need("fraction"))
        sign_tlds = options.pop("sign_tlds", "true").lower() in \
            ("1", "true", "yes", "on")
        seed = options.pop("seed", "repro-dnssec")
        return finish(journal.deploy_dnssec(fraction=fraction,
                                            always_sign_tlds=sign_tlds,
                                            seed=seed))
    raise ValueError(
        f"unknown mutation kind {kind!r} (expected one of set-ns, add-ns, "
        f"drop-ns, add-server, remove-server, set-software, move-region, "
        f"dnssec)")
