#!/usr/bin/env python
"""Audit a country's namespace: how exposed are names under a ccTLD?

Section 3.1 of the paper singles out ccTLDs — Ukraine, Belarus, San Marino,
Malta, Malaysia, Poland, Italy — whose registries delegate to far-flung
off-site secondaries, so every name under them depends on hundreds of
servers scattered around the world (www.rkc.lviv.ua being the worst case).

This example plays the role of a national CERT auditing its own TLD:

* compare the mean TCB of names under the audited ccTLD against com/net;
* list the foreign organisations and regions the TLD transitively trusts;
* count how many of the TLD's names could be completely hijacked today;
* show what happens to resolution if the foreign secondaries become
  unreachable (the availability half of the paper's dilemma), with the
  per-name availability computed by the engine's ``availability`` pass
  during the survey itself.

Run with::

    python examples/cctld_audit.py                      # audits .ua
    python examples/cctld_audit.py --tld by             # another ccTLD
    python examples/cctld_audit.py --backend thread --workers 4
"""

from __future__ import annotations

import argparse
import collections

from repro import GeneratorConfig, InternetGenerator, Survey
from repro.cli import ProgressPrinter
from repro.core.engine import BACKENDS
from repro.core.report import format_table
from repro.netsim.failures import FailureInjector, FailureScenario
from repro.topology.anecdotes import LVIV_WEB_NAME


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tld", default="ua",
                        help="country-code TLD to audit (default: ua)")
    parser.add_argument("--seed", type=int, default=20040722)
    parser.add_argument("--backend", default="serial", choices=BACKENDS,
                        help="survey execution backend")
    parser.add_argument("--workers", type=int, default=2,
                        help="shard count for the partitioned backends")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    tld = args.tld.lower()

    print(f"Auditing the .{tld} namespace ({args.backend} backend) ...")
    config = GeneratorConfig(seed=args.seed, sld_count=600,
                             directory_name_count=950, university_count=90,
                             hosting_provider_count=20, isp_count=16,
                             alexa_count=150)
    internet = InternetGenerator(config).generate()
    survey = Survey(internet, popular_count=150, backend=args.backend,
                    workers=args.workers,
                    passes=("availability:up=0.95",))
    results = survey.run(progress=ProgressPrinter())

    audited = [record for record in results.resolved_records()
               if record.tld == tld]
    if not audited:
        print(f"No surveyed names under .{tld}; try a larger survey or a "
              f"different TLD.")
        return
    baseline = [record for record in results.resolved_records()
                if record.tld in ("com", "net")]

    print(f"\n[1] Exposure of .{tld} names versus com/net")
    mean_audited = sum(r.tcb_size for r in audited) / len(audited)
    mean_baseline = sum(r.tcb_size for r in baseline) / len(baseline)
    rows = [
        (f".{tld} names surveyed", len(audited)),
        (f"mean TCB (.{tld})", f"{mean_audited:.1f}"),
        ("mean TCB (com/net)", f"{mean_baseline:.1f}"),
        ("exposure ratio", f"{mean_audited / mean_baseline:.1f}x"),
        (f"completely hijackable (.{tld})",
         f"{sum(1 for r in audited if r.completely_hijackable)}"),
        (f"with a vulnerable dependency (.{tld})",
         f"{sum(1 for r in audited if r.vulnerable_in_tcb > 0)}"),
    ]
    print(format_table(rows, headers=("metric", "value")))

    print(f"\n[2] Who does .{tld} transitively trust?")
    operators = collections.Counter()
    regions = collections.Counter()
    tcb_union = set()
    for record in audited:
        tcb_union |= record.tcb_servers
    for hostname in tcb_union:
        org = internet.organizations.operator_of(hostname)
        server = internet.server(hostname)
        if org is not None:
            operators[org.kind.value] += 1
        if server is not None:
            regions[server.region] += 1
    print(format_table(sorted(operators.items(), key=lambda kv: -kv[1]),
                       headers=("operator kind", "servers in closure")))
    print()
    print(format_table(sorted(regions.items(), key=lambda kv: -kv[1]),
                       headers=("region", "servers in closure")))

    worst = max(audited, key=lambda record: record.tcb_size)
    print(f"\n[3] Most exposed name under .{tld}: {worst.name} "
          f"(TCB of {worst.tcb_size} servers, "
          f"{worst.vulnerable_in_tcb} vulnerable)")
    if tld == "ua" and results.record_for(LVIV_WEB_NAME) is not None:
        lviv = results.record_for(LVIV_WEB_NAME)
        print(f"    (the paper's worst case, {LVIV_WEB_NAME}, depends on "
              f"{lviv.tcb_size} servers here)")

    print(f"\n[4] Availability: the other half of the dilemma")
    mean_avail = sum(r.extras["availability"] for r in audited) / len(audited)
    spof_names = sum(1 for r in audited if r.extras["availability_spof"])
    print(f"    mean resolution probability (95% per-server uptime): "
          f"{mean_avail:.4f}")
    print(f"    names with a single point of failure: "
          f"{spof_names}/{len(audited)}")

    foreign = {hostname for hostname in tcb_union
               if (internet.server(hostname) is not None and
                   internet.server(hostname).region not in ("eu",))
               and not hostname.is_subdomain_of(tld)}
    injector = FailureInjector(internet.network)
    injector.apply(FailureScenario(name="foreign-outage",
                                   failed_servers=foreign))
    resolver = internet.make_resolver()
    survivors = 0
    for record in audited[:40]:
        if resolver.resolve(record.name).succeeded:
            survivors += 1
    injector.revert()
    print(f"    with {len(foreign)} foreign servers unreachable, "
          f"{survivors}/{min(40, len(audited))} audited names still resolve")
    print("\nThe dilemma: those foreign secondaries provide availability, "
          "but every one of them is also a place the namespace can be "
          "hijacked from.")


if __name__ == "__main__":
    main()
