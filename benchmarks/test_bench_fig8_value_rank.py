"""Figure 8: number of names controlled by each nameserver, by rank.

Paper: the average nameserver is involved in resolving 166 externally
visible names but the median is only 4; about 125 servers each control more
than 10 % of all surveyed names, roughly 30 of them gTLD infrastructure and
about 12 of them carrying known vulnerabilities.
"""

from conftest import PAPER, comparison_rows
from repro.core.report import rank_series


def test_fig8_names_controlled_by_rank(benchmark, paper_survey,
                                       figure_writer):
    analyzer = benchmark(paper_survey.value_analyzer)
    summary = analyzer.summary()
    ranking = analyzer.ranking()
    vulnerable_ranking = analyzer.ranking(only_vulnerable=True)
    series = rank_series(analyzer.counts())

    measured = {
        "mean_names_controlled": summary["mean_names_controlled"],
        "median_names_controlled": summary["median_names_controlled"],
        "high_leverage_servers": summary["high_leverage_servers"],
        "high_leverage_vulnerable": summary["high_leverage_vulnerable"],
    }
    lines = comparison_rows(measured, list(measured))
    lines.append("")
    lines.append("rank -> names controlled (all servers / vulnerable servers)")
    vulnerable_series = rank_series(
        {value.hostname: value.names_controlled
         for value in vulnerable_ranking})
    for rank in (1, 2, 5, 10, 25, 50, 100, 250):
        all_value = series[rank - 1][1] if rank <= len(series) else "-"
        vuln_value = (vulnerable_series[rank - 1][1]
                      if rank <= len(vulnerable_series) else "-")
        lines.append(f"  rank {rank:<4d} all={all_value:>8}  "
                     f"vulnerable={vuln_value:>8}")
    lines.append("")
    lines.append("top five most valuable servers:")
    for value in ranking[:5]:
        lines.append(f"  {value.hostname} controls {value.names_controlled} "
                     f"names (vulnerable={value.vulnerable})")
    figure_writer.write("figure8_value_rank",
                        "Figure 8: names controlled by nameservers", lines)

    # Shape: extreme skew between mean and median; a small core of servers
    # controls a disproportionate share of the namespace; some of the
    # high-leverage servers are vulnerable.
    total_names = len(paper_survey.resolved_records())
    assert summary["mean_names_controlled"] > \
        5 * summary["median_names_controlled"]
    assert 0 < summary["high_leverage_servers"] < 0.2 * summary["servers"]
    assert ranking[0].names_controlled > 0.5 * total_names
    assert summary["high_leverage_vulnerable"] >= 1
    assert summary["high_leverage_vulnerable"] < \
        summary["high_leverage_servers"]
    # The rank-size series spans orders of magnitude (log-log straightish).
    assert series[0][1] > 50 * series[len(series) // 2][1]
