"""Exception hierarchy for the DNS substrate.

All exceptions raised by :mod:`repro.dns` derive from :class:`DNSError`, so
callers can catch a single base class.  The hierarchy mirrors the failure
modes of real DNS resolution: malformed names, non-existent domains
(NXDOMAIN), server failures (SERVFAIL / unreachable), and resolution dead
ends (delegation loops, missing glue that cannot be chased, exceeded work
budgets).
"""

from __future__ import annotations


class DNSError(Exception):
    """Base class for all errors raised by the DNS substrate."""


class NameError_(DNSError):
    """A domain name is syntactically invalid.

    The trailing underscore avoids shadowing the Python built-in
    :class:`NameError` while keeping the DNS terminology.
    """


class ZoneError(DNSError):
    """A zone is malformed or an operation on it is inconsistent.

    Examples: adding a record whose owner name is outside the zone, declaring
    a delegation for a name that is not a proper subdomain of the zone apex,
    or serving a zone with no NS records at its apex.
    """


class NoSuchDomainError(DNSError):
    """The queried name does not exist (NXDOMAIN)."""

    def __init__(self, name, message: str = ""):
        self.name = name
        super().__init__(message or f"no such domain: {name}")


class ServerFailureError(DNSError):
    """A nameserver could not answer (SERVFAIL, timeout, or host down)."""

    def __init__(self, server: str, message: str = ""):
        self.server = server
        super().__init__(message or f"server failure: {server}")


class ResolutionError(DNSError):
    """Resolution could not complete.

    Raised for delegation loops, orphaned delegations whose nameserver
    addresses cannot be found, or when the resolver's work budget (maximum
    number of queries / recursion depth) is exhausted.
    """


class CacheError(DNSError):
    """An internal error in the resolver cache."""
