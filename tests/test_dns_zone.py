"""Tests for :mod:`repro.dns.zone`."""

import pytest

from repro.dns.errors import ZoneError
from repro.dns.name import DomainName
from repro.dns.rdtypes import RRType
from repro.dns.records import ResourceRecord, SOAData
from repro.dns.zone import Delegation, Zone


def make_zone() -> Zone:
    zone = Zone("example.com")
    zone.set_apex_nameservers(["ns1.example.com", "ns2.example.com"])
    zone.add("ns1.example.com", RRType.A, "10.0.0.1")
    zone.add("ns2.example.com", RRType.A, "10.0.0.2")
    zone.add("www.example.com", RRType.A, "10.0.0.80")
    return zone


# -- basic record management -----------------------------------------------------

def test_zone_synthesises_soa():
    zone = Zone("example.com")
    assert zone.soa is not None
    assert zone.soa.mname == DomainName("ns1.example.com")


def test_zone_accepts_explicit_soa():
    soa = SOAData(mname=DomainName("master.example.com"),
                  rname=DomainName("admin.example.com"), serial=7)
    zone = Zone("example.com", soa=soa)
    assert zone.soa.serial == 7


def test_add_and_get_rrset():
    zone = make_zone()
    rrset = zone.get_rrset("www.example.com", RRType.A)
    assert rrset is not None
    assert rrset.addresses() == ["10.0.0.80"]
    assert zone.get_rrset("www.example.com", "a") is rrset


def test_add_record_outside_zone_rejected():
    zone = Zone("example.com")
    with pytest.raises(ZoneError):
        zone.add("www.other.com", RRType.A, "10.0.0.1")


def test_has_name_and_counts():
    zone = make_zone()
    assert zone.has_name("www.example.com")
    assert not zone.has_name("missing.example.com")
    # SOA + 2 apex NS + 3 A records
    assert zone.record_count() == 6
    assert len(list(zone.iter_records())) == zone.record_count()
    assert len(list(zone.iter_rrsets())) == 5


def test_apex_nameservers_in_order():
    zone = make_zone()
    assert zone.apex_nameservers() == [DomainName("ns1.example.com"),
                                       DomainName("ns2.example.com")]


# -- delegations -------------------------------------------------------------------

def test_delegate_and_find_covering_delegation():
    zone = make_zone()
    zone.delegate("sub.example.com", ["ns1.sub.example.com"],
                  glue={"ns1.sub.example.com": ["10.1.0.1"]})
    delegation = zone.get_delegation("sub.example.com")
    assert delegation is not None
    assert delegation.nameservers == [DomainName("ns1.sub.example.com")]
    covering = zone.find_covering_delegation("deep.host.sub.example.com")
    assert covering is delegation
    assert zone.find_covering_delegation("www.example.com") is None


def test_deepest_delegation_wins():
    zone = make_zone()
    zone.delegate("sub.example.com", ["ns1.other.net"])
    zone.delegate("deep.sub.example.com", ["ns2.other.net"])
    covering = zone.find_covering_delegation("www.deep.sub.example.com")
    assert covering.child == DomainName("deep.sub.example.com")


def test_delegate_requires_proper_subdomain():
    zone = make_zone()
    with pytest.raises(ZoneError):
        zone.delegate("example.com", ["ns1.example.com"])
    with pytest.raises(ZoneError):
        zone.delegate("other.com", ["ns1.example.com"])


def test_delegation_merges_nameservers_and_glue():
    zone = make_zone()
    zone.delegate("sub.example.com", ["ns1.sub.example.com"])
    zone.delegate("sub.example.com", ["ns2.sub.example.com"],
                  glue={"ns2.sub.example.com": ["10.1.0.2"]})
    delegation = zone.get_delegation("sub.example.com")
    assert len(delegation.nameservers) == 2
    assert delegation.glue[DomainName("ns2.sub.example.com")] == ["10.1.0.2"]


def test_is_authoritative_for_respects_zone_cuts():
    zone = make_zone()
    zone.delegate("sub.example.com", ["ns1.other.net"])
    assert zone.is_authoritative_for("www.example.com")
    assert not zone.is_authoritative_for("www.sub.example.com")
    assert not zone.is_authoritative_for("www.other.com")


def test_delegation_records_for_referral():
    delegation = Delegation(child=DomainName("sub.example.com"))
    delegation.add_nameserver("ns1.sub.example.com", ["10.1.0.1", "10.1.0.2"])
    delegation.add_nameserver("ns2.offsite.net")
    ns_records = delegation.ns_records()
    assert all(r.rtype is RRType.NS for r in ns_records)
    assert len(ns_records) == 2
    glue_records = delegation.glue_records()
    assert {str(r.rdata) for r in glue_records} == {"10.1.0.1", "10.1.0.2"}


def test_delegation_offsite_nameservers():
    delegation = Delegation(child=DomainName("sub.example.com"))
    delegation.add_nameserver("ns1.sub.example.com")
    delegation.add_nameserver("ns2.offsite.net")
    assert delegation.offsite_nameservers() == [DomainName("ns2.offsite.net")]


def test_duplicate_nameserver_not_added_twice():
    delegation = Delegation(child=DomainName("sub.example.com"))
    delegation.add_nameserver("ns1.sub.example.com")
    delegation.add_nameserver("ns1.sub.example.com", ["10.1.0.1"])
    assert len(delegation.nameservers) == 1
    assert delegation.glue[DomainName("ns1.sub.example.com")] == ["10.1.0.1"]


# -- validation -----------------------------------------------------------------------

def test_validate_clean_zone():
    zone = make_zone()
    assert zone.validate() == []


def test_validate_flags_missing_apex_ns():
    zone = Zone("example.com")
    problems = zone.validate()
    assert any("no apex NS" in problem for problem in problems)


def test_validate_flags_missing_glue():
    zone = make_zone()
    zone.delegate("sub.example.com", ["ns1.sub.example.com"])
    problems = zone.validate()
    assert any("needs glue" in problem for problem in problems)


def test_validate_accepts_offsite_delegation_without_glue():
    zone = make_zone()
    zone.delegate("sub.example.com", ["ns1.elsewhere.net"])
    assert zone.validate() == []


def test_repr_mentions_counts():
    zone = make_zone()
    text = repr(zone)
    assert "example.com" in text
    assert "records" in text
