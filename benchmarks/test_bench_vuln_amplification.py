"""Section 3.2 headline: 17 % vulnerable servers affect 45 % of names.

Paper: of 166,771 nameservers, 27,141 (17 %) have known vulnerabilities; a
naive expectation would be that 17 % of names are affected, but transitive
trust "poisons every path through an insecure nameserver" and 264,599 names
(45 %) are affected.
"""

from conftest import PAPER, comparison_rows


def _amplification(survey):
    server_fraction = survey.vulnerable_server_fraction()
    name_fraction = survey.fraction_with_vulnerable_dependency()
    return {
        "vulnerable_server_fraction": server_fraction,
        "fraction_names_with_vulnerable_dependency": name_fraction,
        "amplification_factor": (name_fraction / server_fraction
                                 if server_fraction else 0.0),
    }


def test_vulnerability_amplification(benchmark, paper_survey, figure_writer):
    measured = benchmark(lambda: _amplification(paper_survey))

    paper_amplification = (PAPER["fraction_names_with_vulnerable_dependency"] /
                           PAPER["vulnerable_server_fraction"])
    lines = comparison_rows(measured, [
        "vulnerable_server_fraction",
        "fraction_names_with_vulnerable_dependency"])
    lines.append(f"{'amplification_factor':45s} "
                 f"paper={paper_amplification:>12.3f}  "
                 f"measured={measured['amplification_factor']:>12.3f}")
    lines.append("")
    lines.append("(naive expectation: amplification factor = 1.0)")
    figure_writer.write("section32_amplification",
                        "Section 3.2: vulnerability amplification", lines)

    assert 0.10 <= measured["vulnerable_server_fraction"] <= 0.35
    assert measured["amplification_factor"] > 1.5
    assert measured["fraction_names_with_vulnerable_dependency"] <= 0.95


def test_complete_hijack_needs_few_machines(paper_survey, figure_writer):
    """Paper: names with a fully-vulnerable min-cut can be taken over by
    compromising fewer than three machines on average."""
    resolved = [record for record in paper_survey.resolved_records()
                if record.completely_hijackable]
    assert resolved, "some names must be completely hijackable"
    mean_cut = sum(record.mincut_size for record in resolved) / len(resolved)
    lines = [
        f"completely hijackable names: {len(resolved)} "
        f"({len(resolved) / len(paper_survey.resolved_records()):.1%})",
        f"mean machines to compromise: {mean_cut:.2f} (paper: < 3)",
    ]
    figure_writer.write("section32_complete_hijack",
                        "Section 3.2: machines needed for a complete hijack",
                        lines)
    assert mean_cut < 4.0
