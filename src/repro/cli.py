"""Command-line interface: generate a synthetic Internet, survey it, report.

The CLI mirrors how the paper's results would be reproduced from a shell::

    repro-dns survey --sld-count 800 --output snapshot.json
    repro-dns survey --backend process --workers 4 \\
        --passes availability,dnssec --output signed.json
    repro-dns report snapshot.json
    repro-dns diff snapshot.json signed.json
    repro-dns inspect www.fbi.gov --sld-count 400

Subcommands
-----------
``survey``
    Generate a synthetic Internet, run the full survey (optionally with
    extra analysis passes on any execution backend), print the headline
    statistics, and optionally write a snapshot — JSON by default
    (``--compress`` for zlib), or the columnar binary REPRO-SNAP store
    with ``--format binary``.  Every command that reads a snapshot sniffs
    the codec from the file's leading bytes, so formats mix freely.
``report``
    Re-print the headline statistics and per-figure summaries from a snapshot
    produced by ``survey``.
``diff``
    Compare two snapshots name by name: TCB size, classification, and
    pass-column (availability / DNSSEC) churn.
``resurvey``
    Incremental re-survey: regenerate the snapshot's synthetic Internet,
    apply ``--mutate`` world changes through a change journal, and re-survey
    only the names the changes invalidated — patching everything else from
    the previous snapshot.  The output snapshot is byte-identical to a cold
    full survey of the mutated world.  Alongside each ``--output`` snapshot
    a ``<output>.journal`` sidecar records the applied mutation specs, and
    a later ``resurvey`` of that snapshot replays them first, so chained
    incremental runs keep seeing the correctly re-mutated world::

        repro-dns resurvey prev.json \\
            --mutate 'set-ns:zone=site1.com;ns=ns1.webhost2.com' \\
            --mutate 'set-software:host=dns1.univ3.edu;software=BIND 8.2.2' \\
            --output next.json
``churn``
    Longitudinal churn simulation: run a seeded churn model (registrar
    transfers, server death/replacement, software and region churn, monotone
    DNSSEC adoption) for ``--epochs`` epochs over one synthetic Internet,
    re-surveying incrementally after each epoch, and write the per-epoch
    drift series as a machine-readable ``timeline.json``::

        repro-dns churn --epochs 12 --churn-seed 7 \\
            --rates 'transfer=2,death=0.5,upgrade=3,dnssec=0.05' \\
            --passes availability,dnssec:fraction=0.2 \\
            --output timeline.json
``timeline``
    Render a timeline written by ``churn``: per-epoch drift (hijackable
    fraction, TCB size, availability, DNSSEC progress, churned names) plus
    the biggest movers of the final epoch.
``worker``
    Run a survey worker: a warm serial engine behind a TCP socket,
    driven by a ``--backend socket`` coordinator.  ``--backend socket``
    with ``--worker-addrs host:port,...`` (on ``survey``, ``resurvey``,
    and ``churn``) shards the survey across running workers — possibly
    on other machines — and merges byte-identically to the serial
    backend; without addresses it spawns ``--workers`` local worker
    processes itself::

        repro-dns worker --listen 0.0.0.0:8053        # on each host
        repro-dns survey --backend socket \\
            --worker-addrs hostA:8053,hostB:8053 --output sharded.json
``merge``
    Union shard snapshot files written by ``survey --shard i/n`` into
    one results snapshot, operating on the binary columns without
    hydrating records::

        repro-dns survey --shard 0/3 --output s0.rsnap   # + 1/3, 2/3
        repro-dns merge s0.rsnap s1.rsnap s2.rsnap --output full.rsnap
``inspect``
    Build the delegation graph of a single name and print its TCB, bottleneck
    analysis, and (if any) attack path.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.core.engine import BACKENDS
from repro.core.passes import build_passes
from repro.core.report import format_table, sort_groups_descending
from repro.core.snapshot import (
    SNAPSHOT_FORMATS,
    SnapshotFormatError,
    diff_results,
    load_results,
    save_results,
)
from repro.core.survey import Survey, SurveyResults
from repro.distrib import DistribError
from repro.core.hijack import HijackAnalyzer
from repro.core.delegation import DelegationGraphBuilder
from repro.topology.generator import GeneratorConfig, InternetGenerator
from repro.vulns.database import default_database
from repro.vulns.fingerprint import Fingerprinter


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-dns",
        description="Reproduce the IMC 2005 DNS transitive-trust survey on a "
                    "synthetic Internet.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    survey = subparsers.add_parser(
        "survey", help="generate a synthetic Internet and survey it")
    _add_generator_arguments(survey)
    survey.add_argument("--max-names", type=int, default=None,
                        help="survey at most this many directory names")
    survey.add_argument("--output", type=str, default=None,
                        help="write a snapshot of the results here")
    _add_snapshot_output_arguments(survey)
    survey.add_argument("--no-bottleneck", action="store_true",
                        help="skip the min-cut bottleneck analysis")
    survey.add_argument("--backend", type=str, default="serial",
                        choices=BACKENDS,
                        help="survey execution backend (all backends "
                             "produce identical results)")
    survey.add_argument("--workers", type=_positive_int, default=1,
                        help="worker/shard count for the thread, sharded, "
                             "and process backends")
    survey.add_argument("--passes", type=str, default=None,
                        help="comma-separated analysis passes, e.g. "
                             "'availability,dnssec' or "
                             "'availability:up=0.95;samples=100'")
    _add_worker_addr_argument(survey)
    survey.add_argument("--shard", type=_shard_spec, default=None,
                        metavar="I/N",
                        help="survey only stripe I of N (0-based) on a "
                             "serial engine and write a binary shard file "
                             "to --output; N shard files covering every "
                             "stripe merge with 'repro-dns merge' into a "
                             "results snapshot byte-identical to one "
                             "serial survey")
    survey.add_argument("--progress", action="store_true",
                        help="print survey progress to stderr")

    report = subparsers.add_parser(
        "report", help="summarise a previously saved snapshot")
    report.add_argument("snapshot", type=str, help="path to a snapshot JSON")

    diff = subparsers.add_parser(
        "diff", help="compare two snapshots name by name")
    diff.add_argument("snapshot_a", type=str,
                      help="baseline snapshot JSON")
    diff.add_argument("snapshot_b", type=str,
                      help="comparison snapshot JSON")
    diff.add_argument("--top", type=_positive_int, default=10,
                      help="number of most-changed names to list")

    resurvey = subparsers.add_parser(
        "resurvey",
        help="mutate the world and re-survey only the invalidated names")
    resurvey.add_argument("previous", type=str,
                          help="snapshot JSON of the previous survey (must "
                               "have been produced with the same generator "
                               "arguments)")
    _add_generator_arguments(resurvey)
    resurvey.add_argument("--mutate", action="append", default=[],
                          metavar="SPEC",
                          help="world mutation to journal before the "
                               "re-survey, e.g. "
                               "'set-ns:zone=site1.com;ns=ns1.webhost2.com' "
                               "or 'dnssec:fraction=0.5' (repeatable)")
    resurvey.add_argument("--max-names", type=int, default=None,
                          help="survey scope, matching the previous run's "
                               "--max-names")
    resurvey.add_argument("--output", type=str, default=None,
                          help="write the re-survey snapshot here")
    _add_snapshot_output_arguments(resurvey)
    resurvey.add_argument("--no-bottleneck", action="store_true",
                          help="skip the min-cut bottleneck analysis")
    resurvey.add_argument("--backend", type=str, default="serial",
                          choices=BACKENDS,
                          help="re-survey execution backend")
    resurvey.add_argument("--workers", type=_positive_int, default=1,
                          help="worker/shard count for partitioned backends")
    resurvey.add_argument("--passes", type=str, default=None,
                          help="analysis passes, matching the previous run")
    _add_worker_addr_argument(resurvey)
    resurvey.add_argument("--progress", action="store_true",
                          help="print re-survey progress to stderr")

    churn = subparsers.add_parser(
        "churn",
        help="simulate longitudinal churn: seeded world mutations with an "
             "incremental re-survey after every epoch")
    _add_generator_arguments(churn)
    churn.add_argument("--epochs", type=_positive_int, default=10,
                       help="number of churn epochs to simulate")
    churn.add_argument("--churn-seed", type=int, default=0,
                       help="RNG seed for the churn model (independent of "
                            "the world seed, so one world supports many "
                            "churn scenarios)")
    churn.add_argument("--rates", type=str, default=None,
                       help="per-epoch churn rates as class=rate pairs, "
                            "e.g. 'transfer=2,death=0.5,upgrade=3,"
                            "downgrade=1,region=2,dnssec=0.05' (expected "
                            "events per epoch; dnssec is the per-epoch "
                            "increment of the signed-zone fraction)")
    churn.add_argument("--max-names", type=int, default=None,
                       help="survey at most this many directory names")
    churn.add_argument("--output", type=str, default=None,
                       help="write the machine-readable timeline JSON here")
    churn.add_argument("--store", type=str, default=None, metavar="DIR",
                       help="persist every epoch's full results into a "
                            "binary epoch store at DIR (epoch 0 complete, "
                            "later epochs as column deltas; any epoch "
                            "re-opens with 'repro-dns report DIR/"
                            "epoch_NNNN.rsnap' — epoch 0 — or via "
                            "repro.core.snapstore.EpochStore)")
    churn.add_argument("--no-bottleneck", action="store_true",
                       help="skip the min-cut bottleneck analysis")
    churn.add_argument("--backend", type=str, default="serial",
                       choices=BACKENDS,
                       help="survey execution backend for every epoch")
    churn.add_argument("--workers", type=_positive_int, default=1,
                       help="worker/shard count for partitioned backends")
    churn.add_argument("--passes", type=str, default=None,
                       help="analysis passes run every epoch, e.g. "
                            "'availability,dnssec:fraction=0.2' (a dnssec "
                            "pass seeds the adoption model's start state)")
    _add_worker_addr_argument(churn)
    churn.add_argument("--keyframe-every", type=_positive_int, default=None,
                       metavar="K",
                       help="with --store: write a complete snapshot every "
                            "K epochs instead of a column delta, so "
                            "load_epoch overlay chains never exceed K")
    churn.add_argument("--cold-check", action="store_true",
                       help="audit mode: run a cold full survey after every "
                            "epoch and record whether the incremental "
                            "snapshot is byte-identical (slow)")
    churn.add_argument("--progress", action="store_true",
                       help="print per-epoch progress to stderr")
    churn.add_argument("--resume", action="store_true",
                       help="resume an interrupted run from --store: replay "
                            "the committed epochs deterministically (no "
                            "re-survey), then continue live from the first "
                            "missing epoch; the finished timeline matches "
                            "an uninterrupted run")
    churn.add_argument("--no-fsync", action="store_true",
                       help="skip fsync in every snapshot commit (atomic "
                            "temp+rename is kept); for tests and benchmarks "
                            "where power-loss durability is irrelevant")

    timeline = subparsers.add_parser(
        "timeline",
        help="render the per-epoch drift series of a churn timeline")
    timeline.add_argument("timeline", type=str,
                          help="path to a timeline JSON written by churn")
    timeline.add_argument("--movers", type=_positive_int, default=5,
                          help="number of most-changed names to list for "
                               "the final epoch (timelines record at most "
                               "10 per epoch)")
    timeline.add_argument("--fingerprint", action="store_true",
                          help="print only the canonical content "
                               "fingerprint (sha256 over the timeline "
                               "modulo wall-clock timings and per-run "
                               "paths/ports) and exit; two runs of the "
                               "same simulation — interrupted+resumed or "
                               "not, any backend — print the same value")

    fsck = subparsers.add_parser(
        "fsck",
        help="check an epoch store directory (churn --store) or a single "
             "snapshot file for corruption; --salvage quarantines a "
             "store's bad tail so 'churn --resume' can continue from the "
             "valid prefix")
    fsck.add_argument("path", type=str,
                      help="epoch store directory or snapshot file "
                           "(REPRO-SNAP or JSON)")
    fsck.add_argument("--salvage", action="store_true",
                      help="repair a salvageable store: move corrupt or "
                           "orphaned epoch files into <store>/quarantine/ "
                           "and delete uncommitted temp debris (refused "
                           "when epoch 0 itself is bad)")

    worker = subparsers.add_parser(
        "worker",
        help="run a survey worker: a warm serial engine serving BUILD/"
             "SURVEY frames from a socket coordinator (the socket "
             "backend's remote end)")
    worker.add_argument("--listen", type=str, default="127.0.0.1:0",
                        metavar="HOST:PORT",
                        help="address to listen on (port 0 picks a free "
                             "port; the bound address is printed as "
                             "'listening on HOST:PORT')")
    worker.add_argument("--auth-token", type=str, default=None,
                        help="require a valid HMAC HELLO handshake under "
                             "this shared secret before serving any frame "
                             "(defaults to $REPRO_AUTH_TOKEN; unset "
                             "disables auth)")
    worker.add_argument("--idle-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="drop a coordinator connection after this "
                             "long without a frame (the worker goes back "
                             "to accepting; warm state is kept)")
    worker.add_argument("--fault-plan", type=str, default=None,
                        metavar="SPEC",
                        help="chaos testing: arm this worker with a "
                             "deterministic fault plan, e.g. "
                             "'seed=7,kill:recv:2' (defaults to "
                             "$REPRO_FAULT_PLAN)")
    worker.add_argument("--parent-pid", type=int, default=None,
                        metavar="PID",
                        help="orphan watchdog: exit when PID stops being "
                             "this process's parent (spawned local fleets "
                             "set it so a crashed coordinator never leaks "
                             "listener processes)")

    merge = subparsers.add_parser(
        "merge",
        help="union shard snapshot files (survey --shard outputs) into "
             "one results snapshot, operating on the binary columns "
             "without hydrating records")
    merge.add_argument("shards", type=str, nargs="+",
                       help="shard snapshot files covering every stripe "
                            "exactly once")
    merge.add_argument("--output", type=str, required=True,
                       help="write the merged binary results snapshot here")

    inspect = subparsers.add_parser(
        "inspect", help="analyse a single name on a fresh synthetic Internet")
    _add_generator_arguments(inspect)
    inspect.add_argument("name", type=str,
                         help="domain name to analyse (e.g. www.fbi.gov)")
    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _shard_spec(text: str):
    index_text, _, count_text = text.partition("/")
    try:
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected I/N (e.g. 0/4), got {text!r}")
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 0 <= I < N, got {text!r}")
    return index, count


def _add_worker_addr_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--worker-addrs", type=str, default=None,
                        metavar="HOST:PORT,...",
                        help="socket backend: comma-separated addresses of "
                             "running 'repro-dns worker' processes; "
                             "omitted, --backend socket spawns --workers "
                             "local worker processes itself")
    parser.add_argument("--retries", type=int, default=0,
                        help="socket backend: per-incident retry budget "
                             "before a worker is declared dead and its "
                             "shard reassigned to a survivor (0, the "
                             "default, aborts the run on any failure)")
    parser.add_argument("--min-workers", type=_positive_int, default=1,
                        help="socket backend: abort once fewer than this "
                             "many workers survive (with --retries > 0)")
    parser.add_argument("--auth-token", type=str, default=None,
                        help="socket backend: shared secret for the HELLO "
                             "auth handshake (defaults to "
                             "$REPRO_AUTH_TOKEN; spawned local workers "
                             "inherit it automatically)")
    parser.add_argument("--fault-plan", action="append", default=[],
                        metavar="I=SPEC",
                        help="chaos testing (spawned local fleet only): arm "
                             "worker I with a deterministic fault plan, "
                             "e.g. '1=seed=7,kill:recv:2' (repeatable)")


def _auth_token(args: argparse.Namespace) -> Optional[str]:
    """The shared auth token: explicit flag, else $REPRO_AUTH_TOKEN."""
    from repro.distrib.wire import ENV_AUTH_TOKEN
    if getattr(args, "auth_token", None):
        return args.auth_token
    return os.environ.get(ENV_AUTH_TOKEN) or None


def _fault_plans(args: argparse.Namespace) -> Dict[int, str]:
    """Parse repeated ``--fault-plan I=SPEC`` into {worker index: spec}."""
    from repro.distrib.faults import FaultPlan
    plans: Dict[int, str] = {}
    for item in getattr(args, "fault_plan", []) or []:
        index_text, separator, spec = str(item).partition("=")
        if not separator or not index_text.isdigit():
            raise DistribError(
                f"invalid --fault-plan {item!r}: expected I=SPEC "
                f"(e.g. '1=seed=7,kill:recv:2')")
        FaultPlan.parse(spec)  # validate eagerly, fail before spawning
        plans[int(index_text)] = spec
    return plans


def _worker_fleet(args: argparse.Namespace):
    """(worker_addrs, fleet) for a command; fleet is None unless spawned."""
    addrs = tuple(item.strip() for item in (args.worker_addrs or "").split(",")
                  if item.strip())
    plans = _fault_plans(args)
    if args.backend != "socket":
        if addrs:
            raise DistribError(
                "--worker-addrs only applies to --backend socket")
        if plans:
            raise DistribError(
                "--fault-plan only applies to --backend socket")
        return (), None
    min_workers = getattr(args, "min_workers", 1) or 1
    if min_workers > (len(addrs) or args.workers):
        # Fail before any worker process spawns, with the CLI's one-line
        # error contract rather than EngineConfig.validate's ValueError.
        raise DistribError(
            f"--min-workers {min_workers} exceeds the "
            f"{len(addrs) or args.workers} configured workers")
    if addrs:
        if plans:
            raise DistribError(
                "--fault-plan arms spawned local workers; with "
                "--worker-addrs, start each remote worker with its own "
                "--fault-plan instead")
        return addrs, None
    from repro.distrib.coordinator import LocalWorkerFleet
    bad = [index for index in plans if index >= args.workers]
    if bad:
        raise DistribError(
            f"--fault-plan worker index {bad[0]} out of range "
            f"(spawning {args.workers} workers)")
    fleet = LocalWorkerFleet(args.workers, auth_token=_auth_token(args),
                             fault_plans=plans)
    return tuple(fleet.start()), fleet


def _print_fault_report(metadata: Dict[str, object]) -> None:
    """One summary line when the recovery machinery had to act."""
    report = metadata.get("fault_report")
    if not isinstance(report, dict):
        return
    dead = report.get("dead_workers") or []
    print(f"fault recovery: {report.get('retries', 0)} retries, "
          f"{report.get('rebuilds', 0)} rebuilds, "
          f"{report.get('reassignments', 0)} shard reassignments, "
          f"{len(dead)} dead worker(s)"
          f"{' (' + ', '.join(dead) + ')' if dead else ''} in "
          f"{report.get('recovery_seconds', 0)}s")


def _add_snapshot_output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", type=str, default="json",
                        choices=SNAPSHOT_FORMATS, dest="format",
                        help="snapshot codec for --output: 'json' (interop, "
                             "human-greppable) or 'binary' (columnar "
                             "REPRO-SNAP: mmap-backed, O(1) open, lazy "
                             "records); loaders sniff the format by magic "
                             "bytes, never by extension")
    parser.add_argument("--compress", action="store_true",
                        help="zlib-compress the JSON snapshot (loaders "
                             "sniff and decompress transparently; not "
                             "applicable to --format binary)")


def _write_snapshot(results: SurveyResults, args: argparse.Namespace):
    """Write ``--output`` honouring ``--format`` / ``--compress``."""
    if args.compress and args.format == "binary":
        raise SnapshotFormatError(
            "--compress applies to --format json only (binary snapshots "
            "are already compact)")
    return save_results(results, args.output, format=args.format,
                        compress=args.compress)


def _add_generator_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=20040722,
                        help="RNG seed for the synthetic Internet")
    parser.add_argument("--sld-count", type=int, default=800,
                        help="number of generic second-level domains")
    parser.add_argument("--directory-names", type=int, default=1400,
                        help="target number of web-directory names")
    parser.add_argument("--universities", type=int, default=90,
                        help="number of universities in the topology")


def _config_from_args(args: argparse.Namespace) -> GeneratorConfig:
    return GeneratorConfig(seed=args.seed, sld_count=args.sld_count,
                           directory_name_count=args.directory_names,
                           university_count=args.universities)


def _print_headline(results: SurveyResults) -> None:
    headline = results.headline()
    rows = [(key, f"{value:.3f}" if isinstance(value, float) else value)
            for key, value in sorted(headline.items())]
    print(format_table(rows, headers=("statistic", "value")))


def _print_extras_summary(results: SurveyResults) -> None:
    """Summarise analysis-pass columns, when the survey ran any."""
    summary = results.extras_summary()
    if not summary:
        return
    print()
    print("Analysis passes (availability / DNSSEC impact)")
    rows = [(key, f"{value:.3f}") for key, value in sorted(summary.items())]
    print(format_table(rows, headers=("pass column", "mean / fraction")))


def _print_value_summary(results: SurveyResults) -> None:
    """Summarise the value pass's finalize() metadata, when present."""
    summary = results.metadata.get("value_summary")
    if not isinstance(summary, dict):
        return
    print()
    print("Nameserver value ranking (Figures 8-9)")
    rows = [(key, f"{value:.3f}" if isinstance(value, float) else value)
            for key, value in sorted(summary.items())]
    print(format_table(rows, headers=("statistic", "value")))
    top = results.metadata.get("value_top_servers") or []
    if top:
        print()
        rows = [(entry.get("rank", index + 1), entry.get("hostname", "?"),
                 entry.get("names_controlled", 0),
                 "yes" if entry.get("vulnerable") else "no")
                for index, entry in enumerate(top)]
        print(format_table(rows, headers=("rank", "nameserver",
                                          "names controlled", "vulnerable")))


def _print_tld_tables(results: SurveyResults) -> None:
    for kind, title in (("gtld", "Mean TCB size per gTLD (Figure 3)"),
                        ("cctld", "Mean TCB size per ccTLD (Figure 4)")):
        averages = sort_groups_descending(results.mean_tcb_by_tld(kind=kind))
        if not averages:
            continue
        print()
        print(title)
        rows = [(tld, f"{mean:.1f}") for tld, mean in averages[:15]]
        print(format_table(rows, headers=("tld", "mean TCB")))


class ProgressPrinter:
    """Prints coarse survey progress to stderr (every ~2% and at the end)."""

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self._last_printed = -1

    def __call__(self, done: int, total: int) -> None:
        step = max(total // 50, 1)
        if done != total and done - self._last_printed < step:
            return
        self._last_printed = done
        print(f"surveyed {done}/{total} names", file=self.stream)


def _command_survey(args: argparse.Namespace) -> int:
    if args.shard is not None:
        return _command_survey_shard(args)
    config = _config_from_args(args)
    internet = InternetGenerator(config).generate()
    worker_addrs, fleet = _worker_fleet(args)
    survey = Survey(internet, include_bottleneck=not args.no_bottleneck,
                    backend=args.backend, workers=args.workers,
                    passes=build_passes(args.passes),
                    worker_addrs=worker_addrs, retries=args.retries,
                    min_workers=args.min_workers,
                    auth_token=_auth_token(args))
    progress = ProgressPrinter() if args.progress else None
    try:
        results = survey.run(max_names=args.max_names, progress=progress)
    finally:
        survey.close()
        if fleet is not None:
            fleet.stop()
    _print_fault_report(results.metadata)
    _print_headline(results)
    _print_tld_tables(results)
    _print_extras_summary(results)
    _print_value_summary(results)
    if args.output:
        path = _write_snapshot(results, args)
        print(f"\nsnapshot written to {path}")
        # A full survey starts a fresh lineage: a mutation sidecar left
        # over from an earlier resurvey at this path no longer describes
        # this snapshot and must not be replayed onto it.
        sidecar = _sidecar_journal_path(args.output)
        if sidecar.exists():
            sidecar.unlink()
            print(f"stale mutation journal {sidecar} removed")
    return 0


def _command_survey_shard(args: argparse.Namespace) -> int:
    """Survey one stripe of the directory into a binary shard file."""
    from repro.core.engine import EngineConfig, SurveyAggregator, SurveyEngine
    from repro.core.snapstore import pack_shard_result

    if not args.output:
        raise DistribError("--shard requires --output (the shard file)")
    if args.backend != "serial":
        raise DistribError("--shard runs on the serial engine (the socket "
                           "backend shards online; merge offline shards "
                           "with 'repro-dns merge')")
    index, count = args.shard
    config = _config_from_args(args)
    internet = InternetGenerator(config).generate()
    engine = SurveyEngine(internet, config=EngineConfig(
        backend="serial", include_bottleneck=not args.no_bottleneck,
        passes=build_passes(args.passes)))
    entries = engine._select_entries(None, args.max_names)
    indexed = list(enumerate(entries))[index::count]
    popular = {entry.name for entry in
               internet.directory.alexa_top(engine.config.popular_count)}
    aggregator = SurveyAggregator(
        total=len(indexed),
        progress=ProgressPrinter() if args.progress else None)
    engine._run_shard(engine._root, indexed, popular, aggregator)
    rows_records = aggregator.indexed_records()
    fingerprints, vulnerability_map, compromisable_map = \
        aggregator.shard_maps()
    path = pack_shard_result(
        [row for row, _record in rows_records],
        [record for _row, record in rows_records],
        fingerprints, vulnerability_map, compromisable_map,
        popular=popular,
        meta={"shard": f"{index}/{count}",
              "popular_count": engine.config.popular_count,
              "include_bottleneck": engine.config.include_bottleneck,
              "names_requested": len(entries),
              "passes": [pass_.name for pass_ in engine.passes]},
        path=args.output)
    print(f"shard {index}/{count}: {len(indexed)} of {len(entries)} names "
          f"surveyed, written to {path}")
    return 0


def _watch_parent(parent_pid: int) -> None:
    """Exit when ``parent_pid`` stops being our parent (orphan watchdog).

    A coordinator that dies mid-commit (crash, SIGKILL, crash-matrix
    fault injection) cannot stop the workers it spawned; without this a
    killed ``churn --backend socket`` run leaks listener processes.
    Reparenting (to init or a subreaper) is the death signal: poll ppid
    once a second and exit cleanly when it changes.
    """
    import threading
    import time as time_module

    def watch() -> None:
        while os.getppid() == parent_pid:
            time_module.sleep(1.0)
        os._exit(0)

    threading.Thread(target=watch, name="parent-watchdog",
                     daemon=True).start()


def _command_worker(args: argparse.Namespace) -> int:
    from repro.distrib.faults import (FaultInjector, FaultPlan,
                                      activate_from_env)
    from repro.distrib.wire import install_fault_injector, parse_address
    from repro.distrib.worker import WorkerServer

    if args.fault_plan:
        install_fault_injector(FaultInjector(FaultPlan.parse(args.fault_plan)))
    else:
        activate_from_env()
    if args.parent_pid:
        _watch_parent(args.parent_pid)
    host, port = parse_address(args.listen)
    server = WorkerServer(host, port, auth_token=_auth_token(args),
                          idle_timeout=args.idle_timeout)
    print(f"listening on {server.address}", flush=True)
    server.serve_forever()
    return 0


def _command_merge(args: argparse.Namespace) -> int:
    from repro.distrib.merge import merge_shard_snapshots

    report = merge_shard_snapshots(args.shards, args.output)
    print(f"merged {report.shards} shard file(s), {report.names} names, "
          f"into {report.output} ({report.bytes_written} bytes)")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    results = load_results(args.snapshot)
    _print_headline(results)
    _print_tld_tables(results)
    _print_extras_summary(results)
    _print_value_summary(results)
    return 0


def _command_diff(args: argparse.Namespace) -> int:
    results_a = load_results(args.snapshot_a)
    results_b = load_results(args.snapshot_b)
    diff = diff_results(results_a, results_b)

    print(f"snapshot diff: {args.snapshot_a} -> {args.snapshot_b}")
    print(f"names: {diff.common} common, "
          f"{len(diff.only_in_a)} only in baseline, "
          f"{len(diff.only_in_b)} only in comparison, "
          f"{diff.changed} changed")

    if diff.numeric:
        print()
        print("Per-name churn (common names)")
        rows = []
        for field in sorted(diff.numeric):
            stats = diff.numeric[field]
            rows.append((field, f"{stats['changed']:.0f}",
                         f"{stats['mean_delta']:+.3f}",
                         f"{stats['mean_abs_delta']:.3f}",
                         f"{stats['max_abs_delta']:.3f}"))
        print(format_table(rows, headers=("field", "changed", "mean d",
                                          "mean |d|", "max |d|")))

    for field in sorted(diff.transitions):
        print()
        print(f"{field} transitions")
        rows = [(f"{before} -> {after}", count)
                for (before, after), count in
                sorted(diff.transitions[field].items(),
                       key=lambda item: (-item[1], item[0]))]
        print(format_table(rows, headers=("transition", "names")))

    movers = diff.top_movers(args.top)
    if movers:
        print()
        print(f"Most-changed names (top {len(movers)})")
        rows = []
        for change in movers:
            details = "; ".join(
                f"{field}: {before} -> {after}"
                for field, (before, after) in sorted(change.fields.items()))
            rows.append((str(change.name), details))
        print(format_table(rows, headers=("name", "changes")))
    return 0


def _sidecar_journal_path(snapshot_path: str):
    import pathlib
    return pathlib.Path(str(snapshot_path) + ".journal")


def _snapshot_sha256(path) -> str:
    import hashlib
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _load_sidecar(sidecar, snapshot_path) -> List[str]:
    """Mutation specs from a journal sidecar (v1 bare list or v2 dict).

    A v2 sidecar binds itself to its snapshot by content hash: the
    sidecar commits *before* the snapshot publishes (see
    :func:`_commit_snapshot_with_sidecar`), so a crash between the two
    surfaces here as a hash mismatch — a precise error — instead of a
    silently stale journal replay that would corrupt every later
    resurvey in the chain.
    """
    import json as json_module
    payload = json_module.loads(sidecar.read_text(encoding="utf-8"))
    if isinstance(payload, list):  # v1: bare spec list, no binding hash
        return [str(spec) for spec in payload]
    if not isinstance(payload, dict) or "specs" not in payload:
        raise SnapshotFormatError(
            f"{sidecar}: unrecognised journal sidecar (expected a spec "
            f"list or a v2 {{specs, snapshot_sha256}} document)")
    expected = payload.get("snapshot_sha256")
    if expected:
        actual = _snapshot_sha256(snapshot_path)
        if actual != expected:
            raise SnapshotFormatError(
                f"{sidecar}: sidecar does not match {snapshot_path} "
                f"(snapshot sha256 {actual[:12]}..., sidecar recorded "
                f"{expected[:12]}...): the snapshot commit it describes "
                f"never completed — re-run the resurvey that produced "
                f"it, or delete the sidecar to treat the snapshot as "
                f"unmutated")
    return [str(spec) for spec in payload["specs"]]


def _commit_snapshot_with_sidecar(results: SurveyResults, output,
                                  specs: List[str],
                                  args: argparse.Namespace):
    """Publish a resurvey snapshot and its journal sidecar crash-consistently.

    Order matters: the snapshot is staged under a temp name, the sidecar
    — recording the staged snapshot's sha256 — commits first, and only
    then does the snapshot publish over the old one.  A crash at any
    point leaves either the old pair intact or a sidecar whose hash
    exposes the unpublished snapshot (:func:`_load_sidecar` rejects the
    pair); never a published snapshot with a journal missing its
    mutations.
    """
    import json as json_module
    from repro.core.atomic import atomic_write_text, publish_file

    if args.compress and args.format == "binary":
        raise SnapshotFormatError(
            "--compress applies to --format json only (binary snapshots "
            "are already compact)")
    output.parent.mkdir(parents=True, exist_ok=True)
    staged = output.parent / f".{output.name}.staged.{os.getpid()}"
    try:
        save_results(results, staged, format=args.format,
                     compress=args.compress)
        payload = {"format": 2, "specs": list(specs),
                   "snapshot_sha256": _snapshot_sha256(staged)}
        atomic_write_text(_sidecar_journal_path(output),
                          json_module.dumps(payload, indent=1) + "\n")
        publish_file(staged, output)
    except BaseException:
        try:
            staged.unlink()
        except OSError:
            pass
        raise
    return output


def _command_resurvey(args: argparse.Namespace) -> int:
    from repro.core.engine import EngineConfig, SurveyEngine
    from repro.topology.changes import ChangeJournal, apply_mutation_spec

    previous = load_results(args.previous)
    config = _config_from_args(args)
    internet = InternetGenerator(config).generate()
    worker_addrs, fleet = _worker_fleet(args)
    engine = SurveyEngine(
        internet,
        config=EngineConfig(backend=args.backend, workers=args.workers,
                            include_bottleneck=not args.no_bottleneck,
                            passes=build_passes(args.passes),
                            worker_addrs=worker_addrs,
                            retries=args.retries,
                            min_workers=args.min_workers,
                            auth_token=_auth_token(args)))

    # Snapshots are byte-identical to cold surveys by design, so a snapshot
    # cannot reveal which mutations produced it.  A sidecar journal
    # (<snapshot>.journal) written next to every resurvey output records
    # the applied specs; replaying it first makes chained resurveys see
    # the correctly re-mutated world instead of a pristine regeneration.
    journal = ChangeJournal(internet)
    replayed: List[str] = []
    sidecar = _sidecar_journal_path(args.previous)
    if sidecar.exists():
        replayed = _load_sidecar(sidecar, args.previous)
        for spec in replayed:
            apply_mutation_spec(journal, spec)
        print(f"replayed {len(replayed)} prior mutation(s) from {sidecar}")
    prior_events = len(journal)
    for spec in args.mutate:
        event = apply_mutation_spec(journal, spec)
        print(f"mutated: {event}")

    # Replayed mutations rebuilt world state the previous snapshot already
    # reflects; only the new events determine what is dirty (DNSSEC
    # deployment adoption always sees the whole chain — see
    # ChangeJournal.changes).  The journal itself goes to run_delta (with
    # `since`) rather than a pre-folded ChangeSet: the socket backend
    # ships journal events to its workers as mutation specs.
    progress = ProgressPrinter() if args.progress else None
    try:
        outcome = engine.run_delta(previous, journal, since=prior_events,
                                   max_names=args.max_names,
                                   progress=progress)
    finally:
        engine.close()
        if fleet is not None:
            fleet.stop()

    stats = outcome.stats
    _print_fault_report(outcome.results.metadata)
    print(f"re-surveyed {stats.dirty_names}/{stats.total_names} names "
          f"({stats.dirty_fraction:.1%} dirty, {stats.patched_names} "
          f"patched from {args.previous}) in {stats.elapsed_s:.2f}s")
    _print_headline(outcome.results)
    _print_extras_summary(outcome.results)
    _print_value_summary(outcome.results)
    if args.output:
        import pathlib
        specs = replayed + [str(spec) for spec in args.mutate]
        path = _commit_snapshot_with_sidecar(
            outcome.results, pathlib.Path(args.output), specs, args)
        print(f"\nsnapshot written to {path}")
        print(f"mutation journal written to "
              f"{_sidecar_journal_path(args.output)}")
    return 0


def _timeline_rows(timeline) -> List[tuple]:
    """Per-epoch drift rows shared by ``churn`` and ``timeline`` output."""
    rows = []
    for snapshot in timeline.snapshots:
        availability = (f"{snapshot.availability_mean:.4f}"
                        if snapshot.availability_mean is not None else "-")
        secure = (f"{snapshot.dnssec_secure_fraction:.1%}"
                  if snapshot.dnssec_secure_fraction is not None else "-")
        rows.append((
            snapshot.epoch, snapshot.events,
            f"{snapshot.dirty_names}/{snapshot.total_names}",
            f"{snapshot.hijackable_fraction:.1%}",
            f"{snapshot.mean_tcb:.1f}",
            f"{snapshot.p95_tcb:.0f}",
            availability,
            f"{snapshot.dnssec_fraction:.0%}",
            secure,
            snapshot.changed_names,
            f"{snapshot.delta_elapsed_s:.2f}s"))
    return rows


_TIMELINE_HEADERS = ("epoch", "events", "dirty", "hijackable", "mean TCB",
                     "p95 TCB", "avail", "signed", "secure", "changed",
                     "survey")


def print_timeline(timeline, movers: int = 5) -> None:
    """Render the drift table plus the final epoch's biggest movers."""
    config = timeline.config
    print(f"churn timeline: {timeline.epochs} epochs, "
          f"churn seed {config.get('churn_seed')}, "
          f"backend {config.get('backend')}, "
          f"rates {config.get('rates')}")
    print()
    print(format_table(_timeline_rows(timeline), headers=_TIMELINE_HEADERS))
    if timeline.interrupted_at is not None:
        print(f"\nINTERRUPTED at epoch {timeline.interrupted_at}/"
              f"{config.get('epochs')}: the run stopped on request; the "
              f"epochs above are complete and committed, the rest were "
              f"never started (resume with 'repro-dns churn --resume')")
    last = timeline.snapshots[-1]
    if last.cold_identical is not None:
        audited = [s for s in timeline.snapshots
                   if s.cold_identical is not None]
        clean = sum(1 for s in audited if s.cold_identical)
        print(f"\ncold audit: {clean}/{len(audited)} epochs byte-identical "
              f"to a cold full survey")
    if last.top_movers:
        print(f"\nBiggest movers of epoch {last.epoch}")
        rows = [(mover["name"], mover["changes"])
                for mover in last.top_movers[:movers]]
        print(format_table(rows, headers=("name", "changes")))


def _command_churn(args: argparse.Namespace) -> int:
    import signal as signal_module

    from repro.core import atomic
    from repro.core.timeline import (dnssec_spec_options, run_churn_timeline,
                                     save_timeline)
    from repro.topology.churn import ChurnModel, ChurnRates

    if args.resume and not args.store:
        print("error: --resume requires --store (the epoch store holds the "
              "committed epochs to resume from)", file=sys.stderr)
        return 2
    if args.no_fsync:
        atomic.set_fsync(False)

    rates = ChurnRates.parse(args.rates)
    config = _config_from_args(args)
    internet = InternetGenerator(config).generate()

    initial_dnssec, dnssec_seed, sign_tlds = dnssec_spec_options(args.passes)
    model = ChurnModel(internet, rates, seed=args.churn_seed,
                       initial_dnssec=initial_dnssec,
                       dnssec_seed=dnssec_seed,
                       dnssec_sign_tlds=sign_tlds)

    def progress(epoch, snapshot):
        if not args.progress:
            return
        print(f"epoch {epoch}/{args.epochs}: {snapshot.events} events, "
              f"{snapshot.dirty_names}/{snapshot.total_names} re-surveyed "
              f"in {snapshot.delta_elapsed_s:.2f}s", file=sys.stderr)

    # SIGTERM/SIGINT ask the epoch loop to stop at the next epoch
    # boundary: the current epoch's store append and the timeline JSON
    # still commit, the timeline carries ``interrupted_at_epoch``, and
    # the exit code is 3 so wrappers can tell "stopped cleanly, resume
    # me" from success (0) and corruption (2).  A second signal aborts
    # hard the default way.
    stop_requested = {"flag": False}

    def _request_stop(signum, frame):
        if stop_requested["flag"]:
            signal_module.signal(signum, signal_module.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        stop_requested["flag"] = True
        print(f"{signal_module.Signals(signum).name} received: committing "
              f"the current epoch, then stopping (repeat to abort hard)",
              file=sys.stderr)

    previous_handlers = {}
    for signum in (signal_module.SIGINT, signal_module.SIGTERM):
        try:
            previous_handlers[signum] = signal_module.signal(
                signum, _request_stop)
        except (ValueError, OSError):  # e.g. not on the main thread
            pass

    worker_addrs, fleet = _worker_fleet(args)
    socket_options = None
    if args.backend == "socket":
        socket_options = {"retries": args.retries,
                          "min_workers": args.min_workers,
                          "auth_token": _auth_token(args)}
    try:
        try:
            timeline = run_churn_timeline(
                internet, model, epochs=args.epochs, backend=args.backend,
                workers=args.workers,
                include_bottleneck=not args.no_bottleneck,
                passes=args.passes, max_names=args.max_names,
                cold_check=args.cold_check, store=args.store,
                keyframe_every=args.keyframe_every, worker_addrs=worker_addrs,
                socket_options=socket_options, progress=progress,
                resume=args.resume,
                should_stop=lambda: stop_requested["flag"])
        except ValueError as error:
            # Resume misuse (nothing to resume, mismatched run arguments,
            # bad --rates): one clear line, not a traceback.
            print(f"error: {error}", file=sys.stderr)
            return 2
    finally:
        if fleet is not None:
            fleet.stop()
        for signum, handler in previous_handlers.items():
            signal_module.signal(signum, handler)
    timeline.config["generator"] = {
        "seed": args.seed, "sld_count": args.sld_count,
        "directory_names": args.directory_names,
        "universities": args.universities}

    print_timeline(timeline)
    if args.store:
        from repro.core.snapstore import EpochStore
        store = EpochStore(args.store)
        print(f"\nepoch store: {store.epochs} epochs, "
              f"{store.total_bytes()} bytes at {store.root}")
    if args.output:
        path = save_timeline(timeline, args.output)
        print(f"\ntimeline written to {path}")
    if timeline.interrupted_at is not None:
        if args.store:
            hint = (f"every committed epoch is durable — finish with: "
                    f"repro-dns churn --resume --store {args.store} "
                    f"(same remaining arguments)")
        else:
            hint = ("no --store was given, so a rerun must start from "
                    "epoch 0")
        print(f"\nstopped on request after epoch "
              f"{timeline.interrupted_at}/{args.epochs}; {hint}",
              file=sys.stderr)
        return 3
    if args.cold_check and not all(
            snapshot.cold_identical for snapshot in timeline.snapshots[1:]):
        print("\ncold audit FAILED: at least one incremental epoch diverged "
              "from its cold survey", file=sys.stderr)
        return 1
    return 0


def _command_timeline(args: argparse.Namespace) -> int:
    from repro.core.timeline import load_timeline, timeline_fingerprint

    timeline = load_timeline(args.timeline)
    if args.fingerprint:
        print(timeline_fingerprint(timeline))
        return 0
    print_timeline(timeline, movers=args.movers)
    return 0


def _command_fsck(args: argparse.Namespace) -> int:
    """Integrity-check a store or snapshot; exit 0/1/2, --salvage repairs.

    Exit codes: 0 clean (or salvaged), 1 salvageable but --salvage not
    given, 2 corrupt base / unrecognised / missing path.
    """
    import pathlib
    path = pathlib.Path(args.path)
    if path.is_dir():
        return _fsck_store(path, salvage=args.salvage)
    if path.is_file():
        return _fsck_snapshot(path, salvage=args.salvage)
    print(f"error: {path}: no such file or directory", file=sys.stderr)
    return 2


def _fsck_store(path, salvage: bool) -> int:
    from repro.core.snapstore import EpochStore

    store = EpochStore(path)
    report = store.verify()
    epochs = (f"epochs 0..{report.valid_epochs - 1}"
              if report.valid_epochs else "no epochs")
    print(f"{path}: {report.classification} — {report.valid_epochs} valid "
          f"({epochs}), {len(report.problems)} problem(s), "
          f"{len(report.debris)} uncommitted temp file(s)")
    for problem in report.problems:
        print(f"  problem: {problem}")
    for debris in report.debris:
        print(f"  debris: {debris.name} (interrupted commit, never "
              f"visible to readers)")
    if report.classification == "clean":
        return 0
    if report.classification == "corrupt-base":
        print(f"error: {path}: epoch 0 is missing or corrupt — nothing to "
              f"salvage; remove the store to start over", file=sys.stderr)
        return 2
    if not salvage:
        print(f"salvageable: rerun with --salvage to quarantine the bad "
              f"tail and keep epochs 0..{report.valid_epochs - 1}")
        return 1
    _, moved = store.salvage()
    for item in moved:
        action = "removed" if item.parent == store.root else "quarantined"
        print(f"  {action}: {item.name}")
    after = store.verify()
    print(f"{path}: salvaged — {after.valid_epochs} valid epoch(s) kept, "
          f"{len(moved)} file(s) moved or removed")
    return 0 if after.ok else 2


def _fsck_snapshot(path, salvage: bool) -> int:
    import zlib

    from repro.core.snapstore import verify_snapshot_file, sniff_kind

    if salvage:
        print("error: --salvage applies to epoch store directories; a "
              "single corrupt snapshot has no valid prefix to keep",
              file=sys.stderr)
        return 2
    try:
        if sniff_kind(path) is not None:
            verify_snapshot_file(path)
        else:
            load_results(path)  # JSON (possibly zlib): full parse
    except SnapshotFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, zlib.error, OSError) as error:
        print(f"error: {path}: corrupt snapshot: {error}", file=sys.stderr)
        return 2
    print(f"{path}: clean")
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    internet = InternetGenerator(config).generate()
    resolver = internet.make_resolver()
    builder = DelegationGraphBuilder(resolver)
    graph = builder.build(args.name)
    if graph.tcb_size() == 0:
        print(f"{args.name}: could not walk any delegation chain "
              f"(name may not exist in this synthetic Internet)")
        return 1

    database = default_database()
    fingerprinter = Fingerprinter(internet.network, database)
    vulnerability_map = {}
    for hostname in graph.tcb():
        result = fingerprinter.fingerprint(hostname)
        vulnerability_map[hostname] = database.is_compromisable(result.banner)

    print(f"name: {graph.target}")
    print(f"TCB size: {graph.tcb_size()} nameservers "
          f"({len(graph.in_bailiwick_servers())} in bailiwick)")
    vulnerable = [host for host, flag in vulnerability_map.items() if flag]
    print(f"vulnerable servers in TCB: {len(vulnerable)}")
    analyzer = HijackAnalyzer(vulnerability_map)
    assessment = analyzer.assess(graph)
    print(f"classification: {assessment.classification}")
    print(f"bottleneck: {assessment.bottleneck.size} servers "
          f"({assessment.bottleneck.safe_in_cut} safe)")
    if assessment.attack_path:
        print("attack path:")
        for step in assessment.attack_path:
            print(f"  {step}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "survey": _command_survey,
        "report": _command_report,
        "diff": _command_diff,
        "resurvey": _command_resurvey,
        "churn": _command_churn,
        "timeline": _command_timeline,
        "fsck": _command_fsck,
        "worker": _command_worker,
        "merge": _command_merge,
        "inspect": _command_inspect,
    }
    # $REPRO_FAULT_PLAN arms *this* process too (io crash points in the
    # atomic-commit protocol, wire faults on the coordinator side) — the
    # crash-matrix tests kill a churn run mid-commit this way.  Spawned
    # local workers never inherit it (the fleet strips the variable), and
    # without the variable this is a no-op.
    from repro.distrib.faults import activate_from_env
    activate_from_env()
    handler = handlers[args.command]
    try:
        return handler(args)
    except (SnapshotFormatError, DistribError) as error:
        # Corrupt, truncated, or wrong-format input — or a distributed
        # survey failure (dead worker, corrupt frame, timeout): one clear
        # line on stderr instead of a traceback, never a hang or a
        # partial result.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - manual invocation only
    sys.exit(main())
