"""Vulnerability substrate: BIND versions, known exploits, fingerprinting.

The paper combines the delegation graphs with a catalogue of well-documented
BIND vulnerabilities (ISC's BIND security matrix, February 2004) to determine
which nameservers an attacker can compromise with scripted attacks.  This
subpackage provides:

* :class:`~repro.vulns.bindversion.BindVersion` -- parsing and ordering of
  BIND version banners (``"BIND 8.2.4"`` style).
* :class:`~repro.vulns.database.VulnerabilityDatabase` -- the catalogue of
  known vulnerabilities with affected-version ranges, severity, and whether
  the hole allows full compromise or only denial of service.
* :class:`~repro.vulns.fingerprint.Fingerprinter` -- issues ``version.bind``
  CH/TXT queries over the simulated network, mirroring how the survey
  collected version banners.
"""

from repro.vulns.bindversion import BindVersion
from repro.vulns.database import (
    Vulnerability,
    VulnerabilityDatabase,
    Capability,
    Severity,
    default_database,
)
from repro.vulns.fingerprint import Fingerprinter, FingerprintResult

__all__ = [
    "BindVersion",
    "Vulnerability",
    "VulnerabilityDatabase",
    "Capability",
    "Severity",
    "default_database",
    "Fingerprinter",
    "FingerprintResult",
]
