"""Heavy-tailed samplers used by the topology generator.

The paper's TCB-size distribution is heavy tailed (median 26, mean 46, 6.5 %
above 200) and nameserver "value" follows a rank-size law spanning five
orders of magnitude.  Both shapes emerge from Zipf/Pareto-style choices in
the generator: which provider hosts a domain, how many names a domain
publishes, how popular a site is.  All samplers take an explicit
``random.Random`` so experiments stay reproducible.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class ZipfSampler:
    """Samples ranks 1..n with probability proportional to ``rank**-exponent``.

    A pre-computed cumulative table makes each draw O(log n), which matters
    when the generator assigns tens of thousands of names to providers.
    """

    def __init__(self, n: int, exponent: float = 1.0):
        if n < 1:
            raise ValueError("ZipfSampler needs at least one rank")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self, rng: random.Random) -> int:
        """Draw a rank in [1, n]."""
        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        return min(index + 1, self.n)

    def sample_index(self, rng: random.Random) -> int:
        """Draw a zero-based index in [0, n)."""
        return self.sample(rng) - 1

    def probability(self, rank: int) -> float:
        """The probability mass assigned to ``rank``."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank out of range: {rank}")
        previous = self._cumulative[rank - 2] if rank > 1 else 0.0
        return self._cumulative[rank - 1] - previous


def bounded_pareto(rng: random.Random, low: float, high: float,
                   alpha: float = 1.2) -> float:
    """Draw from a Pareto distribution truncated to [low, high].

    Used for per-domain name counts and per-provider customer counts, which
    in the real Internet span several orders of magnitude.
    """
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high")
    u = rng.random()
    low_a = low ** alpha
    high_a = high ** alpha
    value = (-(u * high_a - u * low_a - high_a) / (high_a * low_a)) ** (-1.0 / alpha)
    return min(max(value, low), high)


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """Pick one item with probability proportional to its weight."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    threshold = rng.random() * total
    running = 0.0
    for item, weight in zip(items, weights):
        running += weight
        if running >= threshold:
            return item
    return items[-1]


def truncated_geometric(rng: random.Random, p: float, minimum: int,
                        maximum: int) -> int:
    """Geometric draw (support starting at ``minimum``) capped at ``maximum``.

    Used for NS-set sizes: most zones run 2 nameservers, a tail runs many.
    """
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    if maximum < minimum:
        raise ValueError("maximum must be >= minimum")
    value = minimum
    while value < maximum and rng.random() > p:
        value += 1
    return value


def log_uniform_int(rng: random.Random, low: int, high: int) -> int:
    """Integer drawn uniformly in log-space between ``low`` and ``high``."""
    if low < 1 or high < low:
        raise ValueError("need 1 <= low <= high")
    return int(round(math.exp(rng.uniform(math.log(low), math.log(high)))))
