"""Synthetic Internet topology: the substitute for the paper's 2004 crawl.

The paper surveyed the live DNS of July 2004.  That snapshot cannot be
re-collected, so this subpackage generates a synthetic Internet with the same
*structural* properties the paper's analysis depends on:

* a delegation hierarchy rooted at 13 root servers, with gTLD and ccTLD
  registries, second-level domains, and deeper zones;
* hosting providers, ISPs, universities, enterprises, governments and small
  organisations operating nameservers, with universities forming
  mutual-secondary webs that create long transitive dependency chains;
* ccTLD registries (especially the ones the paper singles out: ua, by, sm,
  mt, my, pl, it, ...) that delegate to far-flung off-site servers;
* a BIND-version assignment per operator class calibrated so that roughly
  17 % of servers carry a well-known vulnerability, skewed towards
  educational and small-registry operators;
* a simulated web-directory crawl (Yahoo!/DMOZ stand-in) that yields the list
  of externally-visible web-server names the survey resolves, plus an
  "Alexa top-500" cohort biased towards large multi-provider enterprises.

Everything is driven by a single seeded RNG so that surveys are reproducible.
"""

from repro.topology.distributions import (
    ZipfSampler,
    bounded_pareto,
    weighted_choice,
)
from repro.topology.tlds import (
    GTLD_PROFILES,
    CCTLD_PROFILES,
    TLDProfile,
    gtld_labels,
    cctld_labels,
)
from repro.topology.operators import Organization, OperatorKind
from repro.topology.bindpolicy import BindVersionPolicy, VERSION_POOLS
from repro.topology.generator import (
    GeneratorConfig,
    InternetGenerator,
    SyntheticInternet,
)
from repro.topology.webdirectory import WebDirectory, DirectoryEntry
from repro.topology.anecdotes import AnecdotePlanter
from repro.topology.changes import (
    ChangeEvent,
    ChangeJournal,
    ChangeSet,
    apply_mutation_spec,
    zone_nameserver_union,
)
from repro.topology.churn import ChurnModel, ChurnRates

__all__ = [
    "ZipfSampler",
    "bounded_pareto",
    "weighted_choice",
    "GTLD_PROFILES",
    "CCTLD_PROFILES",
    "TLDProfile",
    "gtld_labels",
    "cctld_labels",
    "Organization",
    "OperatorKind",
    "BindVersionPolicy",
    "VERSION_POOLS",
    "GeneratorConfig",
    "InternetGenerator",
    "SyntheticInternet",
    "WebDirectory",
    "DirectoryEntry",
    "AnecdotePlanter",
    "ChangeEvent",
    "ChangeJournal",
    "ChangeSet",
    "apply_mutation_spec",
    "zone_nameserver_union",
    "ChurnModel",
    "ChurnRates",
]
