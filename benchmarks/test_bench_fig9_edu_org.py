"""Figure 9: names controlled by nameservers in .edu and .org.

Paper: universities and non-profits — operators with no fiduciary
relationship to the names they serve — control large portions of the
namespace; about 25 of the 125 highest-leverage servers are operated by
educational institutions.
"""

from conftest import PAPER
from repro.core.report import rank_series


def test_fig9_edu_org_value_rank(benchmark, paper_survey, figure_writer):
    edu_ranking = benchmark(
        lambda: paper_survey.server_value_ranking(tld_filter=("edu",)))
    org_ranking = paper_survey.server_value_ranking(tld_filter=("org",))
    analyzer = paper_survey.value_analyzer()
    summary = analyzer.summary()
    total_names = len(paper_survey.resolved_records())

    lines = [
        f"paper: ~{PAPER['high_leverage_edu']} of the "
        f"{PAPER['high_leverage_servers']} highest-leverage servers are .edu",
        f"measured: {summary['high_leverage_edu']:.0f} of "
        f"{summary['high_leverage_servers']:.0f} high-leverage servers are .edu",
        "",
        "rank -> names controlled (.edu servers):",
    ]
    edu_series = rank_series({v.hostname: v.names_controlled
                              for v in edu_ranking})
    for rank in (1, 2, 5, 10, 25, 50):
        if rank <= len(edu_series):
            lines.append(f"  rank {rank:<3d} {edu_series[rank - 1][1]:>8}")
    lines.append("")
    lines.append("top .edu servers:")
    for value in edu_ranking[:5]:
        lines.append(f"  {value.hostname} controls {value.names_controlled} "
                     f"names")
    lines.append("")
    lines.append(f".org servers ranked: {len(org_ranking)}")
    figure_writer.write("figure9_edu_org",
                        "Figure 9: names controlled by .edu/.org servers",
                        lines)

    # Shape: .edu servers exist in the value ranking, the top ones control a
    # visible share of the namespace, and .edu operators appear among the
    # overall high-leverage set.
    assert edu_ranking, ".edu nameservers must appear in the survey"
    assert edu_ranking[0].names_controlled > 0.01 * total_names
    assert summary["high_leverage_edu"] >= 1
    # The .edu ranking is itself heavily skewed.
    if len(edu_ranking) >= 10:
        assert edu_ranking[0].names_controlled > \
            5 * edu_ranking[len(edu_ranking) // 2].names_controlled


def test_fig9_university_servers_serve_foreign_zones(paper_survey,
                                                     bench_internet):
    """Universities control names outside their own domains (the reason the
    paper flags them: they serve zones they have no business relationship
    with)."""
    edu_ranking = paper_survey.server_value_ranking(tld_filter=("edu",))
    top = edu_ranking[0]
    own_names = sum(
        1 for record in paper_survey.resolved_records()
        if record.name.is_subdomain_of(top.hostname.sld or top.hostname)
        and top.hostname in record.tcb_servers)
    assert top.names_controlled > own_names, \
        "the most valuable .edu server must control names beyond its campus"
