"""Performance benchmarks for the measurement pipeline itself.

These do not correspond to a figure in the paper; they document the cost of
the substrate (resolution, delegation-graph construction, fingerprinting) so
that regressions in the simulator show up in benchmark runs.
"""

from repro.core.delegation import DelegationGraphBuilder
from repro.vulns.database import default_database
from repro.vulns.fingerprint import Fingerprinter


def test_bench_iterative_resolution(benchmark, bench_internet, paper_survey):
    """Cold-cache iterative resolution of a batch of directory names."""
    names = [record.name for record in paper_survey.resolved_records()[:50]]

    def resolve_batch():
        resolver = bench_internet.make_resolver()
        return sum(1 for name in names if resolver.resolve(name).succeeded)

    resolved = benchmark(resolve_batch)
    assert resolved == len(names)


def test_bench_delegation_graph_construction(benchmark, bench_internet,
                                             paper_survey):
    """Building delegation graphs for a batch of names (shared universe)."""
    names = [record.name for record in paper_survey.resolved_records()[:50]]

    def build_batch():
        builder = DelegationGraphBuilder(bench_internet.make_resolver())
        return [builder.build(name).tcb_size() for name in names]

    sizes = benchmark(build_batch)
    assert all(size > 0 for size in sizes)


def test_bench_fingerprint_sweep(benchmark, bench_internet):
    """version.bind fingerprinting across a slice of the server population."""
    hostnames = list(bench_internet.servers)[:300]

    def sweep():
        fingerprinter = Fingerprinter(bench_internet.network,
                                      default_database())
        fingerprinter.fingerprint_all(hostnames)
        return fingerprinter.disclosure_rate()

    rate = benchmark(sweep)
    assert 0.5 <= rate <= 1.0
