"""Exporting delegation graphs for visualisation and external analysis.

Figure 1 of the paper is a drawing of www.cs.cornell.edu's delegation graph.
This module renders the same structure for any name in three forms:

* :func:`to_ascii_tree` — an indented text rendering (what the
  ``figure1_delegation_graph.py`` example prints);
* :func:`to_dot` — Graphviz DOT, with zones drawn as boxes, nameservers as
  ellipses, and vulnerable servers highlighted;
* :func:`to_graphml` — GraphML via networkx, for Gephi/Cytoscape-style
  exploration of large survey graphs.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Mapping, Optional, Set, Union

import networkx as nx

from repro.dns.name import DomainName
from repro.core.delegation import (
    DelegationGraph,
    NAME_KIND,
    NS_KIND,
    ZONE_KIND,
    name_node,
)

PathLike = Union[str, pathlib.Path]


def _label(node) -> str:
    return str(node[1])


def to_ascii_tree(graph: DelegationGraph,
                  vulnerability_map: Optional[Mapping[DomainName, bool]] = None,
                  max_depth: int = 12) -> str:
    """Render the delegation graph as an indented dependency tree.

    Each node is printed once; dependencies that were already expanded
    elsewhere are marked with ``(see above)`` so cycles and shared
    sub-structures do not repeat.
    """
    vulnerability_map = vulnerability_map or {}
    lines: List[str] = []
    expanded: Set = set()

    def render(node, depth: int) -> None:
        indent = "  " * depth
        kind, entity = node
        suffix = ""
        if kind == NS_KIND and vulnerability_map.get(entity, False):
            suffix = "  [VULNERABLE]"
        tag = {NAME_KIND: "name", ZONE_KIND: "zone", NS_KIND: "ns"}[kind]
        if node in expanded:
            lines.append(f"{indent}{tag} {entity} (see above)")
            return
        lines.append(f"{indent}{tag} {entity}{suffix}")
        expanded.add(node)
        if depth >= max_depth:
            return
        for successor in sorted(graph.graph.successors(node),
                                key=lambda n: (n[0], str(n[1]))):
            render(successor, depth + 1)

    render(name_node(graph.target), 0)
    return "\n".join(lines)


def to_dot(graph: DelegationGraph,
           vulnerability_map: Optional[Mapping[DomainName, bool]] = None
           ) -> str:
    """Render the delegation graph as Graphviz DOT text."""
    vulnerability_map = vulnerability_map or {}
    lines = ["digraph delegation {", "  rankdir=LR;",
             '  node [fontsize=10];']
    for node in graph.graph.nodes:
        kind, entity = node
        attributes: Dict[str, str] = {"label": str(entity)}
        if kind == ZONE_KIND:
            attributes["shape"] = "box"
        elif kind == NAME_KIND:
            attributes["shape"] = "doubleoctagon"
        else:
            attributes["shape"] = "ellipse"
            if vulnerability_map.get(entity, False):
                attributes["style"] = "filled"
                attributes["fillcolor"] = "lightcoral"
        rendered = ", ".join(f'{key}="{value}"'
                             for key, value in attributes.items())
        lines.append(f'  "{kind}:{entity}" [{rendered}];')
    for source, destination in graph.graph.edges:
        lines.append(f'  "{source[0]}:{source[1]}" -> '
                     f'"{destination[0]}:{destination[1]}";')
    lines.append("}")
    return "\n".join(lines)


def to_graphml(graph: DelegationGraph, path: PathLike) -> pathlib.Path:
    """Write the graph as GraphML; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    exportable = nx.DiGraph()
    for node in graph.graph.nodes:
        exportable.add_node(f"{node[0]}:{node[1]}", kind=node[0],
                            label=str(node[1]))
    for source, destination in graph.graph.edges:
        exportable.add_edge(f"{source[0]}:{source[1]}",
                            f"{destination[0]}:{destination[1]}")
    nx.write_graphml(exportable, path)
    return path


def write_dot(graph: DelegationGraph, path: PathLike,
              vulnerability_map: Optional[Mapping[DomainName, bool]] = None
              ) -> pathlib.Path:
    """Write DOT text to ``path``; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_dot(graph, vulnerability_map), encoding="utf-8")
    return path
