"""Figure 4: average TCB size for the fifteen most-dependent ccTLDs.

Paper ordering (decreasing): ua, by, sm, mt, my, pl, it, mo, am, ie, tp, mk,
hk, tw, cn — topping out above 400 servers, with ccTLD names depending on
far more servers than gTLD names on average.
"""

from conftest import PAPER
from repro.core.report import sort_groups_descending
from repro.topology.tlds import FIGURE4_CCTLDS


def test_fig4_cctld_average_tcb(benchmark, paper_survey, figure_writer):
    averages = benchmark(
        lambda: paper_survey.mean_tcb_by_tld(kind="cctld", minimum_samples=3))
    ordered = sort_groups_descending(averages)
    top15 = ordered[:15]

    lines = [f"paper ccTLD order: {', '.join(FIGURE4_CCTLDS)}",
             f"paper mean over shown ccTLDs: {PAPER['cctld_mean_tcb']:.0f}",
             "", "measured top 15 (descending):"]
    for label, mean in top15:
        marker = "*" if label in FIGURE4_CCTLDS else " "
        lines.append(f"  {marker} {label:4s} {mean:8.1f}")
    lines.append("(* = ccTLD the paper also ranks among the worst fifteen)")
    figure_writer.write("figure4_cctld_tcb",
                        "Figure 4: mean TCB per ccTLD (worst 15)", lines)

    # Shape: the paper's worst ccTLDs dominate the measured ranking, and the
    # worst ccTLD is several times heavier than a well-run one.
    measured_top_labels = {label for label, _mean in top15}
    overlap = measured_top_labels & set(FIGURE4_CCTLDS)
    assert len(overlap) >= 6, \
        f"expected the paper's worst ccTLDs to dominate, got {measured_top_labels}"
    clean = [averages[label] for label in ("de", "uk", "jp", "se", "nl")
             if label in averages]
    assert clean, "well-run ccTLDs must appear in the survey"
    assert top15[0][1] > 3 * (sum(clean) / len(clean))


def test_fig4_cctld_exceeds_gtld_average(paper_survey):
    gtld = paper_survey.mean_tcb_by_tld(kind="gtld", minimum_samples=3)
    cctld = paper_survey.mean_tcb_by_tld(kind="cctld", minimum_samples=3)
    worst_cctld_mean = sorted(cctld.values(), reverse=True)[:15]
    assert sum(worst_cctld_mean) / len(worst_cctld_mean) > \
        sum(gtld.values()) / len(gtld)
