"""Distributed survey: socket coordinator, workers, and shard merging.

The subsystem that lets several processes (or hosts — the protocol only
sees sockets) survey one directory:

* :mod:`repro.distrib.wire` — length-prefixed frames whose bulk payloads
  are REPRO-SNAP column containers.
* :mod:`repro.distrib.worker` — ``repro-dns worker --listen``: a warm
  serial engine behind a socket.
* :mod:`repro.distrib.coordinator` — shard striping, work-order
  shipping, and the byte-identical shard-order fold; plus
  :class:`LocalWorkerFleet` for CI-friendly local multi-host simulation.
* :mod:`repro.distrib.merge` — ``repro-dns merge``: union shard snapshot
  files off the binary columns, no hydration.
* :mod:`repro.distrib.faults` — deterministic fault injection
  (:class:`FaultPlan`) for chaos-testing the recovery machinery.

Fault tolerance lives in the coordinator: :class:`RetryPolicy` governs
reconnect-and-rebuild retries with deterministic backoff,
:class:`FaultReport` tallies what recovery did, and
:class:`WorkerLostError` marks a worker that exhausted its budget (its
shard is reassigned to a survivor, preserving byte-identical folds).
"""

from repro.distrib.wire import DistribError, WireError

from repro.distrib.coordinator import (FaultReport, RetryPolicy,
                                       WorkerLostError)
from repro.distrib.faults import FaultPlan

__all__ = ["DistribError", "WireError", "FaultReport", "RetryPolicy",
           "WorkerLostError", "FaultPlan"]
