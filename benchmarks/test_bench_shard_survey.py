"""Socket-sharded survey scaling: worker counts, wall-clock, bytes on wire.

The distributed backend's pitch is that a cold survey parallelises across
worker *processes* (locally or on other hosts) while staying byte-identical
to the serial engine.  This bench times one cold survey of the benchmark
world on the serial backend and on socket fleets of 2 and 4 local workers —
worker spawn and BUILD (world regeneration) are excluded, since a long-lived
fleet pays them once — asserts the identity guarantee on every run, and
records the scaling plus the coordinator's per-shard wire accounting into
``BENCH_results.json`` under ``shard_survey``.

Acceptance floor: with 4 workers the sharded cold survey must run at least
``MIN_SPEEDUP`` (2x) faster than serial.  A floor on parallel scaling is
only meaningful when the machine can actually run the workers in parallel,
so it is asserted at full bench scale on hosts with >= 4 CPUs; smaller
hosts and the tiny CI smoke still run everything and record the numbers —
the identity assertions hold everywhere.
"""

import json
import os
import time

from repro.core.engine import EngineConfig, SurveyEngine
from repro.core.snapshot import results_to_dict
from repro.distrib.coordinator import LocalWorkerFleet

from conftest import BENCH_CONFIG

#: Cold-survey speedup floor for the 4-worker fleet (full scale, >= 4 CPUs).
MIN_SPEEDUP = 2.0

#: Worker counts the scaling table sweeps.
WORKER_COUNTS = (2, 4)


def _strip_metadata(results):
    payload = results_to_dict(results)
    payload.pop("metadata")
    return json.dumps(payload, sort_keys=True)


def test_bench_shard_survey_scaling(bench_internet, figure_writer,
                                    bench_metrics):
    popular = BENCH_CONFIG.alexa_count

    serial_engine = SurveyEngine(bench_internet, config=EngineConfig(
        backend="serial", popular_count=popular))
    started = time.perf_counter()
    serial_results = serial_engine.run()
    serial_elapsed = time.perf_counter() - started
    serial_reference = _strip_metadata(serial_results)
    names = len(serial_results.records)

    timings = {}
    wire = {}
    for count in WORKER_COUNTS:
        with LocalWorkerFleet(count) as fleet:
            engine = SurveyEngine(bench_internet, config=EngineConfig(
                backend="socket", popular_count=popular,
                worker_addrs=tuple(fleet.addresses)))
            try:
                # Connect + BUILD now, outside the timed window: a
                # long-lived fleet regenerates its world once, not per
                # survey.
                engine._ensure_coordinator()
                started = time.perf_counter()
                sharded = engine.run()
                timings[count] = time.perf_counter() - started
                wire[count] = engine._coordinator.wire_stats()
            finally:
                engine.close()
        assert _strip_metadata(sharded) == serial_reference

    speedups = {count: serial_elapsed / timings[count]
                for count in WORKER_COUNTS}
    stats = wire[max(WORKER_COUNTS)]
    cpus = os.cpu_count() or 1

    lines = [f"cpu cores                 {cpus}",
             f"names surveyed            {names}",
             f"serial                    {serial_elapsed:.3f}s "
             f"({names / serial_elapsed:.0f} names/s)"]
    for count in WORKER_COUNTS:
        lines.append(f"socket x{count} workers        {timings[count]:.3f}s "
                     f"({names / timings[count]:.0f} names/s, "
                     f"{speedups[count]:.2f}x)")
    lines.append(f"bytes on wire (x{max(WORKER_COUNTS)})    "
                 f"{stats['bytes_sent']} sent, "
                 f"{stats['bytes_received']} received")
    for shard in stats["per_worker"]:
        lines.append(f"  shard {shard['worker']:<18s} "
                     f"{shard['sent']} sent, {shard['received']} received")
    figure_writer.write("shard_survey",
                        "Socket-sharded cold survey scaling", lines)

    record = {"cpus": cpus, "names": names, "serial_s": serial_elapsed,
              "names_per_s": names / timings[max(WORKER_COUNTS)],
              "bytes_sent": stats["bytes_sent"],
              "bytes_received": stats["bytes_received"]}
    for count in WORKER_COUNTS:
        record[f"socket_{count}_s"] = timings[count]
        record[f"speedup_{count}"] = speedups[count]
    for position, shard in enumerate(stats["per_worker"]):
        record[f"shard{position}_bytes_sent"] = shard["sent"]
        record[f"shard{position}_bytes_received"] = shard["received"]
    bench_metrics.record("shard_survey", **record)

    cpus = os.cpu_count() or 1
    if not os.environ.get("REPRO_BENCH_TINY") and cpus >= 4:
        top = max(WORKER_COUNTS)
        assert speedups[top] >= MIN_SPEEDUP, (
            f"socket x{top} only {speedups[top]:.2f}x faster than serial "
            f"(floor {MIN_SPEEDUP}x)")


def test_bench_chaos_recovery(bench_internet, figure_writer, bench_metrics):
    """Cost of recovering from a mid-survey fault, vs the same clean run.

    Worker 1's first RESULT frame is truncated by a deterministic fault
    plan (its sends are OK(BUILD)=1, OK(PING)=2, RESULT=3), forcing the
    coordinator through one retry and a full reconnect-and-rebuild —
    including world regeneration, the dominant recovery cost a long-lived
    fleet would pay for a real crashed worker.  The recovered survey must
    stay byte-identical to the clean sharded run, and the FaultReport
    counters land in ``BENCH_results.json`` under ``chaos_recovery``.
    """
    popular = BENCH_CONFIG.alexa_count
    workers = 3
    runs = {}
    for label, plans in (("clean", None),
                         ("faulted", {1: "truncate:send:3"})):
        with LocalWorkerFleet(workers, fault_plans=plans) as fleet:
            engine = SurveyEngine(bench_internet, config=EngineConfig(
                backend="socket", popular_count=popular,
                worker_addrs=tuple(fleet.addresses),
                retries=2, retry_backoff=0.05))
            try:
                engine._ensure_coordinator()
                started = time.perf_counter()
                results = engine.run()
                elapsed = time.perf_counter() - started
                report = engine._coordinator.fault_report.to_dict()
            finally:
                engine.close()
        runs[label] = {"elapsed": elapsed, "report": report,
                       "reference": _strip_metadata(results)}

    assert runs["faulted"]["reference"] == runs["clean"]["reference"]
    assert runs["clean"]["report"]["retries"] == 0
    report = runs["faulted"]["report"]
    assert report["retries"] >= 1 and report["rebuilds"] >= 1
    assert not report["dead_workers"]

    clean_s = runs["clean"]["elapsed"]
    faulted_s = runs["faulted"]["elapsed"]
    overhead = faulted_s / clean_s if clean_s else float("inf")
    lines = [f"workers                   {workers}",
             f"clean sharded survey      {clean_s:.3f}s",
             f"faulted + recovered       {faulted_s:.3f}s "
             f"({overhead:.2f}x clean)",
             f"retries                   {report['retries']}",
             f"rebuilds                  {report['rebuilds']}",
             f"shard reassignments       {report['reassignments']}",
             f"recovery wall-clock       {report['recovery_seconds']}s"]
    figure_writer.write("chaos_recovery",
                        "Fault recovery overhead (truncated RESULT)", lines)
    bench_metrics.record(
        "chaos_recovery", workers=workers, clean_s=clean_s,
        faulted_s=faulted_s, recovery_overhead=overhead,
        retries=report["retries"], rebuilds=report["rebuilds"],
        reassignments=report["reassignments"],
        dead_workers=len(report["dead_workers"]),
        recovery_seconds=report["recovery_seconds"])
