"""Delta-vs-cold equivalence for the incremental re-survey subsystem.

The contract under test: after any sequence of journalled world mutations,
``SurveyEngine.run_delta(prev, journal)`` produces results byte-identical to
a cold full survey of the mutated world — on every backend, from a carried
engine or a fresh one, and from in-memory results or a loaded snapshot —
while actually re-surveying only the invalidated names.
"""

import json

import pytest

from repro.core.delta import DirtyIndex
from repro.core.engine import EngineConfig, SurveyEngine
from repro.core.snapshot import (
    diff_results,
    load_results,
    results_to_dict,
    save_results,
)
from repro.dns.name import DomainName
from repro.topology.changes import ChangeJournal, ChangeSet
from repro.topology.generator import GeneratorConfig, InternetGenerator

#: Two seeds so the equivalence matrix never passes by topological accident.
SEEDS = (20040722, 1977)

#: Passes exercised by the matrix: per-name columns (availability incl.
#: Monte-Carlo, DNSSEC) plus a finalize() cross-record reduce (value).
PASSES_BEFORE = ("availability:samples=6", "dnssec:fraction=0.4", "value")
PASSES_AFTER = ("availability:samples=6", "dnssec:fraction=0.7", "value")


def _make_internet(seed):
    config = GeneratorConfig(seed=seed, sld_count=150,
                             directory_name_count=240, university_count=32,
                             hosting_provider_count=10, isp_count=8,
                             alexa_count=40)
    return InternetGenerator(config).generate()


def _snapshot_bytes(results, drop_backend_keys=False):
    payload = results_to_dict(results)
    if drop_backend_keys:
        for key in ("backend", "workers", "shards"):
            payload["metadata"].pop(key, None)
    return json.dumps(payload, sort_keys=True)


def _mutate(internet, prev):
    """The mutation mix every scenario applies; returns (journal, markers).

    Covers each journal operation class, including a mutation *inside* a
    cyclic dependency SCC: two universities are made mutual secondaries
    (forcing the cycle regardless of how the generator grouped them) and
    one of the cycle's servers then changes software.
    """
    organizations = internet.organizations
    univ_a = organizations.by_name("univ1")
    univ_b = organizations.by_name("univ2")
    journal = ChangeJournal(internet)
    # Mutual secondaries: zone A -> ns B -> zone B -> ns A -> zone A.
    journal.add_zone_nameserver(univ_a.domain, univ_b.nameservers[0])
    journal.add_zone_nameserver(univ_b.domain, univ_a.nameservers[0])
    # A brand-new server swapped into a hosted site's delegation.
    journal.add_server("ns9.webhost1.com", software="BIND 9.2.1",
                       organization="webhost1")
    site = next(record.name.parent() for record in prev.resolved_records()
                if record.category == "small-business")
    journal.add_zone_nameserver(site, "ns9.webhost1.com")
    # A new zone cut out of an existing university zone.
    univ_c = organizations.by_name("univ3")
    department = univ_c.domain.child("math")
    journal.set_zone_nameservers(department, [univ_c.nameservers[0]])
    # DNSSEC deployment progress (0.4 -> 0.7, same seed: strict superset).
    journal.deploy_dnssec(fraction=0.7)
    # Software change on a server inside the forged SCC, plus a region move.
    journal.set_server_software(univ_a.nameservers[0], "BIND 8.2.2")
    journal.move_server_region(univ_b.nameservers[0], "eu")
    return journal, (univ_a.domain, univ_b.domain, site, department)


@pytest.fixture(scope="module", params=SEEDS)
def delta_world(request):
    """Per-seed: previous results, mutated world, journal, and a cold run."""
    internet = _make_internet(request.param)
    engine = SurveyEngine(internet,
                          config=EngineConfig(passes=PASSES_BEFORE))
    prev = engine.run()
    journal, markers = _mutate(internet, prev)
    outcome = engine.run_delta(prev, journal)
    cold = SurveyEngine(internet,
                        config=EngineConfig(passes=PASSES_AFTER)).run()
    return {
        "internet": internet, "engine": engine, "prev": prev,
        "journal": journal, "markers": markers, "outcome": outcome,
        "cold": cold,
    }


def test_carried_engine_delta_is_byte_identical(delta_world):
    """Same engine, serial backend, warm universe surgically invalidated."""
    outcome, cold = delta_world["outcome"], delta_world["cold"]
    assert _snapshot_bytes(outcome.results) == _snapshot_bytes(cold)
    assert diff_results(outcome.results, cold).is_identical


def test_delta_actually_skips_clean_names(delta_world):
    outcome, prev = delta_world["outcome"], delta_world["prev"]
    stats = outcome.stats
    assert 0 < stats.dirty_names < stats.total_names
    assert stats.patched_names == stats.total_names - stats.dirty_names
    assert stats.created_zones == 1 and stats.edited_zones >= 4
    # Clean records are patched from the previous snapshot, not recomputed:
    # the very same record objects flow through.
    clean = next(record.name for record in prev.records
                 if record.name not in outcome.dirty)
    assert outcome.results.record_for(clean) is prev.record_for(clean)


def test_mutation_touched_a_cyclic_scc(delta_world):
    """The forged mutual-secondary web is a real cycle in the universe."""
    engine = delta_world["engine"]
    univ_a, univ_b = delta_world["markers"][0], delta_world["markers"][1]
    universe = engine.builder.universe
    from repro.core.graphcore import ZONE_CODE
    node_a = universe.find_id(ZONE_CODE, univ_a)
    node_b = universe.find_id(ZONE_CODE, univ_b)
    assert node_a is not None and node_b is not None
    assert node_b in universe.reachable_ids(node_a)
    assert node_a in universe.reachable_ids(node_b)
    # Both zone closures collapsed onto the same SCC closure.
    closures = engine.builder.closures
    assert closures.closure_mask_id(node_a) == closures.closure_mask_id(node_b)


@pytest.mark.parametrize("backend", ("thread", "sharded", "process"))
def test_fresh_engine_delta_matches_cold_on_every_backend(delta_world,
                                                          backend):
    """A fresh engine on the mutated world re-surveys dirty names on any
    partitioned backend and still reproduces the cold snapshot (modulo the
    backend-config metadata keys, as in the full-run parity tests)."""
    internet, prev = delta_world["internet"], delta_world["prev"]
    journal, cold = delta_world["journal"], delta_world["cold"]
    engine = SurveyEngine(internet, config=EngineConfig(
        backend=backend, workers=3, passes=PASSES_AFTER))
    outcome = engine.run_delta(prev, journal)
    assert outcome.stats.dirty_names == delta_world["outcome"].stats.dirty_names
    assert _snapshot_bytes(outcome.results, drop_backend_keys=True) == \
        _snapshot_bytes(cold, drop_backend_keys=True)
    assert outcome.results.metadata["backend"] == backend


def test_delta_from_saved_snapshot(delta_world, tmp_path):
    """The CLI path: previous results loaded from disk, fresh engine."""
    internet, journal = delta_world["internet"], delta_world["journal"]
    cold = delta_world["cold"]
    path = save_results(delta_world["prev"], tmp_path / "prev.json")
    previous = load_results(path)
    engine = SurveyEngine(internet, config=EngineConfig(passes=PASSES_AFTER))
    outcome = engine.run_delta(previous, journal)
    assert _snapshot_bytes(outcome.results) == _snapshot_bytes(cold)


def test_rerun_after_delta_still_matches_cold(delta_world):
    """The carried engine stays coherent: a full run after the delta run
    reproduces the cold snapshot too (nothing half-invalidated lingers)."""
    engine, cold = delta_world["engine"], delta_world["cold"]
    again = engine.run()
    assert _snapshot_bytes(again) == _snapshot_bytes(cold)


def test_delta_results_carry_no_delta_metadata(delta_world):
    """Byte-identity implies bookkeeping must live in DeltaStats only."""
    outcome = delta_world["outcome"]
    assert set(outcome.results.metadata) == set(delta_world["cold"].metadata)
    stats = outcome.stats.to_dict()
    assert stats["dirty_names"] == outcome.stats.dirty_names
    assert 0.0 < stats["dirty_fraction"] < 1.0


# -- DirtyIndex unit behaviour ---------------------------------------------------------

def _change_set(**overrides):
    base = dict(edited_zones={}, created_zones=(), chain_zones=(),
                touched_hosts=frozenset(), refingerprint_hosts=frozenset(),
                added_names=frozenset(), dnssec_deployments=(),
                dirty_all=False)
    base.update(overrides)
    return ChangeSet(**base)


def test_dirty_index_maps_hosts_to_dependent_names(delta_world):
    prev = delta_world["prev"]
    index = DirtyIndex(prev)
    record = next(r for r in prev.resolved_records() if r.tcb_servers)
    host = sorted(record.tcb_servers)[0]
    dependants = index.names_depending_on(host)
    assert record.name in dependants
    expected = {r.name for r in prev.records if host in r.tcb_servers}
    dirty = index.dirty_names(_change_set(touched_hosts=frozenset((host,))))
    assert dirty == expected


def test_dirty_index_created_zone_dirties_names_below_it(delta_world):
    prev = delta_world["prev"]
    index = DirtyIndex(prev)
    record = prev.resolved_records()[0]
    apex = record.name.parent()
    dirty = index.dirty_names(_change_set(created_zones=(apex,)))
    assert record.name in dirty
    # Dirty = names below the apex, unresolved names, and names elsewhere
    # that depend on a *host* below the apex (whose resolution gains a
    # delegation level) — nothing more.
    def depends_on_host_below(name):
        return any(host.is_subdomain_of(apex)
                   for host in prev.record_for(name).tcb_servers)
    assert all(name.is_subdomain_of(apex) or
               not prev.record_for(name).resolved or
               depends_on_host_below(name) for name in dirty)


def test_dirty_index_dirty_all_falls_back_to_everything(delta_world):
    prev = delta_world["prev"]
    index = DirtyIndex(prev)
    dirty = index.dirty_names(_change_set(dirty_all=True))
    assert dirty == {record.name for record in prev.records}


def test_redelegation_to_ancestor_path_server_matches_cold():
    """Re-delegating a zone to a server that also serves an ancestor-path
    zone changes where a walk *terminates* (the shared server answers
    instead of referring), so retained ancestor chain prefixes would
    diverge from a cold walk — the invalidation must drop them."""
    internet = _make_internet(777)
    engine = SurveyEngine(internet, config=EngineConfig())
    prev = engine.run()

    victim = next(record.name.parent() for record in prev.resolved_records()
                  if record.category == "small-business")
    journal = ChangeJournal(internet)
    # Root servers serve every ancestor of every name: after this, a cold
    # walk for names under the victim zone gets an authoritative answer at
    # its very first query and records an empty cut chain.
    journal.set_zone_nameservers(victim, [DomainName("a.root-servers.net")])

    outcome = engine.run_delta(prev, journal)
    cold = SurveyEngine(internet, config=EngineConfig()).run()
    assert _snapshot_bytes(outcome.results) == _snapshot_bytes(cold)
    record = outcome.results.record_for(
        next(name for name in outcome.dirty
             if name.is_subdomain_of(victim)))
    assert record.tcb_size == cold.record_for(record.name).tcb_size


def test_new_cut_above_a_depended_on_host_dirties_external_dependants():
    """Cutting a zone above a host adds a delegation level to the host's
    own resolution, so names *elsewhere* whose TCB holds that host change
    too — the below-the-apex ancestry walk alone would miss them."""
    internet = _make_internet(888)
    univ = internet.organizations.by_name("univ1")
    host = univ.domain.child("dept").child("ns")
    setup = ChangeJournal(internet)
    setup.add_server(str(host), software="BIND 9.2.1")

    engine = SurveyEngine(internet, config=EngineConfig())
    site = next(record.name.parent() for record in engine.run().records
                if record.resolved and record.category == "small-business")
    setup.add_zone_nameserver(site, host)
    prev = SurveyEngine(internet, config=EngineConfig()).run()
    dependant = next(record.name for record in prev.resolved_records()
                     if host in record.tcb_servers)
    assert not dependant.is_subdomain_of(univ.domain)

    journal = ChangeJournal(internet)
    # The new cut's own NS must sit outside the dependant's previous TCB,
    # or the touched-host union would mask the ancestry gap under test.
    other = internet.organizations.by_name("univ2")
    assert other.nameservers[0] not in \
        prev.record_for(dependant).tcb_servers
    journal.set_zone_nameservers(univ.domain.child("dept"),
                                 [other.nameservers[0]])
    fresh = SurveyEngine(internet, config=EngineConfig())
    outcome = fresh.run_delta(prev, journal)
    cold = SurveyEngine(internet, config=EngineConfig()).run()
    assert dependant in outcome.dirty
    assert _snapshot_bytes(outcome.results) == _snapshot_bytes(cold)


def test_ghost_redelegation_round_trip_matches_cold():
    """Delegating a zone to ghosts and back: the ghost hostnames enter
    dependant TCBs through the referral chain, so both the break and the
    heal must map through the footprint machinery and stay byte-identical
    to cold surveys."""
    internet = _make_internet(666)
    engine = SurveyEngine(internet, config=EngineConfig())
    baseline = engine.run()
    victim = next(record.name.parent()
                  for record in baseline.resolved_records()
                  if record.category == "small-business")
    breaker = ChangeJournal(internet)
    breaker.set_zone_nameservers(victim, ["ghost1.nowhere.net",
                                          "ghost2.nowhere.net"])
    outcome = engine.run_delta(baseline, breaker)
    prev = outcome.results
    broken = next(record for record in prev.records
                  if record.name.is_subdomain_of(victim))
    assert DomainName("ghost1.nowhere.net") in broken.tcb_servers

    provider = internet.organizations.by_name("webhost1")
    healer = ChangeJournal(internet)
    healer.set_zone_nameservers(victim, provider.nameservers[:2])
    healed = engine.run_delta(prev, healer)
    cold = SurveyEngine(internet, config=EngineConfig()).run()
    assert broken.name in healed.dirty
    assert _snapshot_bytes(healed.results) == _snapshot_bytes(cold)


def test_zone_edits_dirty_unresolved_names():
    """Names that failed to resolve have no TCB footprint at all, so any
    delegation-fabric change must conservatively re-survey them."""
    internet = _make_internet(31337)
    engine = SurveyEngine(internet, config=EngineConfig())
    adhoc = DomainName("www.never-registered.zz")
    directory = [entry.name for entry in internet.directory.entries()[:10]]
    prev = engine.run(names=directory + [adhoc])
    assert not prev.record_for(adhoc).resolved

    index = DirtyIndex(prev)
    some_zone = directory[0].parent()
    dirty = index.dirty_names(_change_set(edited_zones={some_zone: []}))
    assert adhoc in dirty
    # Without any delegation change the unresolved name stays patched.
    assert adhoc not in index.dirty_names(_change_set())


def test_ghost_nameserver_coming_online_is_dirty(tmp_path):
    """A lame delegation's hostname starting to answer flips fingerprint
    verdicts for every name depending on it — the delta run must notice."""
    internet = _make_internet(555)
    ghost = DomainName("ghost.webhost2.com")
    provider = internet.organizations.by_name("webhost2")
    ChangeJournal(internet).add_zone_nameserver(provider.domain, ghost)

    engine = SurveyEngine(internet, config=EngineConfig())
    prev = engine.run()
    assert any(ghost in record.tcb_servers for record in prev.records)
    assert not prev.fingerprints[ghost].reachable

    journal = ChangeJournal(internet)
    journal.add_server(str(ghost), software="BIND 8.2.2")
    outcome = engine.run_delta(prev, journal)
    cold = SurveyEngine(internet, config=EngineConfig()).run()
    assert outcome.stats.dirty_names > 0
    assert _snapshot_bytes(outcome.results) == _snapshot_bytes(cold)
    assert ghost in outcome.results.vulnerable_servers


def test_empty_journal_patches_everything(delta_world):
    """No mutations -> zero dirty names, results equal the previous run
    (which equals the *pre-mutation* world only; here the world already
    mutated, so run the check against a fresh world instead)."""
    internet = _make_internet(31337)
    engine = SurveyEngine(internet, config=EngineConfig())
    prev = engine.run()
    outcome = engine.run_delta(prev, ChangeJournal(internet))
    assert outcome.stats.dirty_names == 0
    assert _snapshot_bytes(outcome.results) == _snapshot_bytes(prev)
