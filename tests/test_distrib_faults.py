"""Fault tolerance for the distributed survey: chaos, recovery, auth.

Exercises the robustness layer end to end:

* the deterministic fault-injection harness (:mod:`repro.distrib.faults`)
  — plan grammar, wire hooks, env activation;
* worker hardening — HELLO auth, PING, idle timeout, retryable ERROR
  flags, replay-poisoning isolation;
* the coordinator recovery machinery — a chaos matrix of real
  multi-process failures (kill mid-order, truncated RESULT, corrupt CRC,
  stalled worker, refused reconnect), each recovered via
  reconnect-and-rebuild or shard reassignment with the merged results
  **byte-identical to the serial backend**, cold and delta, and the
  :class:`FaultReport` counters matching the injected plan;
* the satellites — silent-broadcast misalignment guard, fleet startup
  timeout with captured stderr, and the per-worker shutdown report.
"""

import dataclasses
import json
import socket
import subprocess
import sys
import threading

import pytest

from repro.cli import main
from repro.core.engine import EngineConfig, SurveyAggregator, SurveyEngine
from repro.core.snapshot import results_to_dict
from repro.distrib import (DistribError, FaultPlan, RetryPolicy, WireError,
                           WorkerLostError)
from repro.distrib.coordinator import LocalWorkerFleet, ShardCoordinator
from repro.distrib.faults import (ENV_FAULT_PLAN, FaultAction, FaultInjector,
                                  activate_from_env, injected)
from repro.distrib.wire import (FRAME_BUILD, FRAME_ERROR, FRAME_HELLO,
                                FRAME_OK, FRAME_PING, FRAME_SHUTDOWN,
                                FRAME_SURVEY, decode_error, fault_injector,
                                hello_payload, pack_work_order, parse_address,
                                recv_frame, send_frame, verify_hello)
from repro.distrib.worker import WorkerServer
from repro.topology.changes import ChangeJournal
from repro.topology.generator import GeneratorConfig, InternetGenerator

CHAOS_CONFIG = GeneratorConfig(seed=4242, sld_count=60,
                               directory_name_count=90,
                               university_count=12, alexa_count=30,
                               hosting_provider_count=8, isp_count=6)

TINY = ["--sld-count", "60", "--directory-names", "90",
        "--universities", "12", "--seed", "4242"]


def _strip_metadata(results):
    payload = results_to_dict(results)
    payload.pop("metadata")
    return json.dumps(payload, sort_keys=True)


def _serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def _shutdown_worker(address, token=None):
    connection = socket.create_connection(parse_address(address),
                                          timeout=5.0)
    try:
        if token is not None:
            send_frame(connection, FRAME_HELLO, hello_payload(token))
            assert recv_frame(connection, timeout=5.0)[0] == FRAME_OK
        send_frame(connection, FRAME_SHUTDOWN)
        recv_frame(connection, timeout=5.0)
    finally:
        connection.close()


@pytest.fixture(scope="module")
def tiny_world():
    return InternetGenerator(CHAOS_CONFIG).generate()


# -- fault plan grammar -------------------------------------------------------------------


def test_fault_plan_parse_round_trip():
    plan = FaultPlan.parse("seed=7,kill:recv:2,corrupt:send:3,"
                           "delay:send:1:0.5")
    assert plan.seed == 7
    assert [action.to_spec() for action in plan.actions] == \
        ["kill:recv:2", "corrupt:send:3", "delay:send:1:0.5"]
    assert FaultPlan.parse(plan.to_spec()).to_spec() == plan.to_spec()


@pytest.mark.parametrize("bad, message", [
    ("explode:send:1", "invalid fault explode:send"),
    ("kill:accept:1", "invalid fault kill:accept"),
    ("kill:recv:0", "nth >= 1"),
    ("kill:recv", "expected"),
    ("kill:recv:x", "nth must be an integer"),
    ("seed=banana", "invalid fault-plan seed"),
])
def test_fault_plan_rejects_bad_specs(bad, message):
    with pytest.raises(DistribError, match=message):
        FaultPlan.parse(bad)


def test_fault_plan_rejects_duplicate_slots():
    with pytest.raises(DistribError, match="two faults at send event 3"):
        FaultPlan([FaultAction("corrupt", "send", 3),
                   FaultAction("truncate", "send", 3)])


def test_activate_from_env_installs_injector():
    try:
        assert activate_from_env({}) is None
        injector = activate_from_env({ENV_FAULT_PLAN: "kill:recv:9"})
        assert injector is fault_injector()
        assert injector.plan.actions[0].to_spec() == "kill:recv:9"
    finally:
        from repro.distrib.wire import install_fault_injector
        install_fault_injector(None)


# -- wire-level injection (in-process; kill ops stay subprocess-only) ---------------------


def test_injected_corrupt_send_surfaces_as_checksum_mismatch():
    left, right = socket.socketpair()
    try:
        with injected(FaultPlan.parse("seed=3,corrupt:send:1")) as injector:
            send_frame(left, FRAME_SURVEY, b"payload-bytes")
            assert injector.fired == {"corrupt:send:1": 1}
        with pytest.raises(WireError, match="checksum mismatch"):
            recv_frame(right, timeout=5.0, peer="worker w1")
    finally:
        left.close()
        right.close()


def test_injected_truncate_send_closes_mid_frame():
    left, right = socket.socketpair()
    try:
        with injected(FaultPlan.parse("truncate:send:1")):
            with pytest.raises(WireError, match="fault injection: frame "
                                                "truncated at send event 1"):
                send_frame(left, FRAME_SURVEY, b"x" * 64)
        with pytest.raises(WireError, match="connection closed"):
            recv_frame(right, timeout=5.0)
    finally:
        left.close()
        right.close()


def test_injected_delay_send_still_delivers():
    left, right = socket.socketpair()
    try:
        with injected(FaultPlan.parse("delay:send:1:0.05")):
            send_frame(left, FRAME_SURVEY, b"slow")
            assert recv_frame(right, timeout=5.0) == (FRAME_SURVEY, b"slow")
    finally:
        left.close()
        right.close()


def test_injector_counts_events_across_frames():
    left, right = socket.socketpair()
    try:
        with injected(FaultPlan.parse("corrupt:send:2")) as injector:
            send_frame(left, FRAME_OK)
            send_frame(left, FRAME_OK)  # corrupted (header byte flipped)
            assert injector.counters["send"] == 2
        assert recv_frame(right, timeout=5.0) == (FRAME_OK, b"")
        with pytest.raises(WireError):
            recv_frame(right, timeout=5.0)
    finally:
        left.close()
        right.close()


# -- auth handshake -----------------------------------------------------------------------


def test_verify_hello_accepts_and_rejects():
    verify_hello(hello_payload("s3cret"), "s3cret", "peer")
    with pytest.raises(WireError, match="authentication failed"):
        verify_hello(hello_payload("wrong"), "s3cret", "peer")
    with pytest.raises(WireError, match="malformed HELLO payload"):
        verify_hello(b"not json", "s3cret", "peer")


def test_authenticated_coordinator_round_trip(tiny_world):
    server = WorkerServer(auth_token="s3cret")
    thread = _serve(server)
    engine = SurveyEngine(tiny_world,
                          config=EngineConfig(popular_count=10))
    coordinator = ShardCoordinator(engine, [server.address],
                                   auth_token="s3cret")
    entries = engine._select_entries(None, 8)
    aggregator = SurveyAggregator(total=len(entries))
    coordinator.run_shards(list(enumerate(entries)), set(), aggregator)
    coordinator.close()
    assert coordinator.shutdown_report == [
        {"worker": server.address, "status": "clean"}]
    thread.join(timeout=5)


def test_worker_rejects_wrong_token_precisely(tiny_world):
    server = WorkerServer(auth_token="right")
    thread = _serve(server)
    engine = SurveyEngine(tiny_world, config=EngineConfig(popular_count=10))
    with pytest.raises(DistribError, match="authentication failed"):
        ShardCoordinator(engine, [server.address], auth_token="wrong")
    _shutdown_worker(server.address, token="right")
    thread.join(timeout=5)


def test_worker_rejects_unauthenticated_frames(tiny_world):
    server = WorkerServer(auth_token="s3cret")
    thread = _serve(server)
    engine = SurveyEngine(tiny_world, config=EngineConfig(popular_count=10))
    with pytest.raises(DistribError,
                       match="authentication required.*BUILD before HELLO"):
        ShardCoordinator(engine, [server.address])
    _shutdown_worker(server.address, token="s3cret")
    thread.join(timeout=5)


def test_tokenless_worker_rejects_hello(tiny_world):
    server = WorkerServer()
    thread = _serve(server)
    engine = SurveyEngine(tiny_world, config=EngineConfig(popular_count=10))
    with pytest.raises(DistribError,
                       match="no auth token configured"):
        ShardCoordinator(engine, [server.address], auth_token="s3cret")
    _shutdown_worker(server.address)
    thread.join(timeout=5)


# -- worker hardening ---------------------------------------------------------------------


def test_worker_answers_ping():
    server = WorkerServer()
    thread = _serve(server)
    connection = socket.create_connection(parse_address(server.address),
                                          timeout=5.0)
    try:
        send_frame(connection, FRAME_PING)
        assert recv_frame(connection, timeout=5.0) == (FRAME_OK, b"")
        send_frame(connection, FRAME_SHUTDOWN)
        assert recv_frame(connection, timeout=5.0)[0] == FRAME_OK
    finally:
        connection.close()
    thread.join(timeout=5)


def test_worker_idle_timeout_drops_connection_but_keeps_serving():
    server = WorkerServer(idle_timeout=0.3)
    thread = _serve(server)
    connection = socket.create_connection(parse_address(server.address),
                                          timeout=5.0)
    try:
        with pytest.raises(WireError, match="connection closed"):
            recv_frame(connection, timeout=5.0)
    finally:
        connection.close()
    _shutdown_worker(server.address)
    thread.join(timeout=5)


def test_worker_discards_state_on_poisoned_replay():
    """A failed mutation replay must not leave a half-mutated world: the
    worker reports a *retryable* ERROR and demands a re-BUILD."""
    server = WorkerServer()
    thread = _serve(server)
    build = json.dumps({
        "generator": dataclasses.asdict(CHAOS_CONFIG),
        "engine": {"popular_count": 5, "include_bottleneck": True,
                   "use_glue": True, "passes": []},
    }).encode("utf-8")
    connection = socket.create_connection(parse_address(server.address),
                                          timeout=5.0)
    try:
        send_frame(connection, FRAME_BUILD, build)
        assert recv_frame(connection, timeout=60.0)[0] == FRAME_OK
        send_frame(connection, FRAME_SURVEY, pack_work_order(
            [0], ["site1.com"], [False], ["definitely-not-a-spec"], []))
        frame_type, payload = recv_frame(connection, timeout=10.0)
        assert frame_type == FRAME_ERROR
        info = decode_error(payload, "worker")
        assert info.retryable
        assert "mutation replay failed" in info.message
        assert "re-BUILD required" in info.message
        # The engine was discarded: surveying now needs a fresh BUILD.
        send_frame(connection, FRAME_SURVEY, pack_work_order(
            [0], ["site1.com"], [False], [], []))
        frame_type, payload = recv_frame(connection, timeout=10.0)
        assert frame_type == FRAME_ERROR
        assert "SURVEY before BUILD" in \
            decode_error(payload, "worker").message
        send_frame(connection, FRAME_SHUTDOWN)
        assert recv_frame(connection, timeout=5.0)[0] == FRAME_OK
    finally:
        connection.close()
    thread.join(timeout=5)


# -- satellites: silent broadcast, fleet startup, shutdown report -------------------------


class _OkWorker:
    """Accepts one connection and OKs every frame (no real engine)."""

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        host, port = self._listener.getsockname()[:2]
        self.address = f"{host}:{port}"
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        connection, _peer = self._listener.accept()
        try:
            while True:
                recv_frame(connection, timeout=10.0)
                send_frame(connection, FRAME_OK)
        except (WireError, OSError):
            pass
        finally:
            connection.close()
            self._listener.close()

    def join(self):
        self._thread.join(timeout=5)


def test_broadcast_raises_on_silent_worker(tiny_world):
    """A missing reply without an exception must abort, never compact
    the reply list (which would fold shard k at position j)."""
    worker = _OkWorker()
    engine = SurveyEngine(tiny_world, config=EngineConfig(popular_count=10))
    coordinator = ShardCoordinator(engine, [worker.address])
    coordinator._request = lambda *args, **kwargs: None
    with pytest.raises(DistribError,
                       match="neither a reply nor an error"):
        coordinator._broadcast(FRAME_SURVEY, [b""], FRAME_OK)
    assert coordinator._closed
    worker.join()


def _spawn_stub(script):
    def spawn(self, index, address):
        return subprocess.Popen([sys.executable, "-c", script],
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE)
    return spawn


def test_fleet_startup_times_out_on_silent_worker(monkeypatch):
    monkeypatch.setattr(LocalWorkerFleet, "_spawn",
                        _spawn_stub("import time; time.sleep(30)"))
    fleet = LocalWorkerFleet(1, startup_timeout=0.5)
    with pytest.raises(DistribError,
                       match="did not report a listen address"):
        fleet.start()
    assert fleet.addresses == [] and fleet._processes == []


def test_fleet_startup_reports_stderr_of_dead_worker(monkeypatch):
    monkeypatch.setattr(LocalWorkerFleet, "_spawn", _spawn_stub(
        "import sys; sys.stderr.write('bad flag value'); sys.exit(3)"))
    fleet = LocalWorkerFleet(1, startup_timeout=10.0)
    with pytest.raises(DistribError,
                       match="failed to start.*bad flag value"):
        fleet.start()


def test_shutdown_report_records_unreachable_worker(tiny_world):
    server = WorkerServer()
    thread = _serve(server)
    engine = SurveyEngine(tiny_world, config=EngineConfig(popular_count=10))
    coordinator = ShardCoordinator(engine, [server.address])
    coordinator._drop(0)  # the connection died before close()
    coordinator.close()
    assert coordinator.shutdown_report == [
        {"worker": server.address, "status": "unreachable"}]
    _shutdown_worker(server.address)
    thread.join(timeout=5)


# -- retry policy -------------------------------------------------------------------------


def test_retry_policy_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(retries=3, backoff_base=0.25, backoff_max=2.0,
                         seed=11)
    series = [policy.backoff("w1", attempt) for attempt in range(6)]
    assert series == [policy.backoff("w1", attempt)
                      for attempt in range(6)]
    assert all(delay <= 2.0 for delay in series)
    assert all(delay >= 0.125 for delay in series)  # >= cap/2 jitter floor
    assert policy.backoff("w1", 0) != policy.backoff("w2", 0)


def test_min_workers_cannot_exceed_fleet(tiny_world):
    engine = SurveyEngine(tiny_world, config=EngineConfig(popular_count=10))
    with pytest.raises(DistribError, match="min-workers 5 exceeds"):
        ShardCoordinator(engine, ["127.0.0.1:1"], min_workers=5,
                         retry_policy=RetryPolicy(retries=1))


# -- the chaos matrix: real multi-process failures, byte-identical recovery ---------------


@pytest.fixture(scope="module")
def chaos_reference():
    """Serial cold + delta results every chaos case must match exactly."""
    world = InternetGenerator(CHAOS_CONFIG).generate()
    engine = SurveyEngine(world, config=EngineConfig(backend="serial",
                                                     popular_count=20))
    cold = engine.run()
    victim = next(host for record in cold.resolved_records()
                  for host in sorted(record.tcb_servers, key=str))
    journal = ChangeJournal(world)
    journal.set_server_software(victim, "BIND 8.2.2")
    outcome = engine.run_delta(cold, journal)
    return {"cold": _strip_metadata(cold),
            "delta": _strip_metadata(outcome.results),
            "dirty": outcome.dirty, "victim": victim}


def _check_kill(report, fleet):
    # Budget exhausted against a dead process: every retry was a refused
    # reconnect, then the shard moved to a survivor.
    assert report.dead_workers == [fleet.addresses[1]]
    assert report.retries == 2
    assert report.reassignments == 1
    assert report.rebuilds == 0


def _check_truncate(report, fleet):
    assert report.dead_workers == []
    assert report.retries == 1
    assert report.rebuilds == 1
    assert report.reassignments == 0


def _check_stall(report, fleet):
    assert report.dead_workers == []
    assert report.retries >= 1
    assert report.rebuilds >= 1
    assert report.reassignments == 0


def _check_refuse(report, fleet):
    # Retry 1 hits the refused accept; retry 2 rebuilds and completes.
    assert report.dead_workers == []
    assert report.retries == 2
    assert report.rebuilds == 1
    assert report.reassignments == 0


# Worker 1's process-global wire counters in a tokenless recovery run:
# recv 1=BUILD, 2=PING, 3=first SURVEY; send 1=OK, 2=OK, 3=first RESULT.
CHAOS_CASES = {
    "kill-mid-order": ("kill:recv:3", 60.0, _check_kill),
    "truncated-result": ("truncate:send:3", 60.0, _check_truncate),
    "corrupt-result-crc": ("seed=9,corrupt:send:3", 60.0, _check_truncate),
    "stalled-worker": ("delay:send:3:2.5", 0.75, _check_stall),
    "refused-reconnect": ("truncate:send:3,refuse:accept:2", 60.0,
                          _check_refuse),
}


@pytest.mark.parametrize("case", sorted(CHAOS_CASES))
def test_chaos_recovery_is_byte_identical(case, chaos_reference):
    plan, response_timeout, check = CHAOS_CASES[case]
    world = InternetGenerator(CHAOS_CONFIG).generate()
    with LocalWorkerFleet(3, fault_plans={1: plan}) as fleet:
        engine = SurveyEngine(world, config=EngineConfig(
            backend="socket", popular_count=20,
            worker_addrs=tuple(fleet.addresses),
            retries=2, retry_backoff=0.05,
            response_timeout=response_timeout, build_timeout=120.0))
        try:
            cold = engine.run()
            report = engine._coordinator.fault_report
            assert _strip_metadata(cold) == chaos_reference["cold"]
            check(report, fleet)
            assert cold.metadata["fault_report"]["retries"] >= 1
            # Delta on the recovered warm state: the plan is exhausted,
            # yet results must still match the serial delta engine.
            journal = ChangeJournal(world)
            journal.set_server_software(chaos_reference["victim"],
                                        "BIND 8.2.2")
            outcome = engine.run_delta(cold, journal)
            assert outcome.dirty == chaos_reference["dirty"]
            assert _strip_metadata(outcome.results) == \
                chaos_reference["delta"]
        finally:
            engine.close()


def test_worker_rejoin_after_kill_and_respawn(chaos_reference):
    """kill + respawn on the same port: the coordinator's next exchange
    reconnects, re-BUILDs, and the rerun stays byte-identical."""
    world = InternetGenerator(CHAOS_CONFIG).generate()
    with LocalWorkerFleet(2) as fleet:
        engine = SurveyEngine(world, config=EngineConfig(
            backend="socket", popular_count=20,
            worker_addrs=tuple(fleet.addresses),
            retries=3, retry_backoff=0.05))
        try:
            first = engine.run()
            assert _strip_metadata(first) == chaos_reference["cold"]
            address = fleet.addresses[1]
            fleet.kill(1)
            assert fleet.respawn(1) == address
            second = engine.run()
            assert _strip_metadata(second) == chaos_reference["cold"]
            report = engine._coordinator.fault_report
            assert report.dead_workers == []
            assert report.rebuilds >= 1
            assert "fault_report" not in first.metadata
        finally:
            engine.close()


def test_min_workers_floor_aborts_precisely():
    world = InternetGenerator(CHAOS_CONFIG).generate()
    with LocalWorkerFleet(2, fault_plans={1: "kill:recv:3"}) as fleet:
        engine = SurveyEngine(world, config=EngineConfig(
            backend="socket", popular_count=20,
            worker_addrs=tuple(fleet.addresses),
            retries=1, retry_backoff=0.05, min_workers=2))
        try:
            with pytest.raises(DistribError,
                               match="below the min-workers floor 2"):
                engine.run()
        finally:
            engine.close()


# -- CLI end to end: spawned fleet + auth + fault plan + recovery line --------------------


def test_cli_chaos_survey_recovers_and_matches_serial(tmp_path, capsys):
    serial_path = tmp_path / "serial.rsnap"
    assert main(["survey", *TINY, "--output", str(serial_path),
                 "--format", "binary"]) == 0
    capsys.readouterr()
    chaos_path = tmp_path / "chaos.rsnap"
    # With auth, worker 1's sends are OK(HELLO)=1, OK(BUILD)=2,
    # OK(PING)=3, first RESULT=4 — truncate the RESULT.
    assert main(["survey", *TINY, "--backend", "socket", "--workers", "3",
                 "--retries", "2", "--auth-token", "s3cret",
                 "--fault-plan", "1=truncate:send:4",
                 "--output", str(chaos_path), "--format", "binary"]) == 0
    out = capsys.readouterr().out
    assert "fault recovery:" in out
    assert main(["diff", str(serial_path), str(chaos_path)]) == 0
    assert " 0 changed" in capsys.readouterr().out


def test_cli_rejects_bad_fault_plan_flags(capsys):
    assert main(["survey", *TINY, "--backend", "socket", "--workers", "2",
                 "--fault-plan", "nonsense"]) == 2
    assert "expected I=SPEC" in capsys.readouterr().err
    assert main(["survey", *TINY, "--backend", "socket", "--workers", "2",
                 "--fault-plan", "7=kill:recv:1"]) == 2
    assert "out of range" in capsys.readouterr().err
    assert main(["survey", *TINY, "--fault-plan", "0=kill:recv:1"]) == 2
    assert "--fault-plan only applies" in capsys.readouterr().err
    assert main(["survey", *TINY, "--backend", "socket", "--workers", "2",
                 "--min-workers", "3"]) == 2
    assert "--min-workers 3 exceeds" in capsys.readouterr().err
