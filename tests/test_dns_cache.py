"""Tests for :mod:`repro.dns.cache`."""

from hypothesis import given, strategies as st

from repro.dns.cache import CacheEntry, ResolverCache
from repro.dns.rdtypes import RCode, RRType
from repro.dns.records import ResourceRecord


def _a_record(name="www.example.com", address="10.0.0.1", ttl=300):
    return ResourceRecord.create(name, RRType.A, address, ttl=ttl)


def test_miss_then_hit():
    cache = ResolverCache()
    assert cache.get("www.example.com", now=0.0) is None
    cache.put("www.example.com", RRType.A, [_a_record()], now=0.0)
    entry = cache.get("www.example.com", now=1.0)
    assert entry is not None
    assert not entry.is_negative
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_entry_expires_after_ttl():
    cache = ResolverCache()
    cache.put("www.example.com", RRType.A, [_a_record(ttl=60)], now=0.0)
    assert cache.get("www.example.com", now=59.0) is not None
    assert cache.get("www.example.com", now=60.0) is None
    assert cache.stats.expirations == 1


def test_ttl_uses_minimum_of_records():
    cache = ResolverCache()
    records = [_a_record(address="10.0.0.1", ttl=300),
               _a_record(address="10.0.0.2", ttl=30)]
    entry = cache.put("www.example.com", RRType.A, records, now=0.0)
    assert entry.expires_at == 30.0


def test_negative_cache_uses_negative_ttl():
    cache = ResolverCache(negative_ttl=120)
    entry = cache.put("missing.example.com", RRType.A, [],
                      rcode=RCode.NXDOMAIN, now=0.0)
    assert entry.is_negative
    assert entry.expires_at == 120.0
    cached = cache.get("missing.example.com", now=10.0)
    assert cached is not None
    assert cached.rcode is RCode.NXDOMAIN


def test_keys_distinguish_types():
    cache = ResolverCache()
    cache.put("example.com", RRType.A, [_a_record("example.com")], now=0.0)
    assert cache.get("example.com", RRType.NS, now=0.0) is None
    assert cache.get("example.com", RRType.A, now=0.0) is not None


def test_keys_are_case_insensitive():
    cache = ResolverCache()
    cache.put("Example.COM", RRType.A, [_a_record("example.com")], now=0.0)
    assert cache.get("example.com", now=0.0) is not None


def test_flush_clears_entries_but_not_stats():
    cache = ResolverCache()
    cache.put("example.com", RRType.A, [_a_record("example.com")], now=0.0)
    cache.get("example.com", now=0.0)
    cache.flush()
    assert len(cache) == 0
    assert cache.stats.hits == 1


def test_purge_expired_returns_count():
    cache = ResolverCache()
    cache.put("a.com", RRType.A, [_a_record("a.com", ttl=10)], now=0.0)
    cache.put("b.com", RRType.A, [_a_record("b.com", ttl=1000)], now=0.0)
    assert cache.purge_expired(now=100.0) == 1
    assert len(cache) == 1


def test_eviction_keeps_cache_bounded():
    cache = ResolverCache(max_entries=10)
    for index in range(25):
        cache.put(f"site{index}.com", RRType.A,
                  [_a_record(f"site{index}.com", ttl=1000)], now=float(index))
    assert len(cache) <= 10
    # The most recently inserted entry survives eviction.
    assert cache.get("site24.com", now=25.0) is not None


def test_hit_rate():
    cache = ResolverCache()
    cache.put("example.com", RRType.A, [_a_record("example.com")], now=0.0)
    cache.get("example.com", now=0.0)
    cache.get("missing.com", now=0.0)
    assert cache.stats.hit_rate == 0.5


def test_cache_entry_expiry_predicate():
    entry = CacheEntry(records=[], rcode=RCode.NOERROR, inserted_at=0.0,
                       expires_at=10.0)
    assert not entry.is_expired(9.9)
    assert entry.is_expired(10.0)


@given(st.integers(min_value=1, max_value=10000),
       st.floats(min_value=0, max_value=20000))
def test_entry_never_served_after_expiry(ttl, query_time):
    cache = ResolverCache()
    cache.put("example.com", RRType.A, [_a_record(ttl=ttl)], now=0.0)
    entry = cache.get("example.com", now=query_time)
    if query_time >= ttl:
        assert entry is None
    else:
        assert entry is not None


def test_cache_clone_snapshots_entries():
    cache = ResolverCache(max_entries=500, negative_ttl=123)
    cache.put("example.com", RRType.A, [_a_record(ttl=60)], now=0.0)
    twin = cache.clone()
    assert len(twin) == len(cache) == 1
    assert twin.max_entries == 500
    assert twin.negative_ttl == 123
    # Mutating the clone leaves the original untouched.
    twin.put("other.com", RRType.A, [_a_record(ttl=60)], now=0.0)
    assert len(twin) == 2
    assert len(cache) == 1
    assert twin.stats.insertions == 1
