#!/usr/bin/env python
"""Quickstart: generate a synthetic Internet, survey it, print the findings.

This walks the full pipeline of the reproduction in ~30 lines of user code:

1. build a synthetic Internet (the stand-in for the July 2004 DNS);
2. run the survey: resolve every directory name, build its delegation graph,
   fingerprint the nameservers, and analyse TCBs / bottlenecks;
3. print the paper's headline statistics and the per-TLD tables.

Run it with::

    python examples/quickstart.py            # default (a couple of minutes)
    python examples/quickstart.py --small    # ~15 seconds
    python examples/quickstart.py --backend process --workers 4

The survey runs through the staged engine facade: pick any execution
backend (all of them produce byte-identical results), and watch progress
stream to stderr while it runs.
"""

from __future__ import annotations

import argparse

from repro import GeneratorConfig, InternetGenerator, Survey
from repro.cli import ProgressPrinter
from repro.core.engine import BACKENDS
from repro.core.report import format_table, sort_groups_descending


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true",
                        help="use a small topology for a fast demo run")
    parser.add_argument("--seed", type=int, default=20040722,
                        help="RNG seed for the synthetic Internet")
    parser.add_argument("--backend", default="serial", choices=BACKENDS,
                        help="survey execution backend")
    parser.add_argument("--workers", type=int, default=2,
                        help="shard count for the partitioned backends")
    return parser.parse_args()


def make_config(args: argparse.Namespace) -> GeneratorConfig:
    if args.small:
        return GeneratorConfig(seed=args.seed, sld_count=400,
                               directory_name_count=650,
                               university_count=70, hosting_provider_count=18,
                               isp_count=12, alexa_count=100)
    return GeneratorConfig(seed=args.seed)


def main() -> None:
    args = parse_args()
    config = make_config(args)

    print("Generating the synthetic Internet ...")
    internet = InternetGenerator(config).generate()
    summary = internet.summary()
    print(f"  {summary['servers']} nameservers, {summary['zones']} zones, "
          f"{summary['directory_names']} web-directory names across "
          f"{summary['tlds']} TLDs")

    print(f"Running the survey (resolve, fingerprint, analyse) on the "
          f"{args.backend!r} backend ...")
    survey = Survey(internet, popular_count=min(500, len(internet.directory)),
                    backend=args.backend, workers=args.workers)
    results = survey.run(progress=ProgressPrinter())

    print("\nHeadline statistics (compare with Section 3 of the paper):")
    headline = results.headline()
    rows = [(key, f"{value:,.3f}") for key, value in sorted(headline.items())]
    print(format_table(rows, headers=("statistic", "value")))

    print("\nMean TCB size per gTLD (Figure 3):")
    gtld = sort_groups_descending(results.mean_tcb_by_tld("gtld"))
    print(format_table([(label, f"{mean:.1f}") for label, mean in gtld],
                       headers=("gTLD", "mean TCB")))

    print("\nMean TCB size for the worst ccTLDs (Figure 4):")
    cctld = sort_groups_descending(results.mean_tcb_by_tld("cctld"))[:15]
    print(format_table([(label, f"{mean:.1f}") for label, mean in cctld],
                       headers=("ccTLD", "mean TCB")))

    print("\nMost valuable nameservers (Figure 8):")
    ranking = results.server_value_ranking()[:10]
    print(format_table(
        [(value.rank, str(value.hostname), value.names_controlled,
          "yes" if value.vulnerable else "no") for value in ranking],
        headers=("rank", "nameserver", "names controlled", "vulnerable")))

    hijackable = results.fraction_completely_hijackable()
    print(f"\n{hijackable:.0%} of surveyed names can be *completely* hijacked "
          f"by compromising only servers with well-documented BIND holes "
          f"(paper: ~30%).")


if __name__ == "__main__":
    main()
