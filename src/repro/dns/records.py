"""Resource records and RRSets.

A :class:`ResourceRecord` is the atom of DNS data: owner name, type, class,
TTL, and rdata.  An :class:`RRSet` groups all records sharing the same owner
name, type, and class — the unit in which DNS answers are returned and
cached.

Rdata is stored in a light-weight normalised form:

* ``A`` / ``AAAA`` records store the address as a string.
* ``NS``, ``CNAME``, ``PTR``, ``MX`` targets are stored as
  :class:`~repro.dns.name.DomainName` so that delegation chasing never has to
  re-parse names.
* ``TXT`` records store the text verbatim (used for ``version.bind``).
* ``SOA`` records store a :class:`SOAData` tuple.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.dns.errors import ZoneError
from repro.dns.name import DomainName, NameLike
from repro.dns.rdtypes import DEFAULT_TTL, RRClass, RRType


@dataclasses.dataclass(frozen=True)
class SOAData:
    """Start-of-authority rdata."""

    mname: DomainName
    rname: DomainName
    serial: int = 1
    refresh: int = 7200
    retry: int = 3600
    expire: int = 1209600
    minimum: int = 3600

    def __str__(self) -> str:
        return (f"{self.mname} {self.rname} {self.serial} {self.refresh} "
                f"{self.retry} {self.expire} {self.minimum}")


@dataclasses.dataclass(frozen=True)
class MXData:
    """Mail-exchanger rdata."""

    preference: int
    exchange: DomainName

    def __str__(self) -> str:
        return f"{self.preference} {self.exchange}"


RData = Union[str, DomainName, SOAData, MXData]

#: Types whose rdata is a domain name.
_NAME_RDATA_TYPES = frozenset({RRType.NS, RRType.CNAME, RRType.PTR})


def normalize_rdata(rtype: RRType, rdata: object) -> RData:
    """Coerce ``rdata`` into the canonical representation for ``rtype``."""
    if rtype in _NAME_RDATA_TYPES:
        return DomainName(rdata)  # type: ignore[arg-type]
    if rtype is RRType.MX:
        if isinstance(rdata, MXData):
            return rdata
        if isinstance(rdata, tuple) and len(rdata) == 2:
            return MXData(int(rdata[0]), DomainName(rdata[1]))
        raise ZoneError(f"MX rdata must be MXData or (pref, name): {rdata!r}")
    if rtype is RRType.SOA:
        if isinstance(rdata, SOAData):
            return rdata
        raise ZoneError(f"SOA rdata must be SOAData: {rdata!r}")
    if rtype in (RRType.A, RRType.AAAA, RRType.TXT):
        return str(rdata)
    return str(rdata)


@dataclasses.dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record.

    Instances are immutable and hashable so they can be stored in sets, which
    is how :class:`RRSet` deduplicates records.
    """

    name: DomainName
    rtype: RRType
    rdata: RData
    ttl: int = DEFAULT_TTL
    rclass: RRClass = RRClass.IN

    @classmethod
    def create(cls, name: NameLike, rtype: Union[RRType, str], rdata: object,
               ttl: int = DEFAULT_TTL,
               rclass: Union[RRClass, str] = RRClass.IN) -> "ResourceRecord":
        """Build a record from loosely-typed arguments.

        This is the constructor used by the topology generator and by tests;
        it accepts strings for every field and normalises them.
        """
        if isinstance(rtype, str):
            rtype = RRType.from_text(rtype)
        if isinstance(rclass, str):
            rclass = RRClass.from_text(rclass)
        if ttl < 0:
            raise ZoneError(f"negative TTL: {ttl}")
        return cls(name=DomainName(name), rtype=rtype,
                   rdata=normalize_rdata(rtype, rdata), ttl=ttl, rclass=rclass)

    @property
    def target(self) -> Optional[DomainName]:
        """The domain name the rdata points at, if any.

        For NS/CNAME/PTR records this is the rdata itself; for MX it is the
        exchange host.  Address and text records return ``None``.
        """
        if isinstance(self.rdata, DomainName):
            return self.rdata
        if isinstance(self.rdata, MXData):
            return self.rdata.exchange
        return None

    def key(self) -> Tuple[DomainName, RRType, RRClass]:
        """The (owner, type, class) triple identifying this record's RRSet."""
        return (self.name, self.rtype, self.rclass)

    def to_text(self) -> str:
        """Zone-file style presentation (``name ttl class type rdata``)."""
        return f"{self.name} {self.ttl} {self.rclass} {self.rtype} {self.rdata}"

    def __str__(self) -> str:
        return self.to_text()


class RRSet:
    """All resource records sharing an owner name, type, and class.

    The set preserves insertion order (which models the preferential order of
    delegations mentioned in the paper) while rejecting exact duplicates.
    """

    __slots__ = ("name", "rtype", "rclass", "_records")

    def __init__(self, name: NameLike, rtype: Union[RRType, str],
                 rclass: Union[RRClass, str] = RRClass.IN,
                 records: Optional[Iterable[ResourceRecord]] = None):
        self.name = DomainName(name)
        self.rtype = RRType.from_text(rtype) if isinstance(rtype, str) else rtype
        self.rclass = (RRClass.from_text(rclass)
                       if isinstance(rclass, str) else rclass)
        self._records: List[ResourceRecord] = []
        for record in records or ():
            self.add(record)

    def add(self, record: ResourceRecord) -> None:
        """Add a record, enforcing that it belongs to this RRSet."""
        if record.key() != (self.name, self.rtype, self.rclass):
            raise ZoneError(
                f"record {record} does not belong to RRSet "
                f"({self.name}, {self.rtype}, {self.rclass})")
        if record not in self._records:
            self._records.append(record)

    def __iter__(self) -> Iterator[ResourceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def __contains__(self, record: ResourceRecord) -> bool:
        return record in self._records

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RRSet):
            return NotImplemented
        return (self.name, self.rtype, self.rclass) == \
            (other.name, other.rtype, other.rclass) and \
            set(self._records) == set(other._records)

    @property
    def records(self) -> Tuple[ResourceRecord, ...]:
        """The records in insertion order."""
        return tuple(self._records)

    @property
    def ttl(self) -> int:
        """The minimum TTL across records (the cacheable lifetime)."""
        return min((r.ttl for r in self._records), default=DEFAULT_TTL)

    def targets(self) -> List[DomainName]:
        """Domain-name targets of every record that has one (NS, CNAME, MX)."""
        return [r.target for r in self._records if r.target is not None]

    def addresses(self) -> List[str]:
        """Address strings of every A/AAAA record in the set."""
        return [str(r.rdata) for r in self._records
                if r.rtype in (RRType.A, RRType.AAAA)]

    def __repr__(self) -> str:
        return (f"RRSet({self.name!s}, {self.rtype!s}, "
                f"{len(self._records)} records)")
