"""Authoritative zones and delegations.

A :class:`Zone` owns a contiguous region of the namespace rooted at its apex.
It stores authoritative data for names inside that region and *delegations*
for child zones: the NS records naming the child's authoritative servers,
together with any glue addresses for nameservers that live inside the child
zone (glue is required when the server name would otherwise be unresolvable
without first consulting the child — the classic chicken-and-egg case).

The paper's central observation is about what happens when the delegation's
nameserver names live *outside* the delegating zone: resolving them requires
entirely separate delegation chains, which is how transitive trust spreads.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.dns.errors import ZoneError
from repro.dns.name import DomainName, NameLike
from repro.dns.rdtypes import DEFAULT_TTL, RRClass, RRType
from repro.dns.records import ResourceRecord, RRSet, SOAData


@dataclasses.dataclass
class Delegation:
    """A delegation from a parent zone to a child zone.

    Attributes
    ----------
    child:
        Apex of the delegated child zone.
    nameservers:
        Hostnames of the child's authoritative nameservers, in the parent's
        preferential order.
    glue:
        Mapping from nameserver hostname to its glue addresses.  Only
        in-bailiwick nameservers normally carry glue; the paper notes that
        glue is a lookup optimisation, not an authoritative statement, so the
        delegation-graph analysis can be configured to ignore it.
    """

    child: DomainName
    nameservers: List[DomainName] = dataclasses.field(default_factory=list)
    glue: Dict[DomainName, List[str]] = dataclasses.field(default_factory=dict)

    def add_nameserver(self, nameserver: NameLike,
                       glue_addresses: Optional[Iterable[str]] = None) -> None:
        """Add a nameserver (and optional glue) to the delegation."""
        nameserver = DomainName(nameserver)
        if nameserver not in self.nameservers:
            self.nameservers.append(nameserver)
        if glue_addresses:
            self.glue.setdefault(nameserver, [])
            for address in glue_addresses:
                if address not in self.glue[nameserver]:
                    self.glue[nameserver].append(address)

    def set_nameservers(self, nameservers: Iterable[NameLike],
                        glue: Optional[Dict[DomainName, List[str]]] = None
                        ) -> None:
        """Replace the delegation's NS set (and glue) wholesale.

        The change-journal path for re-delegating an existing child: the
        new preferential order is exactly the given order, and stale glue
        for dropped servers is discarded.
        """
        self.nameservers = []
        self.glue = {}
        glue = glue or {}
        for nameserver in nameservers:
            nameserver = DomainName(nameserver)
            self.add_nameserver(nameserver, glue.get(nameserver))

    def ns_records(self, ttl: int = DEFAULT_TTL) -> List[ResourceRecord]:
        """The delegation as NS resource records (for referral responses)."""
        return [ResourceRecord.create(self.child, RRType.NS, ns, ttl=ttl)
                for ns in self.nameservers]

    def glue_records(self, ttl: int = DEFAULT_TTL) -> List[ResourceRecord]:
        """The glue addresses as A resource records."""
        records = []
        for nameserver, addresses in self.glue.items():
            for address in addresses:
                records.append(
                    ResourceRecord.create(nameserver, RRType.A, address, ttl=ttl))
        return records

    def offsite_nameservers(self) -> List[DomainName]:
        """Nameservers whose own names are *not* under the child apex.

        These are exactly the delegations that force additional resolution
        work and extend the trusted computing base beyond the child domain.
        """
        return [ns for ns in self.nameservers
                if not ns.is_subdomain_of(self.child)]


class Zone:
    """An authoritative DNS zone.

    Parameters
    ----------
    apex:
        The zone's apex (origin) name, e.g. ``cornell.edu``.
    soa:
        Optional start-of-authority data; a default SOA is synthesised if
        omitted so that every zone is well-formed.
    """

    def __init__(self, apex: NameLike, soa: Optional[SOAData] = None):
        self.apex = DomainName(apex)
        self._rrsets: Dict[Tuple[DomainName, RRType, RRClass], RRSet] = {}
        self._delegations: Dict[DomainName, Delegation] = {}
        if soa is None:
            soa = SOAData(mname=self.apex.child("ns1") if not self.apex.is_root
                          else DomainName("a.root-servers.net"),
                          rname=DomainName("hostmaster").concatenate(self.apex)
                          if not self.apex.is_root
                          else DomainName("hostmaster.root-servers.net"))
        self.add_record(ResourceRecord.create(self.apex, RRType.SOA, soa))

    # -- record management -----------------------------------------------------

    def add_record(self, record: ResourceRecord) -> None:
        """Add an authoritative record to the zone.

        Raises :class:`ZoneError` if the owner name is outside the zone.
        """
        if not record.name.is_subdomain_of(self.apex):
            raise ZoneError(
                f"record owner {record.name} is outside zone {self.apex}")
        key = record.key()
        rrset = self._rrsets.get(key)
        if rrset is None:
            rrset = RRSet(record.name, record.rtype, record.rclass)
            self._rrsets[key] = rrset
        rrset.add(record)

    def add(self, name: NameLike, rtype: Union[RRType, str], rdata: object,
            ttl: int = DEFAULT_TTL) -> ResourceRecord:
        """Convenience wrapper: build and add a record in one call."""
        record = ResourceRecord.create(name, rtype, rdata, ttl=ttl)
        self.add_record(record)
        return record

    def get_rrset(self, name: NameLike, rtype: Union[RRType, str],
                  rclass: Union[RRClass, str] = RRClass.IN) -> Optional[RRSet]:
        """Return the RRSet for (name, type, class), or ``None``."""
        if isinstance(rtype, str):
            rtype = RRType.from_text(rtype)
        if isinstance(rclass, str):
            rclass = RRClass.from_text(rclass)
        return self._rrsets.get((DomainName(name), rtype, rclass))

    def has_name(self, name: NameLike) -> bool:
        """True if the zone holds any record (of any type) at ``name``."""
        name = DomainName(name)
        return any(key[0] == name for key in self._rrsets)

    def iter_rrsets(self) -> Iterator[RRSet]:
        """Iterate over every RRSet in the zone."""
        return iter(self._rrsets.values())

    def iter_records(self) -> Iterator[ResourceRecord]:
        """Iterate over every record in the zone."""
        for rrset in self._rrsets.values():
            yield from rrset

    def record_count(self) -> int:
        """Total number of records held by the zone."""
        return sum(len(rrset) for rrset in self._rrsets.values())

    # -- apex nameservers --------------------------------------------------------

    def set_apex_nameservers(self, nameservers: Iterable[NameLike],
                             ttl: int = DEFAULT_TTL) -> None:
        """Declare the zone's own authoritative nameserver set (apex NS)."""
        for nameserver in nameservers:
            self.add(self.apex, RRType.NS, nameserver, ttl=ttl)

    def replace_apex_nameservers(self, nameservers: Iterable[NameLike],
                                 ttl: int = DEFAULT_TTL) -> None:
        """Replace the zone's apex NS RRSet with the given set (in order).

        Unlike :meth:`set_apex_nameservers` (which is additive, mirroring
        zone-file loading), this drops the previous NS set first — the
        primitive zone-handover mutations are built on.
        """
        self._rrsets.pop((self.apex, RRType.NS, RRClass.IN), None)
        self.set_apex_nameservers(nameservers, ttl=ttl)

    def apex_nameservers(self) -> List[DomainName]:
        """The zone's apex NS targets, in declaration order."""
        rrset = self.get_rrset(self.apex, RRType.NS)
        if rrset is None:
            return []
        return [r.rdata for r in rrset if isinstance(r.rdata, DomainName)]

    @property
    def soa(self) -> Optional[SOAData]:
        """The zone's SOA data."""
        rrset = self.get_rrset(self.apex, RRType.SOA)
        if not rrset:
            return None
        rdata = rrset.records[0].rdata
        return rdata if isinstance(rdata, SOAData) else None

    # -- delegations -------------------------------------------------------------

    def delegate(self, child: NameLike, nameservers: Iterable[NameLike],
                 glue: Optional[Dict[str, List[str]]] = None) -> Delegation:
        """Delegate ``child`` to ``nameservers``.

        Parameters
        ----------
        child:
            Apex of the child zone; must be a proper subdomain of this zone's
            apex.
        nameservers:
            Hostnames of the child's authoritative servers.
        glue:
            Optional mapping from nameserver hostname to glue addresses.
        """
        child = DomainName(child)
        if not child.is_subdomain_of(self.apex, proper=True):
            raise ZoneError(
                f"cannot delegate {child}: not a proper subdomain of {self.apex}")
        delegation = self._delegations.get(child)
        if delegation is None:
            delegation = Delegation(child=child)
            self._delegations[child] = delegation
        glue = glue or {}
        for nameserver in nameservers:
            nameserver = DomainName(nameserver)
            delegation.add_nameserver(
                nameserver, glue.get(str(nameserver)) or glue.get(nameserver))
        return delegation

    def get_delegation(self, child: NameLike) -> Optional[Delegation]:
        """The delegation for exactly ``child``, or ``None``."""
        return self._delegations.get(DomainName(child))

    def extract_subtree(self, apex: NameLike) -> Tuple[List[RRSet],
                                                       List[Delegation]]:
        """Remove and return everything this zone holds under ``apex``.

        Used when a new child zone is cut out of this one: the records and
        deeper delegations below the new apex move into the child so the
        namespace keeps answering.  ``apex`` must be a proper subdomain of
        this zone's apex.  SOA records are left behind (each zone owns its
        own), and the returned RRSets/Delegations are in this zone's
        insertion order.
        """
        apex = DomainName(apex)
        if not apex.is_subdomain_of(self.apex, proper=True):
            raise ZoneError(
                f"cannot extract {apex}: not a proper subdomain of {self.apex}")
        moved_keys = [key for key in self._rrsets
                      if key[0].is_subdomain_of(apex) and
                      key[1] is not RRType.SOA]
        rrsets = [self._rrsets.pop(key) for key in moved_keys]
        moved_children = [child for child in self._delegations
                          if child.is_subdomain_of(apex, proper=True)]
        delegations = [self._delegations.pop(child)
                       for child in moved_children]
        return rrsets, delegations

    def find_covering_delegation(self, name: NameLike) -> Optional[Delegation]:
        """The deepest delegation whose child zone contains ``name``.

        This is the delegation a server follows when answering a query for a
        name below one of its zone cuts.
        """
        if not isinstance(name, DomainName):
            name = DomainName(name)
        delegations = self._delegations
        labels = name.labels
        # Deepest-first suffix walk: O(depth) dictionary probes instead of
        # scanning every delegation (a TLD zone holds one per SLD).
        for start in range(len(labels) + 1):
            delegation = delegations.get(DomainName._from_labels(labels[start:]))
            if delegation is not None:
                return delegation
        return None

    def iter_delegations(self) -> Iterator[Delegation]:
        """Iterate over all delegations in the zone."""
        return iter(self._delegations.values())

    def delegation_count(self) -> int:
        """Number of child delegations."""
        return len(self._delegations)

    def is_authoritative_for(self, name: NameLike) -> bool:
        """True if ``name`` lies in this zone and is not delegated away."""
        name = DomainName(name)
        if not name.is_subdomain_of(self.apex):
            return False
        return self.find_covering_delegation(name) is None

    def validate(self) -> List[str]:
        """Return a list of human-readable consistency problems.

        An empty list means the zone is well-formed: it has an SOA, at least
        one apex NS record, and every delegation names at least one server.
        """
        problems: List[str] = []
        if self.soa is None:
            problems.append(f"zone {self.apex}: missing SOA")
        if not self.apex_nameservers():
            problems.append(f"zone {self.apex}: no apex NS records")
        for delegation in self._delegations.values():
            if not delegation.nameservers:
                problems.append(
                    f"zone {self.apex}: empty delegation for {delegation.child}")
            for nameserver in delegation.nameservers:
                in_child = nameserver.is_subdomain_of(delegation.child)
                if in_child and nameserver not in delegation.glue:
                    problems.append(
                        f"zone {self.apex}: delegation for {delegation.child} "
                        f"needs glue for in-bailiwick server {nameserver}")
        return problems

    def __repr__(self) -> str:
        return (f"Zone({self.apex!s}, {self.record_count()} records, "
                f"{self.delegation_count()} delegations)")
