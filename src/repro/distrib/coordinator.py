"""The shard coordinator: drives N socket workers and folds their columns.

:class:`ShardCoordinator` owns one TCP connection per worker.  On
creation it ships a BUILD frame describing the world (the seeded
``GeneratorConfig``) and the engine options, so each worker regenerates
the identical synthetic Internet and holds a warm serial engine.  Each
:meth:`run_shards` call stripes the indexed entries exactly like
``SurveyEngine._run_partitioned`` (``indexed[offset::shard_count]``),
ships one ``KIND_ORDER`` frame per shard in parallel, then folds the
returned ``KIND_SHARD`` columns **in shard order** — the same fold
``_consume_process_pool`` performs — so the merged
:class:`~repro.core.survey.SurveyResults` is byte-identical to the
serial backend's.

Delta runs compose through :meth:`sync_journal`: the coordinator keeps
the full mutation-spec history (one spec per journal event, via
``ChangeEvent.to_spec()``) and every work order carries it; workers
apply only the tail they have not seen.  The epoch's complete dirty-name
set rides along so every worker invalidates its warm state for *all*
dirty names, not just the ones striped onto it this epoch.

**Failure handling is policy-driven.**  With the default
``RetryPolicy()`` (``retries=0``) any worker failure — connect refusal,
timeout, truncated or corrupt frame, an ERROR frame carrying the
worker's exception — aborts the whole run promptly: the coordinator
closes every connection (unblocking any thread still waiting on a
slower worker) and raises a :class:`~repro.distrib.wire.DistribError`
naming the worker and cause.  No partial results are ever folded into
the caller's aggregator on the failure path.

With ``retries > 0`` the coordinator *recovers* instead:

* A transient failure (wire error, connection loss, or a worker ERROR
  flagged ``retryable``) drops the connection and retries the exchange
  after an exponential backoff with seed-deterministic jitter.  Every
  reconnect re-ships BUILD — a worker restart is indistinguishable from
  a dropped connection, and re-building is always safe because the next
  work order carries the full spec history the fresh worker replays.
* A worker that exhausts its retry budget is marked **dead** and its
  shard is *reassigned* to a surviving worker.  Striping is computed
  from the configured worker count and never changes, and the fold
  stays in shard order, so reassignment preserves byte-identity with
  the serial backend.
* The run degrades down to a ``min_workers`` floor; below it, the run
  aborts with a precise error naming the dead workers.
* Everything the recovery machinery did is tallied in a structured
  :class:`FaultReport` (retries, rebuilds, reassignments, dead workers,
  recovery seconds) surfaced through :meth:`wire_stats` and the survey
  metadata.

Non-retryable worker errors (a deterministic handler failure, an auth
rejection) abort immediately in both modes — retrying would only repeat
them.  When an ``auth_token`` is set, every connection starts with an
HMAC HELLO handshake before any other frame (see
:mod:`repro.distrib.wire`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import select
import socket
import subprocess
import sys
import threading
import time
import random
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.snapstore import (ShardPayload, SnapshotFormatError,
                                  unpack_shard_result)
from repro.distrib.wire import (ENV_AUTH_TOKEN, FRAME_BUILD, FRAME_ERROR,
                                FRAME_HEADER_SIZE, FRAME_HELLO, FRAME_NAMES,
                                FRAME_OK, FRAME_PING, FRAME_RESULT,
                                FRAME_SHUTDOWN, FRAME_SURVEY, DistribError,
                                WireError, decode_error, hello_payload,
                                pack_work_order, parse_address, recv_frame,
                                send_frame)


class WorkerUnreachable(DistribError):
    """A worker connection could not be established."""


class WorkerReportedError(DistribError):
    """The worker answered with an ERROR frame (message + retryable flag)."""

    def __init__(self, message: str, retryable: bool = False):
        super().__init__(message)
        self.retryable = retryable


class WorkerLostError(DistribError):
    """A worker exhausted its retry budget and was declared dead."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How the coordinator responds to transient worker failures.

    ``retries`` is the per-incident budget: how many times one exchange
    may be re-attempted (reconnecting and re-building as needed) before
    the worker is declared dead and its shard reassigned.  ``retries=0``
    is the strict legacy mode — any failure aborts the whole run.

    Backoff before the k-th retry is ``min(backoff_max, backoff_base *
    2**k)`` scaled by a jitter factor in [0.5, 1.0) drawn from a RNG
    seeded with ``(seed, worker label, k)`` — deterministic per plan, so
    chaos tests replay identically, but decorrelated across workers.
    """

    retries: int = 0
    backoff_base: float = 0.25
    backoff_max: float = 8.0
    seed: int = 0

    def backoff(self, label: str, attempt: int) -> float:
        cap = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        jitter = random.Random(f"{self.seed}:{label}:{attempt}").random()
        return cap * (0.5 + 0.5 * jitter)


@dataclasses.dataclass
class FaultReport:
    """What the recovery machinery did during one coordinator lifetime."""

    retries: int = 0
    rebuilds: int = 0
    reassignments: int = 0
    dead_workers: List[str] = dataclasses.field(default_factory=list)
    recovery_seconds: float = 0.0

    def any(self) -> bool:
        return bool(self.retries or self.rebuilds or self.reassignments
                    or self.dead_workers)

    def to_dict(self) -> Dict[str, object]:
        return {
            "retries": self.retries,
            "rebuilds": self.rebuilds,
            "reassignments": self.reassignments,
            "dead_workers": list(self.dead_workers),
            "recovery_seconds": round(self.recovery_seconds, 3),
        }


class ShardCoordinator:
    """Connect to workers, build their worlds, and run sharded surveys."""

    def __init__(self, engine, worker_addrs: Sequence[str],
                 connect_timeout: float = 10.0,
                 response_timeout: float = 600.0,
                 build_timeout: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 min_workers: int = 1,
                 auth_token: Optional[str] = None):
        if not worker_addrs:
            raise DistribError("socket backend needs at least one worker "
                               "address (host:port)")
        generator_config = getattr(engine.internet, "config", None)
        if generator_config is None:
            raise DistribError(
                "socket backend needs a generator-built internet: workers "
                "reproduce the world from internet.config, which this "
                "internet does not carry")
        self._engine = engine
        self._labels = [str(address) for address in worker_addrs]
        self._connect_timeout = connect_timeout
        self._response_timeout = response_timeout
        #: BUILD (world regeneration) can take far longer than a survey
        #: reply; None means "same as response_timeout" so short stall
        #: timeouts in tests do not change legacy behaviour unless a
        #: rebuild-aware timeout is requested explicitly.
        self._build_timeout = (response_timeout if build_timeout is None
                               else build_timeout)
        self.policy = retry_policy or RetryPolicy()
        if min_workers < 1:
            min_workers = 1
        if min_workers > len(self._labels):
            raise DistribError(
                f"--min-workers {min_workers} exceeds the "
                f"{len(self._labels)} configured workers")
        self._min_workers = min_workers
        self._auth_token = auth_token
        self._recovering = self.policy.retries > 0
        self._sockets: List[Optional[socket.socket]] = \
            [None] * len(self._labels)
        self._alive = [True] * len(self._labels)
        self._built_once = [False] * len(self._labels)
        self._worker_locks = [threading.Lock() for _ in self._labels]
        self._state_lock = threading.Lock()
        self.fault_report = FaultReport()
        self.shutdown_report: List[Dict[str, str]] = []
        self.bytes_sent = [0] * len(self._labels)
        self.bytes_received = [0] * len(self._labels)
        #: Full mutation-spec history; every work order carries it all.
        self._specs: List[str] = []
        #: (journal, events-consumed) pairs, keyed by journal identity.
        self._journals: List[Tuple[object, int]] = []
        self._closed = False

        self._build = json.dumps({
            "generator": dataclasses.asdict(generator_config),
            "engine": {
                "popular_count": engine.config.popular_count,
                "include_bottleneck": engine.config.include_bottleneck,
                "use_glue": engine.config.use_glue,
                "passes": self._pass_specs(engine),
            },
        }, sort_keys=True).encode("utf-8")

        if not self._recovering:
            for position in range(len(self._labels)):
                try:
                    self._connect(position)
                except DistribError:
                    self._abort()
                    raise
            self._broadcast(FRAME_BUILD, [self._build] * len(self._labels),
                            FRAME_OK)
        else:
            self._prepare_workers()

    @staticmethod
    def _pass_specs(engine) -> List[str]:
        """Spec strings reconstructing this engine's passes on a worker."""
        specs = []
        for pass_ in engine.passes:
            try:
                specs.append(pass_.spec())
            except NotImplementedError as error:
                raise DistribError(
                    f"pass {pass_.name!r} cannot run on the socket backend: "
                    f"{error}") from error
        return specs

    # -- connections & readiness ---------------------------------------------------------

    def _connect(self, position: int) -> None:
        """Establish (and, with a token, authenticate) one connection."""
        label = self._labels[position]
        host, port = parse_address(label)
        try:
            connection = socket.create_connection(
                (host, port), timeout=self._connect_timeout)
        except OSError as error:
            raise WorkerUnreachable(
                f"cannot connect to worker {label}: {error}") from error
        connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sockets[position] = connection
        if self._auth_token is not None:
            try:
                self._exchange(position, FRAME_HELLO,
                               hello_payload(self._auth_token), FRAME_OK,
                               self._connect_timeout + 10.0)
            except BaseException:
                self._drop(position)
                raise

    def _drop(self, position: int) -> None:
        """Close one connection (it will be re-established on demand)."""
        connection = self._sockets[position]
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass
            self._sockets[position] = None

    def _ensure_ready(self, position: int) -> None:
        """Reconnect-and-rebuild a worker whose connection is down.

        A fresh connection always gets a fresh BUILD: a restarted worker
        is indistinguishable from a dropped connection, and re-building
        a live one is safe — the next work order carries the full spec
        history, which the rebuilt worker replays from scratch.
        """
        if self._sockets[position] is not None:
            return
        self._connect(position)
        try:
            self._exchange(position, FRAME_BUILD, self._build, FRAME_OK,
                           self._build_timeout)
        except BaseException:
            self._drop(position)
            raise
        with self._state_lock:
            if self._built_once[position]:
                self.fault_report.rebuilds += 1
            else:
                self._built_once[position] = True

    def _mark_dead(self, position: int, reason: str) -> None:
        self._drop(position)
        with self._state_lock:
            if self._alive[position]:
                self._alive[position] = False
                self.fault_report.dead_workers.append(self._labels[position])

    def _alive_positions(self) -> List[int]:
        with self._state_lock:
            return [position for position, alive in enumerate(self._alive)
                    if alive]

    # -- request plumbing ----------------------------------------------------------------

    def _exchange(self, position: int, frame_type: int, payload: bytes,
                  expect: int, timeout: float) -> bytes:
        """One raw frame exchange with worker ``position``."""
        connection = self._sockets[position]
        label = self._labels[position]
        if connection is None:
            raise DistribError(f"worker {label}: connection already closed")
        self.bytes_sent[position] += send_frame(connection, frame_type,
                                                payload)
        reply_type, reply = recv_frame(connection, timeout=timeout,
                                       peer=f"worker {label}")
        self.bytes_received[position] += FRAME_HEADER_SIZE + len(reply)
        if reply_type == FRAME_ERROR:
            info = decode_error(reply, label)
            raise WorkerReportedError(
                f"worker {label} failed: {info.message}",
                retryable=info.retryable)
        if reply_type != expect:
            raise WireError(
                f"worker {label}: expected {FRAME_NAMES[expect]} frame, "
                f"got {FRAME_NAMES[reply_type]}")
        return reply

    def _request(self, position: int, frame_type: int, payload: bytes,
                 expect: int) -> bytes:
        """Legacy single-attempt exchange (abort-all callers)."""
        return self._exchange(position, frame_type, payload, expect,
                              self._response_timeout)

    def _exchange_with_retry(self, position: int, frame_type: int,
                             payload: bytes, expect: int,
                             timeout: float) -> bytes:
        """Exchange with reconnect/rebuild retries per the policy.

        Raises :class:`WorkerLostError` (after marking the worker dead)
        once the budget is exhausted; non-retryable worker errors and
        auth rejections propagate immediately.
        """
        label = self._labels[position]
        attempt = 0
        recovery_start: Optional[float] = None
        while True:
            if self._closed:
                raise DistribError("coordinator already closed")
            try:
                with self._worker_locks[position]:
                    self._ensure_ready(position)
                    reply = self._exchange(position, frame_type, payload,
                                           expect, timeout)
                if recovery_start is not None:
                    with self._state_lock:
                        self.fault_report.recovery_seconds += \
                            time.monotonic() - recovery_start
                return reply
            except WorkerReportedError as error:
                if not error.retryable:
                    raise
                failure: Exception = error
                self._drop(position)
            except (WireError, WorkerUnreachable, OSError) as error:
                failure = error
                self._drop(position)
            if recovery_start is None:
                recovery_start = time.monotonic()
            if attempt >= self.policy.retries:
                self._mark_dead(position, str(failure))
                with self._state_lock:
                    self.fault_report.recovery_seconds += \
                        time.monotonic() - recovery_start
                raise WorkerLostError(
                    f"worker {label} lost after {attempt} retries: "
                    f"{failure}") from failure
            with self._state_lock:
                self.fault_report.retries += 1
            time.sleep(self.policy.backoff(label, attempt))
            attempt += 1

    def _prepare_workers(self) -> None:
        """Recovery-mode startup: connect/auth/build with retries.

        A worker that stays unreachable is marked dead here and its
        shards are reassigned from the first epoch; the run only aborts
        if the floor is broken.  The PING after BUILD doubles as the
        first heartbeat.
        """
        first_error: Optional[BaseException] = None
        with ThreadPoolExecutor(max_workers=len(self._labels)) as pool:
            futures = {pool.submit(self._prepare_worker, position): position
                       for position in range(len(self._labels))}
            for future in as_completed(futures):
                try:
                    future.result()
                except BaseException as error:
                    if first_error is None:
                        first_error = error
                        self._abort()
        if first_error is not None:
            raise first_error
        alive = self._alive_positions()
        if len(alive) < self._min_workers:
            dead = ", ".join(self.fault_report.dead_workers)
            self._abort()
            raise DistribError(
                f"only {len(alive)} of {len(self._labels)} workers "
                f"reachable, below the min-workers floor "
                f"{self._min_workers} (dead: {dead})")

    def _prepare_worker(self, position: int) -> None:
        try:
            self._exchange_with_retry(position, FRAME_PING, b"", FRAME_OK,
                                      self._response_timeout)
        except WorkerLostError:
            pass  # floor is enforced by the caller

    def ping(self) -> List[bool]:
        """Heartbeat every worker; False marks dead or unresponsive."""
        health = []
        for position in range(len(self._labels)):
            if not self._alive[position]:
                health.append(False)
                continue
            try:
                with self._worker_locks[position]:
                    self._ensure_ready(position)
                    self._exchange(position, FRAME_PING, b"", FRAME_OK,
                                   self._response_timeout)
                health.append(True)
            except (DistribError, OSError):
                self._drop(position)
                health.append(False)
        return health

    def _broadcast(self, frame_type: int, payloads: Sequence[bytes],
                   expect: int) -> List[bytes]:
        """Send one frame to every worker in parallel; abort-all on error."""
        replies: List[Optional[bytes]] = [None] * len(payloads)
        first_error: Optional[BaseException] = None
        with ThreadPoolExecutor(max_workers=len(payloads)) as pool:
            futures = {
                pool.submit(self._request, position, frame_type,
                            payloads[position], expect): position
                for position in range(len(payloads))}
            for future in as_completed(futures):
                try:
                    replies[futures[future]] = future.result()
                except BaseException as error:
                    if first_error is None:
                        first_error = error
                        # Closing every socket unblocks threads still
                        # waiting on slower workers.
                        self._abort()
        if first_error is not None:
            if isinstance(first_error, DistribError):
                raise first_error
            raise DistribError(f"worker exchange failed: "
                               f"{first_error}") from first_error
        for position, reply in enumerate(replies):
            if reply is None:
                # A missing reply without an exception would misalign the
                # shard fold (shard k's columns applied at position j).
                self._abort()
                raise DistribError(
                    f"worker {self._labels[position]} produced neither a "
                    f"reply nor an error for its "
                    f"{FRAME_NAMES.get(frame_type, frame_type)} frame; "
                    f"aborting before the shard fold can misalign")
        return list(replies)  # type: ignore[arg-type]

    # -- delta composition ---------------------------------------------------------------

    def sync_journal(self, journal) -> None:
        """Extend the spec history with a journal's unseen events."""
        events = getattr(journal, "events", None)
        if events is None:
            raise DistribError(
                "the socket backend needs the ChangeJournal itself (its "
                "events become wire specs); a pre-folded ChangeSet cannot "
                "be shipped to workers")
        for position, (seen, consumed) in enumerate(self._journals):
            if seen is journal:
                fresh = events[consumed:]
                self._journals[position] = (journal, len(events))
                break
        else:
            fresh = list(events)
            self._journals.append((journal, len(events)))
        self._specs.extend(event.to_spec() for event in fresh)

    # -- the sharded survey --------------------------------------------------------------

    def _assign(self, shard_index: int) -> int:
        """The worker a shard runs on, honouring deaths and the floor.

        Striping itself never changes — a dead worker's shard keeps its
        shard index (and thus its fold position) and is merely *served*
        by a surviving worker, so the merged columns stay byte-identical
        to the serial backend's.
        """
        alive = self._alive_positions()
        if len(alive) < self._min_workers or not alive:
            dead = ", ".join(self.fault_report.dead_workers)
            raise DistribError(
                f"only {len(alive)} of {len(self._labels)} workers still "
                f"alive, below the min-workers floor {self._min_workers} "
                f"(dead: {dead})")
        if self._alive[shard_index]:
            return shard_index
        return alive[shard_index % len(alive)]

    def _run_order(self, shard_index: int, order: bytes) -> bytes:
        """Run one shard to completion, reassigning across dead workers."""
        while True:
            position = self._assign(shard_index)
            try:
                return self._exchange_with_retry(
                    position, FRAME_SURVEY, order, FRAME_RESULT,
                    self._response_timeout)
            except WorkerLostError:
                with self._state_lock:
                    self.fault_report.reassignments += 1
                # Loop: _assign picks a survivor (or raises at the floor).

    def _run_orders(self, orders: Sequence[bytes]) -> List[bytes]:
        """Recovery-mode scheduler: every shard retried/reassigned."""
        results: List[Optional[bytes]] = [None] * len(orders)
        first_error: Optional[BaseException] = None
        with ThreadPoolExecutor(max_workers=len(orders)) as pool:
            futures = {
                pool.submit(self._run_order, shard_index, order): shard_index
                for shard_index, order in enumerate(orders)}
            for future in as_completed(futures):
                try:
                    results[futures[future]] = future.result()
                except BaseException as error:
                    if first_error is None:
                        first_error = error
                        self._abort()
        if first_error is not None:
            if isinstance(first_error, DistribError):
                raise first_error
            raise DistribError(f"worker exchange failed: "
                               f"{first_error}") from first_error
        for shard_index, result in enumerate(results):
            if result is None:
                self._abort()
                raise DistribError(
                    f"shard {shard_index} produced neither a result nor "
                    f"an error; aborting before the fold can misalign")
        return list(results)  # type: ignore[arg-type]

    def run_shards(self, indexed, popular, aggregator,
                   dirty: Sequence = ()) -> None:
        """Survey ``indexed`` entries across the workers and fold results.

        Mirrors ``_run_partitioned`` striping and the process backend's
        shard-order fold exactly, so results are byte-identical to the
        serial engine over the same (possibly delta-invalidated) world.
        """
        if self._closed:
            raise DistribError("coordinator already closed")
        shard_count = min(len(self._labels), max(len(indexed), 1))
        shards = [indexed[offset::shard_count]
                  for offset in range(shard_count)]
        dirty_names = sorted(str(name) for name in dirty)
        orders = []
        for shard in shards:
            orders.append(pack_work_order(
                [index for index, _entry in shard],
                [str(entry.name) for _index, entry in shard],
                [entry.name in popular for _index, entry in shard],
                self._specs, dirty_names))
        if self._recovering:
            payloads = self._run_orders(orders)
        else:
            payloads = self._broadcast(FRAME_SURVEY, orders, FRAME_RESULT)

        engine = self._engine
        for position, payload in enumerate(payloads):
            label = self._labels[position]
            try:
                shard: ShardPayload = unpack_shard_result(
                    payload, label=f"worker {label} result")
            except SnapshotFormatError as error:
                self._abort()
                raise DistribError(
                    f"worker {label} returned an undecodable shard: "
                    f"{error}") from error
            for index, record in zip(shard.rows, shard.records):
                aggregator.add_record(index, record)
            aggregator.merge_maps(shard.fingerprints,
                                  shard.vulnerability_map,
                                  shard.compromisable_map)
            engine._root.fingerprinter.adopt(shard.fingerprints)
            engine._root.vulnerability_map.update(shard.vulnerability_map)
            engine._root.compromisable_map.update(shard.compromisable_map)

    # -- wire accounting / lifecycle -----------------------------------------------------

    def wire_stats(self) -> Dict[str, object]:
        """Bytes on the wire, total and per worker (for benchmarks)."""
        stats: Dict[str, object] = {
            "workers": len(self._labels),
            "bytes_sent": sum(self.bytes_sent),
            "bytes_received": sum(self.bytes_received),
            "per_worker": [
                {"worker": label, "sent": sent, "received": received}
                for label, sent, received in zip(
                    self._labels, self.bytes_sent, self.bytes_received)],
        }
        if self.fault_report.any():
            stats["fault_report"] = self.fault_report.to_dict()
        return stats

    def _abort(self) -> None:
        """Hard-close every connection (failure path)."""
        self._closed = True
        for position in range(len(self._sockets)):
            self._drop(position)

    def close(self) -> None:
        """Politely shut workers down, then close the connections.

        Per-worker outcomes land in :attr:`shutdown_report` (a polite
        shutdown never raises): ``clean`` for an acked SHUTDOWN,
        ``dead`` for a worker already declared dead, ``unreachable``
        when the connection was already gone, and ``error`` with the
        failure detail when the SHUTDOWN exchange itself failed.
        """
        if self._closed:
            return
        self._closed = True
        report: List[Dict[str, str]] = []
        for position, connection in enumerate(self._sockets):
            label = self._labels[position]
            if not self._alive[position]:
                report.append({"worker": label, "status": "dead"})
                self._drop(position)
                continue
            if connection is None:
                report.append({"worker": label, "status": "unreachable"})
                continue
            try:
                send_frame(connection, FRAME_SHUTDOWN)
                recv_frame(connection, timeout=2.0, peer=f"worker {label}")
                report.append({"worker": label, "status": "clean"})
            except (WireError, OSError) as error:
                report.append({"worker": label, "status": "error",
                               "detail": str(error)})
            self._drop(position)
        self.shutdown_report = report

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalWorkerFleet:
    """Spawn N ``repro-dns worker`` subprocesses on loopback ports.

    The CLI's ``--backend socket --workers N`` convenience (and the tests
    and benchmarks) use this to simulate multi-host locally: each worker
    is a separate OS process with its own interpreter, world copy, and
    socket — exactly what a remote host would run, minus the network.

    Chaos support: ``fault_plans`` maps a worker index to a
    :class:`~repro.distrib.faults.FaultPlan` spec string, exported to
    that one subprocess via ``REPRO_FAULT_PLAN`` so injected failures
    are real multi-process failures.  :meth:`kill` hard-kills a worker
    (keeping its address) and :meth:`respawn` restarts one on the same
    port, which is how rejoin tests exercise the coordinator's
    reconnect-and-rebuild path.
    """

    def __init__(self, count: int, auth_token: Optional[str] = None,
                 fault_plans: Optional[Dict[int, str]] = None,
                 startup_timeout: float = 30.0):
        if count < 1:
            raise DistribError("worker fleet needs at least one worker")
        self.count = count
        self.auth_token = auth_token
        self.fault_plans = dict(fault_plans or {})
        self.startup_timeout = startup_timeout
        self.addresses: List[str] = []
        self._processes: List[Optional[subprocess.Popen]] = []

    def _environment(self, index: int) -> Dict[str, str]:
        import repro
        source_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        environment = dict(os.environ)
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = source_root + (
            os.pathsep + existing if existing else "")
        if self.auth_token is not None:
            environment[ENV_AUTH_TOKEN] = self.auth_token
        plan = self.fault_plans.get(index)
        if plan:
            environment["REPRO_FAULT_PLAN"] = str(plan)
        else:
            environment.pop("REPRO_FAULT_PLAN", None)
        return environment

    def _spawn(self, index: int, address: str) -> subprocess.Popen:
        # --parent-pid: if this coordinator dies without stop() (SIGKILL,
        # crash-matrix fault injection), the workers notice the reparent
        # and exit instead of leaking as orphan listeners.
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker",
             "--listen", address, "--parent-pid", str(os.getpid())],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=self._environment(index))

    def _await_ready(self, process: subprocess.Popen, index: int) -> str:
        """Read the ``listening on host:port`` handshake with a timeout."""
        deadline = time.monotonic() + self.startup_timeout
        line = ""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.stop()
                raise DistribError(
                    f"worker {index} did not report a listen address "
                    f"within {self.startup_timeout:g}s of starting "
                    f"(no startup line on stdout)")
            ready, _, _ = select.select([process.stdout], [], [],
                                        min(remaining, 0.25))
            if ready:
                line = process.stdout.readline().decode(
                    "utf-8", "replace").strip()
                break
            if process.poll() is not None:
                break  # died before printing; fall through for stderr
        prefix = "listening on "
        if not line.startswith(prefix):
            # stdout EOF can beat the exit status by a beat; wait so the
            # error below can carry the dying worker's stderr.
            try:
                process.wait(timeout=2)
            except subprocess.TimeoutExpired:
                pass
            stderr = b""
            if process.poll() is not None and process.stderr:
                stderr = process.stderr.read() or b""
            self.stop()
            detail = stderr.decode("utf-8", "replace").strip()
            raise DistribError(
                f"worker {index} process failed to start "
                f"(got {line!r}){': ' + detail if detail else ''}")
        return line[len(prefix):]

    def start(self) -> List[str]:
        for index in range(self.count):
            self._processes.append(self._spawn(index, "127.0.0.1:0"))
        for index, process in enumerate(self._processes):
            self.addresses.append(self._await_ready(process, index))
        return list(self.addresses)

    def kill(self, index: int) -> None:
        """Hard-kill one worker (its address stays claimable by respawn)."""
        process = self._processes[index]
        if process is None:
            return
        if process.poll() is None:
            process.kill()
            process.wait()
        self._reap(process)
        self._processes[index] = None

    def respawn(self, index: int,
                fault_plan: Optional[str] = None) -> str:
        """Restart worker ``index`` on its original port.

        The worker binds with SO_REUSEADDR, so the freed port can be
        reclaimed immediately; the coordinator's reconnect path then
        finds a fresh (empty) worker at the same address and re-BUILDs
        it.  A new ``fault_plan`` (or None to clear the old one) arms
        the replacement process.
        """
        self.kill(index)
        self.fault_plans[index] = fault_plan
        if not fault_plan:
            self.fault_plans.pop(index, None)
        process = self._spawn(index, self.addresses[index])
        self._processes[index] = process
        self.addresses[index] = self._await_ready(process, index)
        return self.addresses[index]

    @staticmethod
    def _reap(process: subprocess.Popen) -> None:
        for stream in (process.stdout, process.stderr):
            if stream is not None:
                stream.close()

    def stop(self) -> None:
        for process in self._processes:
            if process is not None and process.poll() is None:
                process.terminate()
        for process in self._processes:
            if process is None:
                continue
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            self._reap(process)
        self._processes = []
        self.addresses = []

    def __enter__(self) -> "LocalWorkerFleet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
