"""Tests for :mod:`repro.dns.resolver` against the hand-built mini Internet."""

import pytest

from repro.dns.cache import ResolverCache
from repro.dns.errors import ResolutionError
from repro.dns.name import DomainName
from repro.dns.rdtypes import RCode, RRType
from repro.dns.resolver import IterativeResolver


# -- basic resolution ----------------------------------------------------------------

def test_resolve_hosted_name(mini_internet):
    resolver = mini_internet.make_resolver()
    trace = resolver.resolve("www.example.com")
    assert trace.succeeded
    assert trace.addresses == ["10.2.0.80"]


def test_resolution_walks_root_then_tld_then_zone(mini_internet):
    resolver = mini_internet.make_resolver()
    trace = resolver.resolve("www.example.com")
    contacted = [str(step.server) for step in trace.steps]
    assert contacted[0] in ("a.root-servers.net", "b.root-servers.net")
    assert any("gtld" in server for server in contacted)
    assert any("hostco" in server for server in contacted)


def test_resolve_self_hosted_name_with_offsite_secondary(mini_internet):
    resolver = mini_internet.make_resolver()
    trace = resolver.resolve("www.uni.edu")
    assert trace.succeeded
    assert trace.addresses == ["10.4.0.80"]


def test_resolve_nxdomain(mini_internet):
    resolver = mini_internet.make_resolver()
    trace = resolver.resolve("missing.example.com")
    assert not trace.succeeded
    assert trace.rcode is RCode.NXDOMAIN


def test_resolve_unknown_tld_fails(mini_internet):
    resolver = mini_internet.make_resolver()
    trace = resolver.resolve("www.example.zz")
    assert not trace.succeeded


def test_cname_chased_to_address(mini_internet):
    resolver = mini_internet.make_resolver()
    trace = resolver.resolve("alias.example.com")
    assert trace.succeeded
    assert "10.2.0.80" in trace.addresses


def test_servers_contacted_recorded(mini_internet):
    resolver = mini_internet.make_resolver()
    trace = resolver.resolve("www.example.com")
    assert DomainName("ns1.hostco.com") in trace.servers_contacted or \
        DomainName("ns2.hostco.com") in trace.servers_contacted
    assert trace.query_count == len(trace.steps)


# -- caching -----------------------------------------------------------------------------

def test_second_resolution_uses_cache(mini_internet):
    cache = ResolverCache()
    resolver = mini_internet.make_resolver(cache=cache)
    first = resolver.resolve("www.example.com")
    second = resolver.resolve("www.example.com")
    assert second.succeeded
    assert second.query_count == 0
    assert first.query_count > 0


def test_nxdomain_is_negatively_cached(mini_internet):
    cache = ResolverCache()
    resolver = mini_internet.make_resolver(cache=cache)
    resolver.resolve("missing.example.com")
    second = resolver.resolve("missing.example.com")
    assert second.rcode is RCode.NXDOMAIN
    assert second.query_count == 0


# -- glue handling ---------------------------------------------------------------------------

def test_glue_disabled_requires_more_queries(mini_internet):
    with_glue = mini_internet.make_resolver(use_glue=True)
    trace_glue = with_glue.resolve("www.example.com")
    without_glue = mini_internet.make_resolver(use_glue=False)
    trace_noglue = without_glue.resolve("www.example.com")
    assert trace_noglue.succeeded
    assert trace_noglue.query_count >= trace_glue.query_count


# -- failure handling -----------------------------------------------------------------------

def test_failover_to_second_nameserver(mini_internet):
    mini_internet.servers[DomainName("ns1.hostco.com")].fail()
    resolver = mini_internet.make_resolver()
    trace = resolver.resolve("www.example.com")
    assert trace.succeeded
    assert any(step.kind == "failure" for step in trace.steps)


def test_all_nameservers_down_servfail(mini_internet):
    mini_internet.servers[DomainName("ns1.hostco.com")].fail()
    mini_internet.servers[DomainName("ns2.hostco.com")].fail()
    resolver = mini_internet.make_resolver()
    trace = resolver.resolve("www.example.com")
    assert not trace.succeeded
    assert trace.rcode is RCode.SERVFAIL


def test_random_selection_is_reproducible_with_seed(mini_internet):
    import random
    resolver_a = mini_internet.make_resolver(selection="random",
                                             rng=random.Random(42))
    resolver_b = mini_internet.make_resolver(selection="random",
                                             rng=random.Random(42))
    trace_a = resolver_a.resolve("www.example.com")
    trace_b = resolver_b.resolve("www.example.com")
    assert [str(s.server) for s in trace_a.steps] == \
        [str(s.server) for s in trace_b.steps]


def test_invalid_selection_rejected(mini_internet):
    with pytest.raises(ValueError):
        mini_internet.make_resolver(selection="round-robin")


def test_resolver_requires_root_hints(mini_internet):
    with pytest.raises(ResolutionError):
        IterativeResolver(mini_internet.network, {})


def test_query_budget_enforced(mini_internet):
    resolver = mini_internet.make_resolver(max_queries=1)
    trace = resolver.resolve("www.example.com")
    assert not trace.succeeded


# -- zone-cut enumeration -----------------------------------------------------------------------

def test_zone_cut_chain_for_hosted_name(mini_internet):
    resolver = mini_internet.make_resolver()
    cuts = resolver.zone_cut_chain("www.example.com")
    zones = [str(cut.zone) for cut in cuts]
    assert zones == ["com", "example.com"]
    example_cut = cuts[-1]
    assert DomainName("ns1.hostco.com") in example_cut.nameservers
    assert DomainName("ns2.hostco.com") in example_cut.nameservers


def test_zone_cut_chain_includes_parent_and_apex_ns(mini_internet):
    resolver = mini_internet.make_resolver()
    cuts = resolver.zone_cut_chain("www.uni.edu")
    uni_cut = [cut for cut in cuts if str(cut.zone) == "uni.edu"][0]
    # The off-site secondary appears in both the parent delegation and the
    # apex NS set; the union keeps it once.
    assert DomainName("dns1.partner.edu") in uni_cut.nameservers
    assert len(uni_cut.nameservers) == 3


def test_zone_cut_chain_excludes_root(mini_internet):
    resolver = mini_internet.make_resolver()
    cuts = resolver.zone_cut_chain("www.example.com")
    assert all(str(cut.zone) != "." for cut in cuts)


def test_zone_cut_chain_for_nameserver_hostname(mini_internet):
    resolver = mini_internet.make_resolver()
    cuts = resolver.zone_cut_chain("ns1.hostco.com")
    zones = [str(cut.zone) for cut in cuts]
    assert zones == ["com", "hostco.com"]


def test_zone_cut_nameservers_union_preserves_order(mini_internet):
    resolver = mini_internet.make_resolver()
    cuts = resolver.zone_cut_chain("www.example.com")
    com_cut = cuts[0]
    assert com_cut.nameservers[0] == com_cut.parent_nameservers[0]


def test_zone_cut_nameservers_memoized(mini_internet):
    resolver = mini_internet.make_resolver()
    cuts = resolver.zone_cut_chain("www.example.com")
    com_cut = cuts[0]
    first = com_cut.nameservers
    assert com_cut.nameservers is first
    # Extending a cut (how the chain walk fills it) drops the stale union.
    com_cut.apex_nameservers = list(com_cut.apex_nameservers) + \
        [DomainName("late.gtld.net")]
    assert DomainName("late.gtld.net") in com_cut.nameservers


def test_zone_cut_chain_prefix_cache_is_transparent(mini_internet):
    shared = mini_internet.make_resolver()
    for qname in ("www.example.com", "www.hostco.com", "ns1.hostco.com",
                  "www.uni.edu", "www.partner.edu"):
        fresh = mini_internet.make_resolver()
        shared_cuts = shared.zone_cut_chain(qname)
        fresh_cuts = fresh.zone_cut_chain(qname)
        assert [str(cut.zone) for cut in shared_cuts] == \
            [str(cut.zone) for cut in fresh_cuts]
        assert [[str(ns) for ns in cut.nameservers] for cut in shared_cuts] \
            == [[str(ns) for ns in cut.nameservers] for cut in fresh_cuts]
    # The shared resolver reused prefixes, so it issued fewer queries for
    # the later names than a cold walk needs for the first.
    assert shared._chain_prefix_cache


def test_resolver_clone_is_independent(mini_internet):
    resolver = mini_internet.make_resolver()
    resolver.resolve("www.example.com")
    clone = resolver.clone()
    assert clone is not resolver
    assert clone.cache is not resolver.cache
    assert len(clone.cache) == len(resolver.cache)
    trace = clone.resolve("www.example.com")
    assert trace.succeeded
    assert trace.query_count == 0, "clone must start with a warm cache"


def test_resolver_clone_can_share_cache(mini_internet):
    resolver = mini_internet.make_resolver()
    clone = resolver.clone(share_cache=True)
    assert clone.cache is resolver.cache
