"""Tests for :mod:`repro.dns.records` and :mod:`repro.dns.rdtypes`."""

import pytest

from repro.dns.errors import ZoneError
from repro.dns.name import DomainName
from repro.dns.rdtypes import DEFAULT_TTL, OpCode, RCode, RRClass, RRType
from repro.dns.records import (
    MXData,
    ResourceRecord,
    RRSet,
    SOAData,
    normalize_rdata,
)


# -- rdtypes enums -----------------------------------------------------------------

def test_rrtype_from_text():
    assert RRType.from_text("a") is RRType.A
    assert RRType.from_text(" NS ") is RRType.NS
    with pytest.raises(ValueError):
        RRType.from_text("BOGUS")


def test_rrtype_numeric_values_match_rfc():
    assert RRType.A == 1
    assert RRType.NS == 2
    assert RRType.CNAME == 5
    assert RRType.SOA == 6
    assert RRType.TXT == 16
    assert RRType.AAAA == 28


def test_rrclass_from_text():
    assert RRClass.from_text("in") is RRClass.IN
    assert RRClass.from_text("CH") is RRClass.CH
    with pytest.raises(ValueError):
        RRClass.from_text("XX")


def test_rcode_is_error():
    assert not RCode.NOERROR.is_error
    assert RCode.NXDOMAIN.is_error
    assert RCode.SERVFAIL.is_error


def test_opcode_values():
    assert OpCode.QUERY == 0
    assert OpCode.UPDATE == 5


# -- rdata normalisation --------------------------------------------------------------

def test_normalize_ns_rdata_to_domain_name():
    rdata = normalize_rdata(RRType.NS, "ns1.example.com")
    assert isinstance(rdata, DomainName)
    assert rdata == DomainName("ns1.example.com")


def test_normalize_a_rdata_to_string():
    assert normalize_rdata(RRType.A, "10.0.0.1") == "10.0.0.1"


def test_normalize_mx_from_tuple():
    rdata = normalize_rdata(RRType.MX, (10, "mail.example.com"))
    assert isinstance(rdata, MXData)
    assert rdata.preference == 10
    assert rdata.exchange == DomainName("mail.example.com")


def test_normalize_mx_rejects_garbage():
    with pytest.raises(ZoneError):
        normalize_rdata(RRType.MX, "not an mx")


def test_normalize_soa_requires_soadata():
    with pytest.raises(ZoneError):
        normalize_rdata(RRType.SOA, "bogus")


# -- ResourceRecord ----------------------------------------------------------------------

def test_record_create_normalises_fields():
    record = ResourceRecord.create("WWW.Example.COM", "a", "10.0.0.1", ttl=60)
    assert record.name == DomainName("www.example.com")
    assert record.rtype is RRType.A
    assert record.rdata == "10.0.0.1"
    assert record.ttl == 60
    assert record.rclass is RRClass.IN


def test_record_create_rejects_negative_ttl():
    with pytest.raises(ZoneError):
        ResourceRecord.create("example.com", RRType.A, "10.0.0.1", ttl=-1)


def test_record_default_ttl():
    record = ResourceRecord.create("example.com", RRType.A, "10.0.0.1")
    assert record.ttl == DEFAULT_TTL


def test_record_target_for_name_rdata():
    ns = ResourceRecord.create("example.com", RRType.NS, "ns1.example.com")
    assert ns.target == DomainName("ns1.example.com")
    a = ResourceRecord.create("example.com", RRType.A, "10.0.0.1")
    assert a.target is None
    mx = ResourceRecord.create("example.com", RRType.MX,
                               (5, "mail.example.com"))
    assert mx.target == DomainName("mail.example.com")


def test_record_is_hashable_and_comparable():
    a = ResourceRecord.create("example.com", RRType.A, "10.0.0.1")
    b = ResourceRecord.create("example.com", RRType.A, "10.0.0.1")
    c = ResourceRecord.create("example.com", RRType.A, "10.0.0.2")
    assert a == b
    assert a != c
    assert len({a, b, c}) == 2


def test_record_to_text_contains_all_fields():
    record = ResourceRecord.create("example.com", RRType.A, "10.0.0.1", ttl=30)
    text = record.to_text()
    assert "example.com" in text
    assert "30" in text
    assert "A" in text
    assert "10.0.0.1" in text


def test_soa_record_and_text():
    soa = SOAData(mname=DomainName("ns1.example.com"),
                  rname=DomainName("hostmaster.example.com"), serial=42)
    record = ResourceRecord.create("example.com", RRType.SOA, soa)
    assert "42" in str(record)


# -- RRSet -----------------------------------------------------------------------------------

def test_rrset_accepts_matching_records_and_deduplicates():
    rrset = RRSet("example.com", RRType.NS)
    first = ResourceRecord.create("example.com", RRType.NS, "ns1.example.com")
    rrset.add(first)
    rrset.add(ResourceRecord.create("example.com", RRType.NS,
                                    "ns2.example.com"))
    rrset.add(first)  # duplicate
    assert len(rrset) == 2
    assert first in rrset


def test_rrset_rejects_foreign_records():
    rrset = RRSet("example.com", RRType.NS)
    with pytest.raises(ZoneError):
        rrset.add(ResourceRecord.create("other.com", RRType.NS,
                                        "ns1.example.com"))
    with pytest.raises(ZoneError):
        rrset.add(ResourceRecord.create("example.com", RRType.A, "10.0.0.1"))


def test_rrset_preserves_insertion_order():
    rrset = RRSet("example.com", RRType.NS, records=[
        ResourceRecord.create("example.com", RRType.NS, "ns2.example.com"),
        ResourceRecord.create("example.com", RRType.NS, "ns1.example.com"),
    ])
    assert rrset.targets() == [DomainName("ns2.example.com"),
                               DomainName("ns1.example.com")]


def test_rrset_ttl_is_minimum():
    rrset = RRSet("example.com", RRType.A, records=[
        ResourceRecord.create("example.com", RRType.A, "10.0.0.1", ttl=300),
        ResourceRecord.create("example.com", RRType.A, "10.0.0.2", ttl=60),
    ])
    assert rrset.ttl == 60


def test_rrset_addresses_only_from_address_records():
    rrset = RRSet("example.com", RRType.A, records=[
        ResourceRecord.create("example.com", RRType.A, "10.0.0.1"),
    ])
    assert rrset.addresses() == ["10.0.0.1"]


def test_rrset_bool_and_equality():
    empty = RRSet("example.com", RRType.A)
    assert not empty
    a = RRSet("example.com", RRType.A, records=[
        ResourceRecord.create("example.com", RRType.A, "10.0.0.1")])
    b = RRSet("example.com", RRType.A, records=[
        ResourceRecord.create("example.com", RRType.A, "10.0.0.1")])
    assert a == b
    assert a != empty


def test_rrset_accepts_string_type_and_class():
    rrset = RRSet("example.com", "txt", "ch")
    assert rrset.rtype is RRType.TXT
    assert rrset.rclass is RRClass.CH
