"""Trusted computing base analysis (Figures 2-6 of the paper).

A name's TCB is the set of nameservers in its delegation graph.  This module
turns a :class:`~repro.core.delegation.DelegationGraph` plus a per-server
vulnerability map into a :class:`TCBReport`: the per-name record the survey
aggregates into the TCB-size CDF (Figure 2), the per-TLD averages (Figures 3
and 4), the vulnerable-servers-in-TCB CDF (Figure 5), and the TCB safety
percentage CDF (Figure 6).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Set

from repro.dns.name import DomainName
from repro.core.delegation import DelegationView


@dataclasses.dataclass
class TCBReport:
    """Per-name trusted computing base summary.

    Attributes
    ----------
    name:
        The surveyed domain name.
    servers:
        Hostnames of every nameserver in the TCB (root servers excluded).
    in_bailiwick:
        The subset of ``servers`` administered by the name's own zone — the
        only part of the TCB the name owner directly controls.
    vulnerable:
        TCB members whose fingerprint matched at least one known exploit.
    compromisable:
        The subset of ``vulnerable`` whose exploits grant answer control
        (code execution or cache/answer corruption, not just DoS).
    """

    name: DomainName
    servers: Set[DomainName]
    in_bailiwick: Set[DomainName]
    vulnerable: Set[DomainName]
    compromisable: Set[DomainName]

    # -- sizes -------------------------------------------------------------------

    @property
    def size(self) -> int:
        """TCB size: how many nameservers the name depends on."""
        return len(self.servers)

    @property
    def in_bailiwick_count(self) -> int:
        """Number of TCB servers the name owner administers itself."""
        return len(self.in_bailiwick)

    @property
    def external_count(self) -> int:
        """Number of TCB servers outside the owner's control."""
        return self.size - self.in_bailiwick_count

    @property
    def vulnerable_count(self) -> int:
        """Number of TCB servers with at least one known vulnerability."""
        return len(self.vulnerable)

    @property
    def compromisable_count(self) -> int:
        """Number of TCB servers an attacker could take control of."""
        return len(self.compromisable)

    @property
    def safe_count(self) -> int:
        """Number of TCB servers with no known vulnerability."""
        return self.size - self.vulnerable_count

    @property
    def safety_percentage(self) -> float:
        """Percentage of the TCB with no known vulnerability (Figure 6)."""
        if not self.size:
            return 100.0
        return 100.0 * self.safe_count / self.size

    @property
    def has_vulnerable_dependency(self) -> bool:
        """True if at least one TCB member is vulnerable (Figure 5's 45 %)."""
        return bool(self.vulnerable)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation used by snapshots."""
        return {
            "name": str(self.name),
            "size": self.size,
            "in_bailiwick": self.in_bailiwick_count,
            "vulnerable": self.vulnerable_count,
            "compromisable": self.compromisable_count,
            "safety_percentage": round(self.safety_percentage, 3),
            "servers": sorted(str(s) for s in self.servers),
        }


def compute_tcb_report(graph: DelegationView,
                       vulnerability_map: Optional[Mapping[DomainName, bool]] = None,
                       compromisable_map: Optional[Mapping[DomainName, bool]] = None
                       ) -> TCBReport:
    """Build a :class:`TCBReport` from a delegation graph or zero-copy view.

    Parameters
    ----------
    graph:
        The name's delegation view (a materialised
        :class:`~repro.core.delegation.DelegationGraph` or the engine's
        :class:`~repro.core.delegation.TCBView`, whose bitset-backed
        ``tcb_frozen`` avoids one set copy here).
    vulnerability_map:
        Mapping from hostname to "has a known vulnerability".  Hostnames
        missing from the map are treated as safe — the paper's optimistic
        assumption for servers whose version could not be determined.
    compromisable_map:
        Mapping from hostname to "an exploit grants answer control".
        Defaults to the vulnerability map when omitted.
    """
    vulnerability_map = vulnerability_map or {}
    if compromisable_map is None:
        compromisable_map = vulnerability_map
    tcb_frozen = getattr(graph, "tcb_frozen", None)
    servers = set(tcb_frozen()) if tcb_frozen is not None else graph.tcb()
    vulnerable = {host for host in servers if vulnerability_map.get(host, False)}
    compromisable = {host for host in servers
                     if compromisable_map.get(host, False)}
    return TCBReport(name=graph.target, servers=servers,
                     in_bailiwick=graph.in_bailiwick_servers(),
                     vulnerable=vulnerable, compromisable=compromisable)
