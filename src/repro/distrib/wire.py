"""Length-prefixed TCP framing for the distributed survey.

Every message between the coordinator and a worker is one *frame*: a
fixed 20-byte header (magic, protocol version, frame type, payload CRC32,
payload length) followed by the payload bytes.  Control payloads (BUILD,
ERROR) are JSON; bulk payloads (SURVEY work orders, RESULT shard columns)
are REPRO-SNAP containers from :mod:`repro.core.snapstore`, so the wire
reuses the exact column codec the snapshot files use — a worker's RESULT
payload is byte-for-byte a ``KIND_SHARD`` container.

Failure surfaces are precise by design: a truncated stream names the
frame part and byte counts it died in, a checksum mismatch or bad magic
names the peer, and timeouts say what was being waited for.  All of them
raise :class:`WireError` (a :class:`DistribError`), which the CLI maps to
exit 2.

Two robustness facilities live at this layer:

* **Auth** — a shared-secret handshake: the coordinator's first frame on
  an authenticated connection is HELLO, carrying a nonce and an HMAC of
  it under the shared token (:func:`hello_payload`); the worker verifies
  with :func:`verify_hello` and rejects mismatches with a precise ERROR.
  The token never crosses the wire.
* **Fault injection** — :func:`install_fault_injector` threads a
  :class:`repro.distrib.faults.FaultInjector` into :func:`send_frame` /
  :func:`recv_frame`, so chaos tests can kill/delay/truncate/corrupt
  real frames at scripted points.  With no injector installed (the
  default) the hot path pays one ``is None`` check.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import socket
import struct
import zlib
from array import array
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.snapstore import (KIND_ORDER, _Pool, _PoolWriter,
                                  _SectionReader, _SectionWriter)

class DistribError(RuntimeError):
    """A distributed-survey failure (connection, protocol, or worker)."""


class WireError(DistribError):
    """A malformed, truncated, or timed-out frame on the wire."""


WIRE_MAGIC = b"RDWP"
WIRE_VERSION = 1

#: magic, version, frame type, reserved, payload crc32, payload length
_FRAME_HEADER = struct.Struct("<4sBBHIQ")
FRAME_HEADER_SIZE = _FRAME_HEADER.size

FRAME_BUILD = 1     # coordinator -> worker: JSON world + engine config
FRAME_SURVEY = 2    # coordinator -> worker: KIND_ORDER work order
FRAME_RESULT = 3    # worker -> coordinator: KIND_SHARD columns
FRAME_OK = 4        # worker -> coordinator: ack with no payload
FRAME_ERROR = 5     # worker -> coordinator: JSON {"error", "retryable"}
FRAME_SHUTDOWN = 6  # coordinator -> worker: exit after acking
FRAME_PING = 7      # coordinator -> worker: liveness heartbeat; reply OK
FRAME_HELLO = 8     # coordinator -> worker: HMAC auth handshake; reply OK

FRAME_NAMES = {FRAME_BUILD: "BUILD", FRAME_SURVEY: "SURVEY",
               FRAME_RESULT: "RESULT", FRAME_OK: "OK",
               FRAME_ERROR: "ERROR", FRAME_SHUTDOWN: "SHUTDOWN",
               FRAME_PING: "PING", FRAME_HELLO: "HELLO"}

#: Sanity bound on a header's claimed payload length: a corrupt length
#: field should fail loudly, not allocate garbage or stall the reader.
MAX_FRAME_PAYLOAD = 1 << 32

#: Environment variable both ends read their shared auth token from when
#: no ``--auth-token`` / ``auth_token=`` is given explicitly.
ENV_AUTH_TOKEN = "REPRO_AUTH_TOKEN"

#: The process-wide fault injector (None outside chaos tests).  See
#: :mod:`repro.distrib.faults`.
_FAULT_INJECTOR = None


def install_fault_injector(injector):
    """Install (or, with None, clear) the process fault injector.

    The same injector is installed into :mod:`repro.core.atomic`, so one
    plan scripts wire faults (``send``/``recv``/``accept``) and commit
    faults (``write``/``fsync``/``replace``) together.  Returns the
    previously installed injector so tests can restore it.
    """
    from repro.core.atomic import install_io_injector
    global _FAULT_INJECTOR
    previous = _FAULT_INJECTOR
    _FAULT_INJECTOR = injector
    install_io_injector(injector)
    return previous


def fault_injector():
    """The currently installed fault injector, or None."""
    return _FAULT_INJECTOR


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``host:port`` (raises :class:`DistribError` on bad input)."""
    host, _, port_text = address.rpartition(":")
    if not host or not port_text.isdigit():
        raise DistribError(
            f"invalid worker address {address!r}: expected host:port")
    return host, int(port_text)


def send_frame(sock: socket.socket, frame_type: int,
               payload: bytes = b"") -> int:
    """Send one frame; returns the total bytes put on the wire."""
    payload = bytes(payload)
    header = _FRAME_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, frame_type, 0,
                                zlib.crc32(payload), len(payload))
    data = header + payload
    if _FAULT_INJECTOR is not None:
        # May delay, corrupt the bytes (post-CRC), truncate-and-raise,
        # or kill the process, per the installed plan.
        data = _FAULT_INJECTOR.filter_send(sock, frame_type, data)
    try:
        sock.sendall(data)
    except OSError as error:
        raise WireError(f"connection lost while sending "
                        f"{FRAME_NAMES.get(frame_type, frame_type)} frame: "
                        f"{error}") from error
    return len(header) + len(payload)


def _recv_exact(sock: socket.socket, count: int, peer: str,
                what: str) -> bytes:
    buffer = bytearray()
    while len(buffer) < count:
        try:
            chunk = sock.recv(count - len(buffer))
        except socket.timeout as error:
            raise WireError(
                f"{peer}: timed out waiting for {what} "
                f"({len(buffer)}/{count} bytes received)") from error
        except OSError as error:
            raise WireError(
                f"{peer}: connection error while reading {what}: "
                f"{error}") from error
        if not chunk:
            raise WireError(
                f"{peer}: connection closed mid-{what} "
                f"({len(buffer)}/{count} bytes received)")
        buffer.extend(chunk)
    return bytes(buffer)


def recv_frame(sock: socket.socket, timeout: Optional[float] = None,
               peer: str = "peer") -> Tuple[int, bytes]:
    """Receive one complete frame, validating magic, version, and CRC.

    ``timeout`` (when given) is installed on the socket and bounds every
    individual read; EOF, truncation, and corruption each raise a
    :class:`WireError` naming the peer and the frame part that failed.
    """
    if timeout is not None:
        sock.settimeout(timeout)
    head = _recv_exact(sock, FRAME_HEADER_SIZE, peer, "frame header")
    magic, version, frame_type, _reserved, crc, length = \
        _FRAME_HEADER.unpack(head)
    if magic != WIRE_MAGIC:
        raise WireError(f"{peer}: bad frame magic {magic!r} "
                        f"(corrupt or non-protocol stream)")
    if version != WIRE_VERSION:
        raise WireError(f"{peer}: unsupported protocol version {version} "
                        f"(this side speaks {WIRE_VERSION})")
    if frame_type not in FRAME_NAMES:
        raise WireError(f"{peer}: unknown frame type {frame_type}")
    if length > MAX_FRAME_PAYLOAD:
        raise WireError(f"{peer}: implausible {FRAME_NAMES[frame_type]} "
                        f"payload length {length} (corrupt header)")
    payload = (_recv_exact(sock, length, peer,
                           f"{FRAME_NAMES[frame_type]} payload")
               if length else b"")
    if zlib.crc32(payload) != crc:
        raise WireError(f"{peer}: {FRAME_NAMES[frame_type]} payload "
                        f"checksum mismatch (corrupt frame)")
    if _FAULT_INJECTOR is not None:
        _FAULT_INJECTOR.frame_received(sock, frame_type)
    return frame_type, payload


class ErrorInfo(NamedTuple):
    """A decoded worker ERROR frame."""

    message: str
    #: True when the worker judged the failure transient (an I/O or
    #: poisoned-state error a reconnect-and-rebuild can cure); False for
    #: deterministic failures retrying would only repeat.
    retryable: bool


def error_payload(message: str, retryable: bool = False) -> bytes:
    return json.dumps({"error": message,
                       "retryable": bool(retryable)}).encode("utf-8")


def decode_error(payload: bytes, peer: str) -> ErrorInfo:
    try:
        document = json.loads(payload.decode("utf-8"))
        return ErrorInfo(str(document["error"]),
                         bool(document.get("retryable", False)))
    except (ValueError, KeyError, UnicodeDecodeError):
        return ErrorInfo(
            f"unreadable ERROR payload ({len(payload)} bytes)", False)


# -- auth handshake ----------------------------------------------------------------------
#
# A HELLO payload proves knowledge of the shared token without sending
# it: {"nonce": <hex>, "mac": HMAC-SHA256(token, context || nonce)}.
# This gates accidental cross-talk and unauthenticated peers on an open
# port; it is not transport encryption (for hostile networks, tunnel the
# worker port over TLS/ssh).

_HELLO_CONTEXT = b"RDWP-HELLO-v1:"


def hello_mac(token: str, nonce: str) -> str:
    return hmac.new(token.encode("utf-8"),
                    _HELLO_CONTEXT + nonce.encode("ascii"),
                    hashlib.sha256).hexdigest()


def hello_payload(token: str, nonce: Optional[str] = None) -> bytes:
    """A HELLO frame payload proving knowledge of ``token``."""
    if nonce is None:
        nonce = os.urandom(16).hex()
    return json.dumps({"nonce": nonce,
                       "mac": hello_mac(token, nonce)}).encode("utf-8")


def verify_hello(payload: bytes, token: str, peer: str) -> None:
    """Validate a HELLO payload against the shared token (or raise)."""
    try:
        document = json.loads(payload.decode("utf-8"))
        nonce = str(document["nonce"])
        mac = str(document["mac"])
        nonce.encode("ascii")
    except (ValueError, KeyError, UnicodeDecodeError, UnicodeEncodeError):
        raise WireError(f"{peer}: malformed HELLO payload")
    if not hmac.compare_digest(hello_mac(token, nonce), mac):
        raise WireError(f"{peer}: HELLO authentication failed "
                        f"(auth token mismatch)")


# -- work orders -------------------------------------------------------------------------
#
# A SURVEY payload is a KIND_ORDER REPRO-SNAP container: the shard's
# global record indices, name texts (pooled), popular flags, the full
# mutation-spec history (workers apply only the tail they have not seen),
# and the epoch's complete dirty-name set (every worker must invalidate
# *all* dirty names — a name surveyed by another worker this epoch may be
# striped onto this one next epoch, and its cached dependency row must
# not survive the change that dirtied it).


def pack_work_order(indices: Sequence[int], names: Sequence[str],
                    popular_flags: Sequence[bool], specs: Sequence[str],
                    dirty_names: Sequence[str]) -> bytes:
    writer = _SectionWriter(None, KIND_ORDER)
    pool = _PoolWriter()
    writer.add("order.idx", array("q", indices))
    writer.add("order.name", array("q", [pool.intern(name)
                                         for name in names]))
    writer.add("order.pop", bytes(1 if flag else 0
                                  for flag in popular_flags))
    writer.add("order.dirty", array("q", [pool.intern(name)
                                          for name in dirty_names]))
    writer.add_json("specs", list(specs))
    pool.write(writer, "strs")
    return writer.close_to_bytes()


def unpack_work_order(payload: bytes, label: str = "<work order>"
                      ) -> Tuple[List[int], List[str], List[bool],
                                 List[str], List[str]]:
    reader = _SectionReader(payload, KIND_ORDER, label=label)
    pool = _Pool(reader, "strs")
    indices = list(reader.q("order.idx"))
    names = [pool.text(name_id) for name_id in reader.q("order.name")]
    popular_flags = [bool(flag) for flag in reader.bytes_view("order.pop")]
    dirty = [pool.text(name_id) for name_id in reader.q("order.dirty")]
    specs = [str(spec) for spec in reader.json("specs")]
    return indices, names, popular_flags, specs, dirty
