"""Nameserver value analysis (Figures 8 and 9).

Section 3.3 models the value of a nameserver as the number of surveyed names
that depend on it: the servers an attacker gets the most leverage from.  The
analyzer aggregates per-name TCBs into a per-server count, ranks servers,
and provides the filtered views the paper plots — all servers, vulnerable
servers only, and servers operated out of ``.edu`` / ``.org``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.dns.name import DomainName, NameLike


@dataclasses.dataclass
class ServerValue:
    """Value record for one nameserver."""

    hostname: DomainName
    names_controlled: int
    rank: int = 0
    vulnerable: bool = False
    operator_tld: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "hostname": str(self.hostname),
            "names_controlled": self.names_controlled,
            "rank": self.rank,
            "vulnerable": self.vulnerable,
            "operator_tld": self.operator_tld,
        }


class NameserverValueAnalyzer:
    """Aggregates per-name TCBs into nameserver value rankings."""

    def __init__(self, vulnerability_map: Optional[Mapping[DomainName, bool]] = None):
        self.vulnerability_map = dict(vulnerability_map or {})
        self._counts: Dict[DomainName, int] = {}
        self._total_names = 0

    @classmethod
    def from_counts(cls, counts: Mapping[DomainName, int], total_names: int,
                    vulnerability_map: Optional[Mapping[DomainName, bool]] = None
                    ) -> "NameserverValueAnalyzer":
        """Build an analyzer from already-accumulated per-server counts.

        The survey engine's aggregator counts TCB membership incrementally
        while records stream in; this constructor turns that state directly
        into rankings without re-walking any per-name TCB (the
        ``AnalysisPass.finalize`` path of the ``value`` pass).
        """
        analyzer = cls(vulnerability_map)
        analyzer._counts = {DomainName(host): int(count)
                            for host, count in counts.items()}
        analyzer._total_names = int(total_names)
        return analyzer

    # -- accumulation ---------------------------------------------------------------

    def add_name(self, tcb: Iterable[NameLike]) -> None:
        """Account one surveyed name's TCB."""
        self._total_names += 1
        for hostname in tcb:
            hostname = DomainName(hostname)
            self._counts[hostname] = self._counts.get(hostname, 0) + 1

    def add_many(self, tcbs: Iterable[Iterable[NameLike]]) -> None:
        """Account many names at once."""
        for tcb in tcbs:
            self.add_name(tcb)

    @property
    def total_names(self) -> int:
        """How many names have been accounted."""
        return self._total_names

    @property
    def server_count(self) -> int:
        """How many distinct nameservers appear in at least one TCB."""
        return len(self._counts)

    # -- rankings ----------------------------------------------------------------------

    def ranking(self, only_vulnerable: bool = False,
                tld_filter: Optional[Sequence[str]] = None) -> List[ServerValue]:
        """Servers sorted by the number of names they control (descending).

        Parameters
        ----------
        only_vulnerable:
            Restrict to servers with a known vulnerability (the second
            series in Figure 8).
        tld_filter:
            Restrict to servers whose hostname falls under one of the given
            TLD labels (Figure 9 uses ``("edu",)`` and ``("org",)``).
        """
        values: List[ServerValue] = []
        for hostname, count in self._counts.items():
            vulnerable = self.vulnerability_map.get(hostname, False)
            if only_vulnerable and not vulnerable:
                continue
            tld = hostname.tld or ""
            if tld_filter is not None and tld not in tld_filter:
                continue
            values.append(ServerValue(hostname=hostname,
                                      names_controlled=count,
                                      vulnerable=vulnerable,
                                      operator_tld=tld))
        values.sort(key=lambda v: (-v.names_controlled, str(v.hostname)))
        for index, value in enumerate(values, start=1):
            value.rank = index
        return values

    def names_controlled(self, hostname: NameLike) -> int:
        """How many surveyed names depend on ``hostname``."""
        return self._counts.get(DomainName(hostname), 0)

    def counts(self) -> Dict[DomainName, int]:
        """A copy of the raw per-server counts."""
        return dict(self._counts)

    # -- paper statistics ---------------------------------------------------------------

    def mean_names_controlled(self) -> float:
        """Average number of names controlled per server (paper: 166)."""
        if not self._counts:
            return 0.0
        return sum(self._counts.values()) / len(self._counts)

    def median_names_controlled(self) -> float:
        """Median number of names controlled per server (paper: 4)."""
        if not self._counts:
            return 0.0
        ordered = sorted(self._counts.values())
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[middle])
        return (ordered[middle - 1] + ordered[middle]) / 2.0

    def high_leverage_servers(self, fraction: float = 0.10,
                              only_vulnerable: bool = False
                              ) -> List[ServerValue]:
        """Servers controlling more than ``fraction`` of the surveyed names.

        The paper reports ~125 such servers at the 10 % threshold, about 30
        of them gTLD infrastructure and about 12 of them vulnerable.
        """
        if not self._total_names:
            return []
        threshold = fraction * self._total_names
        return [value for value in self.ranking(only_vulnerable=only_vulnerable)
                if value.names_controlled > threshold]

    def summary(self, high_leverage_fraction: float = 0.10
                ) -> Dict[str, float]:
        """Headline statistics for reporting.

        Every ``high_leverage_*`` key uses the same threshold (the paper's
        10% by default), so the three counts stay mutually consistent for
        any fraction.
        """
        high = self.high_leverage_servers(high_leverage_fraction)
        high_hosts = {value.hostname for value in high}
        vulnerable_high = sum(1 for hostname in high_hosts
                              if self.vulnerability_map.get(hostname, False))
        edu_high = sum(1 for hostname in high_hosts
                       if (hostname.tld or "") == "edu")
        return {
            "servers": float(self.server_count),
            "names": float(self._total_names),
            "mean_names_controlled": self.mean_names_controlled(),
            "median_names_controlled": self.median_names_controlled(),
            "high_leverage_servers": float(len(high)),
            "high_leverage_vulnerable": float(vulnerable_high),
            "high_leverage_edu": float(edu_high),
        }
