"""CI perf smoke: fail when serial survey throughput regresses against main.

Usage::

    python benchmarks/perf_smoke.py \
        --baseline /tmp/main_BENCH_results.json \
        --current benchmarks/output/BENCH_results.json \
        [--config tiny] [--max-regression 0.20]

Compares the ``names_per_s`` field of every benchmark present in both
files' matching config section (``tiny`` for the CI smoke; full-scale
numbers are never compared against tiny ones).  Exits non-zero if any
bench regressed by more than ``--max-regression`` (default 20%).  A
missing or unreadable baseline is reported and tolerated — the first run
on a branch without main's BENCH_results.json must not fail.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Benchmarks whose names_per_s participates in the regression gate.
#: ``delta_resurvey`` is the incremental re-survey smoke (effective
#: names/s over the whole directory when only a few names are dirty);
#: ``snapshot_store`` is the lazy-open smoke (random ``record_for``
#: queries per second against an mmap'd binary snapshot).  Baselines from
#: branches predating either are skipped automatically.
THROUGHPUT_BENCHES = ("engine_survey_throughput", "passes_survey_throughput",
                      "delta_resurvey", "snapshot_store")


def _load_section(path: pathlib.Path, config: str):
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        return None, f"unreadable ({error})"
    configs = payload.get("configs")
    if not isinstance(configs, dict) or config not in configs:
        return None, f"no {config!r} section"
    return configs[config], None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=pathlib.Path,
                        help="BENCH_results.json from main")
    parser.add_argument("--current", required=True, type=pathlib.Path,
                        help="BENCH_results.json from this run")
    parser.add_argument("--config", default="tiny",
                        help="config section to compare (default: tiny)")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional throughput drop (0.20=20%%)")
    args = parser.parse_args(argv)

    current, error = _load_section(args.current, args.config)
    if current is None:
        print(f"perf-smoke: current results {args.current}: {error}")
        return 1

    baseline, error = _load_section(args.baseline, args.config)
    if baseline is None:
        print(f"perf-smoke: baseline {args.baseline}: {error}; "
              f"nothing to compare against (passing)")
        return 0

    failures = []
    compared = 0
    for bench in THROUGHPUT_BENCHES:
        before = (baseline.get(bench) or {}).get("names_per_s")
        after = (current.get(bench) or {}).get("names_per_s")
        if not before or not after:
            print(f"perf-smoke: {bench}: missing on one side, skipped")
            continue
        compared += 1
        ratio = after / before
        verdict = "ok"
        if ratio < 1.0 - args.max_regression:
            verdict = "REGRESSION"
            failures.append(bench)
        print(f"perf-smoke: {bench}: {before:.0f} -> {after:.0f} names/s "
              f"({ratio:.2f}x) {verdict}")
    if not compared:
        print("perf-smoke: no comparable benches (passing)")
        return 0
    if failures:
        print(f"perf-smoke: FAILED — {', '.join(failures)} regressed more "
              f"than {args.max_regression:.0%} vs. main")
        return 1
    print("perf-smoke: PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
