"""A simplified DNSSEC model (Section 5 of the paper).

The paper's discussion section argues that deploying DNSSEC helps — it lets
resolvers *detect* forged data — but does not remove the risks of transitive
trust, because lookups still follow the same physical delegation chains: a
compromised or unavailable dependency can still deny service, and any
unsigned link breaks the chain of trust for everything below it.

This module implements enough of DNSSEC to study that claim quantitatively
on the substrate:

* :class:`ZoneSigner` signs a zone: it installs a ``DNSKEY`` at the apex and
  an ``RRSIG`` next to every RRSet, and publishes a ``DS`` record in the
  parent zone when the parent is also signed.  Signatures are modelled as a
  keyed digest over the RRSet contents — enough to detect any record an
  attacker forges without the zone key, which is the property the analysis
  needs (real RSA/ECDSA maths would add nothing to the graph-level study).
* :class:`ChainValidator` plays the role of a validating resolver: it walks
  a name's delegation chain, checks that every zone on it is signed and has
  a matching ``DS`` in its parent, and verifies the answer's ``RRSIG``.
  The outcome mirrors RFC 4033 terminology: ``secure``, ``insecure``
  (an unsigned link — the island problem), or ``bogus`` (signature check
  failed, e.g. a hijacked answer).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, List, Optional, Set

from repro.dns.errors import ServerFailureError
from repro.dns.message import make_query
from repro.dns.name import DomainName, NameLike, ROOT_NAME
from repro.dns.rdtypes import RRType
from repro.dns.records import ResourceRecord, RRSet
from repro.dns.zone import Zone


def _digest(*parts: str) -> str:
    """Short stable digest used for simulated keys, signatures, and DS."""
    joined = "|".join(parts)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:24]


def zone_key(apex: NameLike, seed: str = "repro-dnssec") -> str:
    """Deterministic per-zone key identifier (the simulated private key)."""
    return _digest("key", str(DomainName(apex)), seed)


def rrset_signature(zone_apex: NameLike, rrset: RRSet, key: str) -> str:
    """The simulated RRSIG value covering an RRSet."""
    rdata_parts = sorted(str(record.rdata) for record in rrset)
    return _digest("sig", str(DomainName(zone_apex)), str(rrset.name),
                   rrset.rtype.name, *rdata_parts, key)


#: Sentinel distinguishing "zone never checked" from a cached None verdict.
_UNCHECKED = object()


@dataclasses.dataclass
class ValidationResult:
    """Outcome of validating one name."""

    name: DomainName
    status: str                      # "secure", "insecure", or "bogus"
    broken_zone: Optional[DomainName] = None
    detail: str = ""

    @property
    def is_secure(self) -> bool:
        """True if the full chain of trust validated."""
        return self.status == "secure"

    @property
    def forgery_detected(self) -> bool:
        """True if validation failed because data did not verify (bogus)."""
        return self.status == "bogus"


class ZoneSigner:
    """Signs zones and publishes DS records in their parents."""

    def __init__(self, seed: str = "repro-dnssec"):
        self.seed = seed
        self._signed: Set[DomainName] = set()

    @property
    def signed_zones(self) -> Set[DomainName]:
        """Apexes of every zone signed by this signer."""
        return set(self._signed)

    def is_signed(self, apex: NameLike) -> bool:
        """True if the zone rooted at ``apex`` has been signed."""
        return DomainName(apex) in self._signed

    def sign_zone(self, zone: Zone) -> str:
        """Sign every RRSet in ``zone``; returns the zone's key identifier.

        Signing is idempotent: re-signing a zone refreshes signatures for
        any RRSets added since the previous pass.
        """
        key = zone_key(zone.apex, self.seed)
        if zone.get_rrset(zone.apex, RRType.DNSKEY) is None:
            zone.add(zone.apex, RRType.DNSKEY, key)
        for rrset in list(zone.iter_rrsets()):
            if rrset.rtype in (RRType.RRSIG, RRType.DNSKEY):
                continue
            signature = rrset_signature(zone.apex, rrset, key)
            existing = zone.get_rrset(rrset.name, RRType.RRSIG)
            already = existing is not None and any(
                str(record.rdata) == f"{rrset.rtype.name} {signature}"
                for record in existing)
            if not already:
                zone.add(rrset.name, RRType.RRSIG,
                         f"{rrset.rtype.name} {signature}")
        self._signed.add(zone.apex)
        return key

    def publish_ds(self, parent_zone: Zone, child_apex: NameLike) -> Optional[str]:
        """Publish the child's DS record in the (signed) parent zone.

        Returns the DS value, or ``None`` if the parent has not been signed
        (an unsigned parent cannot anchor a secure delegation).
        """
        child_apex = DomainName(child_apex)
        if parent_zone.apex not in self._signed:
            return None
        ds_value = _digest("ds", str(child_apex),
                           zone_key(child_apex, self.seed))
        existing = parent_zone.get_rrset(child_apex, RRType.DS)
        if existing is None or all(str(r.rdata) != ds_value for r in existing):
            parent_zone.add(child_apex, RRType.DS, ds_value)
            # The new DS (and any other parent data) needs a fresh signature.
            self.sign_zone(parent_zone)
        return ds_value


class ChainValidator:
    """A validating stub resolver for the simulated DNS.

    Parameters
    ----------
    resolver:
        An :class:`~repro.dns.resolver.IterativeResolver`; used to enumerate
        the delegation chain and to fetch DNSKEY/DS/RRSIG/answer RRSets.
    trust_anchor:
        The apex the validator trusts a priori (the root by default).
    cache_zones:
        Memoize the per-zone half of validation (DNSKEY + DS checks).  A
        zone's verdict depends only on the zone and its fixed ancestry, so
        names sharing a TLD or SLD revalidate nothing above their leaf —
        the survey engine's DNSSEC pass enables this.  Only valid while the
        world's signatures are unchanged; leave off for worlds mutated
        between validations.
    """

    def __init__(self, resolver, trust_anchor: NameLike = ROOT_NAME,
                 seed: str = "repro-dnssec", cache_zones: bool = False):
        self.resolver = resolver
        self.trust_anchor = DomainName(trust_anchor)
        self.seed = seed
        self._zone_cache: Optional[Dict[DomainName, Optional[tuple]]] = \
            {} if cache_zones else None

    # -- record fetching helpers --------------------------------------------------------

    def _query_zone(self, zone: DomainName, nameservers: List[DomainName],
                    qname: NameLike, rtype: RRType) -> List[str]:
        """Ask the zone's servers for a record set; returns rdata strings."""
        for nameserver in nameservers:
            try:
                response = self.resolver.network.send_query(
                    str(nameserver), make_query(qname, rtype))
            except ServerFailureError:
                continue
            values = [str(record.rdata) for record in response.answers
                      if record.rtype is rtype]
            if values:
                return values
        return []

    # -- validation ------------------------------------------------------------------------

    def _check_zone(self, cut, cuts) -> Optional[tuple]:
        """Validate one delegation link: the zone's DNSKEY and parent DS.

        Returns ``None`` when the link is sound, else a ``(status,
        broken_zone, detail)`` triple.  The verdict depends only on the zone
        and its (fixed) ancestry, never on which surveyed name led here —
        which is what makes the ``cache_zones`` memo sound.
        """
        keys = self._query_zone(cut.zone, cut.nameservers, cut.zone,
                                RRType.DNSKEY)
        if not keys:
            return ("insecure", cut.zone, f"zone {cut.zone} is not signed")
        expected_key = zone_key(cut.zone, self.seed)
        if expected_key not in keys:
            return ("bogus", cut.zone,
                    f"zone {cut.zone} serves an unexpected key")
        parent = cut.zone.parent()
        if parent != self.trust_anchor or not parent.is_root:
            parent_cut = next((c for c in cuts if c.zone == parent), None)
            if parent_cut is not None:
                ds_values = self._query_zone(parent, parent_cut.nameservers,
                                             cut.zone, RRType.DS)
                expected_ds = _digest("ds", str(cut.zone), expected_key)
                if not ds_values:
                    return ("insecure", cut.zone,
                            f"no DS for {cut.zone} in {parent}")
                if expected_ds not in ds_values:
                    return ("bogus", cut.zone,
                            f"DS mismatch for {cut.zone}")
        return None

    def validate(self, name: NameLike,
                 expected_addresses: Optional[Iterable[str]] = None
                 ) -> ValidationResult:
        """Validate the chain of trust for ``name`` and its A records.

        ``expected_addresses`` may carry the addresses returned by an
        (unvalidated) resolution; when provided, they are checked against
        the signed data so a hijacked answer shows up as ``bogus`` even if
        the authoritative zone itself still holds the correct records.
        """
        name = DomainName(name)
        cuts = self.resolver.zone_cut_chain(name)
        if not cuts:
            return ValidationResult(name=name, status="insecure",
                                    detail="no delegation chain found")

        cache = self._zone_cache
        for cut in cuts:
            if cache is not None:
                verdict = cache.get(cut.zone, _UNCHECKED)
                if verdict is _UNCHECKED:
                    verdict = self._check_zone(cut, cuts)
                    cache[cut.zone] = verdict
            else:
                verdict = self._check_zone(cut, cuts)
            if verdict is not None:
                status, broken_zone, detail = verdict
                return ValidationResult(name=name, status=status,
                                        broken_zone=broken_zone,
                                        detail=detail)

        # Verify the answer itself against the deepest zone's signature.
        leaf = cuts[-1]
        key = zone_key(leaf.zone, self.seed)
        answers = self._query_zone(leaf.zone, leaf.nameservers, name, RRType.A)
        signatures = self._query_zone(leaf.zone, leaf.nameservers, name,
                                      RRType.RRSIG)
        if answers:
            rrset = RRSet(name, RRType.A, records=[
                ResourceRecord.create(name, RRType.A, value)
                for value in answers])
            expected_signature = f"A {rrset_signature(leaf.zone, rrset, key)}"
            if expected_signature not in signatures:
                return ValidationResult(
                    name=name, status="bogus", broken_zone=leaf.zone,
                    detail="answer RRSIG missing or invalid")
            if expected_addresses is not None and \
                    set(expected_addresses) - set(answers):
                return ValidationResult(
                    name=name, status="bogus", broken_zone=leaf.zone,
                    detail="resolved addresses differ from signed data")
        return ValidationResult(name=name, status="secure")
