"""Figure 6: distribution of the percentage of non-vulnerable TCB nodes.

Paper: the average TCB is ~91 % safe (vulnerable servers are ~9 % of the
TCB, 11 % for popular names), but a few names — the .ws community — have a
TCB with *no* safe nodes at all.
"""

from conftest import comparison_rows
from repro.core.report import CDFSeries, summary_stats


def test_fig6_tcb_safety_percentage(benchmark, paper_survey, figure_writer):
    safety = benchmark(paper_survey.safety_percentages)
    popular = paper_survey.safety_percentages(popular_only=True)
    stats = summary_stats(safety)
    cdf = CDFSeries.from_values(safety)

    lines = [
        f"mean safety (all names):     {stats['mean']:6.1f}%   "
        f"(paper: ~91% of TCB safe)",
        f"mean safety (popular names): {summary_stats(popular)['mean']:6.1f}%   "
        f"(paper: ~89%)",
        f"minimum safety:              {stats['min']:6.1f}%",
        f"names with 0% safe TCB:      "
        f"{sum(1 for value in safety if value == 0.0)}",
        "",
        "CDF sample points: safety% -> percentile of names",
    ]
    for threshold in (0, 25, 50, 75, 90, 100):
        lines.append(f"  <= {threshold:<3d}% {cdf.percentile_at(threshold):6.1f}%")
    figure_writer.write("figure6_tcb_safety",
                        "Figure 6: percentage of non-vulnerable TCB nodes",
                        lines)

    # Shape: most of a typical TCB is safe...
    assert stats["mean"] >= 60.0
    assert stats["median"] >= 70.0
    # ...but the unsafe tail exists, including (as in the paper's .ws case)
    # names whose entire TCB is vulnerable.
    assert stats["min"] <= 25.0
    fully_vulnerable = sum(1 for value in safety if value == 0.0)
    assert fully_vulnerable >= 1, \
        "the .ws-style fully-vulnerable community must appear"
    assert fully_vulnerable < 0.05 * len(safety)
