"""Tests for :mod:`repro.core.timeline` (the longitudinal epoch loop).

The acceptance property: every epoch's incremental snapshot must be
byte-identical to a cold full survey of the cumulatively mutated world —
checked here via the runner's own cold audit across seeds × backends — and
the emitted timeline must be machine-readable and monotone where the world
is (DNSSEC never regresses, epochs contiguous).
"""

import dataclasses
import json

import pytest

from repro.core.timeline import (
    Timeline,
    TimelineSnapshot,
    dnssec_spec_options,
    load_timeline,
    run_churn_timeline,
    save_timeline,
    _with_dnssec_fraction,
)
from repro.topology.churn import ChurnModel, ChurnRates
from repro.topology.generator import GeneratorConfig, InternetGenerator

#: Two seeds so nothing passes by topological accident.
SEEDS = (4242, 1977)

#: Two backends: the serial reference and a partitioned one.
BACKENDS = ("serial", "thread")

RATES = ChurnRates(transfer=1.0, death=0.5, upgrade=1.0, downgrade=0.5,
                   region=1.0, dnssec=0.15)

PASSES = ("availability:samples=4", "dnssec:fraction=0.3")

EPOCHS = 3


def _world(seed):
    config = GeneratorConfig(seed=seed, sld_count=60,
                             directory_name_count=90, university_count=12,
                             hosting_provider_count=6, isp_count=4,
                             alexa_count=15)
    return InternetGenerator(config).generate()


def _model(world, churn_seed=9, passes=PASSES):
    fraction, dnssec_seed, sign_tlds = dnssec_spec_options(passes)
    return ChurnModel(world, RATES, seed=churn_seed,
                      initial_dnssec=fraction, dnssec_seed=dnssec_seed,
                      dnssec_sign_tlds=sign_tlds)


@pytest.fixture(scope="module", params=SEEDS)
def audited_timeline(request):
    """Per-seed: a serial cold-audited run (the delta-correctness oracle)."""
    world = _world(request.param)
    timeline = run_churn_timeline(world, _model(world), epochs=EPOCHS,
                                  passes=PASSES, popular_count=15,
                                  cold_check=True)
    return timeline


# -- delta-correctness (seeds x backends) ----------------------------------------------

def test_every_epoch_matches_its_cold_survey(audited_timeline):
    epochs = audited_timeline.snapshots[1:]
    assert len(epochs) == EPOCHS
    assert all(snapshot.cold_identical for snapshot in epochs)
    assert all(snapshot.cold_elapsed_s > 0 for snapshot in epochs)


@pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "serial"])
@pytest.mark.parametrize("seed", SEEDS)
def test_partitioned_backends_stay_delta_correct(seed, backend):
    """The epoch loop holds its cold contract off the serial backend too."""
    world = _world(seed)
    timeline = run_churn_timeline(world, _model(world), epochs=EPOCHS,
                                  backend=backend, workers=3,
                                  passes=PASSES, popular_count=15,
                                  cold_check=True)
    assert all(snapshot.cold_identical
               for snapshot in timeline.snapshots[1:])


def _timing_free(timeline):
    """Snapshot dicts with wall-clock (and audit) fields zeroed out."""
    return [dict(snapshot.to_dict(), cold_elapsed_s=None,
                 cold_identical=None, delta_elapsed_s=0)
            for snapshot in timeline.snapshots]


def test_same_scenario_reduces_identically():
    """Same world seed + churn seed + rates: the reduction reproduces."""
    runs = []
    for _ in range(2):
        world = _world(SEEDS[0])
        runs.append(run_churn_timeline(world, _model(world), epochs=EPOCHS,
                                       passes=PASSES, popular_count=15))
    assert _timing_free(runs[0]) == _timing_free(runs[1])


# -- timeline invariants ---------------------------------------------------------------

def test_epochs_are_contiguous_and_dnssec_is_monotone(audited_timeline):
    audited_timeline.validate()
    epochs = audited_timeline.drift_series("epoch")
    assert epochs == list(range(len(epochs)))
    fractions = audited_timeline.drift_series("dnssec_fraction")
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))
    assert fractions[-1] > fractions[0], "dnssec rate 0.15 must show drift"


def test_drift_series_is_non_empty_and_live(audited_timeline):
    changed = audited_timeline.drift_series("changed_names")
    assert changed[0] == 0
    assert sum(changed[1:]) > 0, "three churn epochs must move something"
    assert all(snapshot.events > 0
               for snapshot in audited_timeline.snapshots[1:])
    baseline = audited_timeline.snapshots[0]
    assert baseline.dirty_names == baseline.total_names
    assert all(snapshot.dirty_names < snapshot.total_names
               for snapshot in audited_timeline.snapshots[1:])


def test_timeline_round_trips_through_json(audited_timeline, tmp_path):
    path = save_timeline(audited_timeline, tmp_path / "timeline.json")
    loaded = load_timeline(path)
    assert loaded.to_dict() == audited_timeline.to_dict()
    # The file itself is plain, sorted, machine-readable JSON.
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["format_version"] == 1
    assert [row["epoch"] for row in payload["snapshots"]] == \
        list(range(EPOCHS + 1))


def _snapshot(epoch=0, **overrides):
    base = dict(epoch=epoch, events=0, event_kinds={}, total_names=10,
                dirty_names=10, patched_names=0, dirty_fraction=1.0,
                delta_elapsed_s=0.1, names_resolved=9,
                hijackable_fraction=0.3, mean_tcb=20.0, median_tcb=18.0,
                p95_tcb=40.0, mean_mincut=2.0,
                vulnerable_dependency_fraction=0.4, availability_mean=None,
                dnssec_secure_fraction=None, dnssec_fraction=0.2,
                changed_names=0, added_names=0, removed_names=0,
                tcb_mean_abs_delta=0.0, top_movers=[])
    base.update(overrides)
    return TimelineSnapshot(**base)


def test_validate_rejects_gapped_epochs():
    timeline = Timeline(config={}, snapshots=[_snapshot(0), _snapshot(2)])
    with pytest.raises(ValueError, match="contiguous"):
        timeline.validate()


def test_validate_rejects_shrinking_dnssec():
    timeline = Timeline(config={}, snapshots=[
        _snapshot(0, dnssec_fraction=0.5),
        _snapshot(1, dnssec_fraction=0.4)])
    with pytest.raises(ValueError, match="monotone"):
        timeline.validate()


def test_validate_rejects_inconsistent_directories():
    timeline = Timeline(config={}, snapshots=[
        _snapshot(0), _snapshot(1, total_names=11)])
    with pytest.raises(ValueError, match="same directory"):
        timeline.validate()


def test_from_dict_rejects_unknown_fields_and_versions():
    with pytest.raises(ValueError, match="format version"):
        Timeline.from_dict({"format_version": 99})
    payload = dataclasses.asdict(_snapshot(0))
    payload["surprise"] = 1
    with pytest.raises(ValueError, match="unknown timeline snapshot field"):
        TimelineSnapshot.from_dict(payload)


def test_from_dict_rejects_missing_fields():
    payload = dataclasses.asdict(_snapshot(0))
    del payload["mean_tcb"]
    with pytest.raises(ValueError, match="missing field.*mean_tcb"):
        TimelineSnapshot.from_dict(payload)
    # The audit-only fields are optional: absent is fine, not an error.
    optional = dataclasses.asdict(_snapshot(0))
    del optional["cold_elapsed_s"], optional["cold_identical"]
    assert TimelineSnapshot.from_dict(optional).cold_identical is None


# -- plumbing --------------------------------------------------------------------------

def test_dnssec_spec_options_reads_the_pass_spec():
    assert dnssec_spec_options(()) == (0.0, "repro-dnssec", True)
    assert dnssec_spec_options(None) == (0.0, "repro-dnssec", True)
    assert dnssec_spec_options(("availability",)) == \
        (0.0, "repro-dnssec", True)
    assert dnssec_spec_options(("dnssec",)) == (1.0, "repro-dnssec", True)
    assert dnssec_spec_options(
        ("availability", "dnssec:fraction=0.4;seed=alt")) == \
        (0.4, "alt", True)
    # The CLI comma-string form, with the sign-TLDs policy carried through.
    assert dnssec_spec_options(
        "availability, dnssec:fraction=0.4;sign_tlds=false") == \
        (0.4, "repro-dnssec", False)


def test_cold_audit_respects_sign_tlds_policy():
    """A sign_tlds=false pass must survive churn adoption + cold audit."""
    world = _world(SEEDS[0])
    passes = ("dnssec:fraction=0.3;sign_tlds=false",)
    timeline = run_churn_timeline(world, _model(world, passes=passes),
                                  epochs=2, passes=passes,
                                  popular_count=15, cold_check=True)
    assert all(snapshot.cold_identical
               for snapshot in timeline.snapshots[1:])


def test_with_dnssec_fraction_rewrites_only_the_dnssec_spec():
    specs = ("availability:samples=4", "dnssec:fraction=0.3;seed=alt")
    rewritten = _with_dnssec_fraction(specs, 0.55)
    assert rewritten[0] == "availability:samples=4"
    assert rewritten[1].startswith("dnssec:fraction=0.55")
    assert "seed=alt" in rewritten[1]


def test_runner_rejects_pass_instances():
    world = _world(4242)
    from repro.core.passes import build_passes
    with pytest.raises(TypeError, match="spec strings"):
        run_churn_timeline(world, _model(world), epochs=0,
                           passes=build_passes("availability"))


def test_runner_rejects_negative_epochs():
    world = _world(4242)
    with pytest.raises(ValueError, match="epochs"):
        run_churn_timeline(world, _model(world), epochs=-1)


# -- the binary epoch store ------------------------------------------------------------

def test_run_with_store_persists_every_epoch(tmp_path):
    """store= archives epoch 0 full + one delta per churn epoch, and every
    reconstructed epoch opens lazily with the epoch's own metadata."""
    from repro.core.snapstore import EpochStore

    world = _world(SEEDS[0])
    store_dir = tmp_path / "epochs"
    timeline = run_churn_timeline(world, _model(world), epochs=EPOCHS,
                                  passes=PASSES, popular_count=15,
                                  store=store_dir)
    assert timeline.config["store"] == str(store_dir)
    store = EpochStore(store_dir)
    assert store.epochs == EPOCHS + 1
    last = store.load_epoch(EPOCHS)
    assert last.hydrated_record_count == 0
    assert len(last.records) == timeline.snapshots[-1].total_names
    resolved = sum(1 for record in last.records if record.resolved)
    assert resolved == timeline.snapshots[-1].names_resolved


def test_run_refuses_a_non_empty_store(tmp_path):
    from repro.core.snapstore import EpochStore

    world = _world(SEEDS[0])
    store_dir = tmp_path / "epochs"
    run_churn_timeline(world, _model(world), epochs=0, store=store_dir)
    assert EpochStore(store_dir).epochs == 1
    with pytest.raises(ValueError, match="not empty"):
        run_churn_timeline(world, _model(world), epochs=0, store=store_dir)


# -- input sniffing --------------------------------------------------------------------

def test_load_timeline_rejects_binary_snapshots(tmp_path):
    from repro.core.snapstore import MAGIC, SnapshotFormatError

    wrong = tmp_path / "results.rsnap"
    wrong.write_bytes(MAGIC + b"not a timeline")
    with pytest.raises(SnapshotFormatError, match="not a timeline"):
        load_timeline(wrong)


def test_load_timeline_rejects_corrupt_zlib_and_json(tmp_path):
    from repro.core.snapstore import SnapshotFormatError

    bad_zlib = tmp_path / "bad.json.z"
    bad_zlib.write_bytes(b"\x78\x9c" + b"\x00" * 8)
    with pytest.raises(SnapshotFormatError, match="zlib"):
        load_timeline(bad_zlib)
    bad_json = tmp_path / "bad.json"
    bad_json.write_text("{definitely not json")
    with pytest.raises(SnapshotFormatError, match="malformed"):
        load_timeline(bad_json)
