#!/usr/bin/env python
"""Case study: hijacking www.fbi.gov through an obscure third-party server.

The paper's motivating anecdote: fbi.gov is served by two machines at
sprintip.com, whose own domain is served by reston-ns[123].telemail.net, and
reston-ns2 runs BIND 8.2.4 with four well-known exploits (libbind, negcache,
sigrec, DoS-multi).  Compromising that one box lets an attacker divert
queries for dns.sprintip.com to a rogue server, which then answers for
www.fbi.gov with any address it likes.

This example reproduces the whole chain on the synthetic Internet:

1. build the delegation graph of www.fbi.gov and show that it transitively
   depends on the telemail server;
2. fingerprint the TCB and print the attack-path narrative;
3. actually carry the attack out: compromise the vulnerable bottleneck,
   stand up a rogue nameserver, and measure how many client resolutions get
   diverted to the attacker's address.

Run with::

    python examples/fbi_attack_path.py
"""

from __future__ import annotations

import random

from repro import GeneratorConfig, InternetGenerator
from repro.core.delegation import DelegationGraphBuilder
from repro.core.hijack import HijackAnalyzer, HijackSimulator
from repro.vulns.database import default_database
from repro.vulns.fingerprint import Fingerprinter

VICTIM = "www.fbi.gov"
ATTACKER_ADDRESS = "203.0.113.66"


def main() -> None:
    print("Building a synthetic Internet with the fbi.gov case study ...")
    config = GeneratorConfig(seed=20040722, sld_count=400,
                             directory_name_count=650, university_count=70,
                             hosting_provider_count=18, isp_count=12)
    internet = InternetGenerator(config).generate()

    print(f"\n[1] Delegation graph of {VICTIM}")
    builder = DelegationGraphBuilder(internet.make_resolver())
    graph = builder.build(VICTIM)
    print(f"    TCB size: {graph.tcb_size()} nameservers "
          f"({len(graph.in_bailiwick_servers())} under fbi.gov itself)")
    chain = graph.dependency_path("reston-ns2.telemail.net")
    print("    dependency chain to the weak server:")
    for kind, entity in chain:
        print(f"      [{kind:4s}] {entity}")

    print("\n[2] Fingerprinting the TCB (version.bind)")
    database = default_database()
    fingerprinter = Fingerprinter(internet.network, database)
    compromisable = {}
    for hostname in sorted(graph.tcb()):
        result = fingerprinter.fingerprint(hostname)
        compromisable[hostname] = database.is_compromisable(result.banner)
        if result.is_vulnerable:
            exploits = ", ".join(result.vulnerabilities)
            print(f"    VULNERABLE {hostname}: {result.banner} ({exploits})")

    assessment = HijackAnalyzer(compromisable).assess(graph)
    print(f"    classification: {assessment.classification}")
    print(f"    bottleneck: {assessment.bottleneck.size} servers, "
          f"{assessment.bottleneck.safe_in_cut} of them safe")

    print("\n[3] Executing the attack")
    simulator = HijackSimulator(internet, attacker_address=ATTACKER_ADDRESS)
    simulator.compromise(["reston-ns2.telemail.net"], VICTIM,
                         diverted_names=["dns.sprintip.com",
                                         "dns2.sprintip.com"])
    outcome = simulator.attempt(VICTIM, trials=100, rng=random.Random(7))
    print(f"    compromised: reston-ns2.telemail.net (BIND 8.2.4)")
    print(f"    {outcome.diverted}/{outcome.trials} client resolutions of "
          f"{VICTIM} were diverted to {ATTACKER_ADDRESS} "
          f"({outcome.diversion_rate:.0%})")

    print("\n[4] Escalating: also compromise the other telemail servers")
    simulator.compromise(["reston-ns1.telemail.net",
                          "reston-ns3.telemail.net"], VICTIM,
                         diverted_names=["dns.sprintip.com",
                                         "dns2.sprintip.com"])
    outcome = simulator.attempt(VICTIM, trials=100, rng=random.Random(8))
    print(f"    {outcome.diverted}/{outcome.trials} resolutions diverted "
          f"({outcome.diversion_rate:.0%}) -- "
          f"{'complete hijack' if outcome.complete else 'partial hijack'}")
    simulator.restore()

    print("\nDone. The FBI never ran a vulnerable server itself; the weak "
          "link was two delegations away.")


if __name__ == "__main__":
    main()
