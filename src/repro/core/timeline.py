"""Longitudinal churn timelines: epoch loops over the delta engine.

The one-shot survey answers "whose servers does this name trust *today*?".
The paper's larger point is that the answer drifts: zones change hands,
boxes die, deployment creeps.  This module runs that movie.  Each epoch a
:class:`~repro.topology.churn.ChurnModel` mutates the world through a fresh
:class:`~repro.topology.changes.ChangeJournal`, the engine re-surveys just
the invalidated names (:meth:`~repro.core.engine.SurveyEngine.run_delta`),
and the results are reduced into a :class:`TimelineSnapshot` — the
machine-readable per-epoch row a longitudinal analysis consumes.

Invariants a :class:`Timeline` promises (and :meth:`Timeline.validate`
enforces on load, so a corrupted or hand-edited ``timeline.json`` fails
loudly instead of producing silent nonsense):

* epoch indices are contiguous from 0 (the cold baseline) to ``epochs``;
* the DNSSEC target fraction is monotone non-decreasing — signing is
  additive, deployment never regresses;
* every epoch surveys the same directory (``total_names`` constant).

``cold_check=True`` additionally runs a cold full survey of the mutated
world after every epoch and records whether the incremental snapshot is
byte-identical to it (``cold_identical``) plus the cold wall-clock — the
delta-correctness audit the tests and the churn benchmark assert on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import time
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Sequence,
                    Tuple, Union)

from repro.core.atomic import atomic_write_text
from repro.core.delta import DeltaStats, DirtyIndex
from repro.core.engine import EngineConfig, SurveyEngine
from repro.core.export import _is_zlib_header
from repro.core.passes import build_passes
from repro.core.report import percentile, summary_stats
from repro.core.snapshot import diff_results, results_to_dict
from repro.core.snapstore import MAGIC, EpochStore, SnapshotFormatError
from repro.core.survey import SurveyResults

# The topology layer imports core.delegation at module load (the shared
# exclusion-suffix constant), so the loop back into topology must stay
# call-time-lazy here or package initialisation becomes order-dependent.
# ``ChurnModel`` is annotation-only (PEP 563 strings via the __future__
# import above); ``ChangeJournal`` is imported inside the epoch loop.
if TYPE_CHECKING:
    from repro.topology.churn import ChurnModel

#: Format version written into every timeline for forwards compatibility.
TIMELINE_FORMAT_VERSION = 1

#: How many most-changed names each epoch snapshot records.  This is the
#: upper bound on what `repro-dns timeline --movers` can render — movers
#: beyond it are not persisted.
TOP_MOVER_COUNT = 10

PathLike = Union[str, pathlib.Path]


@dataclasses.dataclass
class TimelineSnapshot:
    """One epoch's machine-readable reduction of the survey results.

    ``epoch`` 0 is the cold baseline (everything "dirty", no drift); every
    later epoch reflects one churn step re-surveyed incrementally.
    """

    epoch: int
    #: Journalled events this epoch, total and per event kind.
    events: int
    event_kinds: Dict[str, int]
    #: Delta bookkeeping (epoch 0: dirty == total, patched == 0).
    total_names: int
    dirty_names: int
    patched_names: int
    dirty_fraction: float
    delta_elapsed_s: float
    #: Survey aggregates — the drift series.
    names_resolved: int
    hijackable_fraction: float
    mean_tcb: float
    median_tcb: float
    p95_tcb: float
    mean_mincut: float
    vulnerable_dependency_fraction: float
    #: Pass aggregates, present when the corresponding pass ran.
    availability_mean: Optional[float]
    dnssec_secure_fraction: Optional[float]
    #: The churn model's target signed fraction (monotone by construction).
    dnssec_fraction: float
    #: Drift vs the previous epoch (empty on the baseline).
    changed_names: int
    added_names: int
    removed_names: int
    tcb_mean_abs_delta: float
    top_movers: List[Dict[str, str]]
    #: Cold-audit fields, populated only when ``cold_check`` ran.
    cold_elapsed_s: Optional[float] = None
    cold_identical: Optional[bool] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (field names are the schema)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TimelineSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        fields = dataclasses.fields(cls)
        known = {field.name for field in fields}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown timeline snapshot field(s) "
                             f"{sorted(unknown)}")
        required = {field.name for field in fields
                    if field.default is dataclasses.MISSING}
        missing = required - set(payload)
        if missing:
            raise ValueError(f"timeline snapshot missing field(s) "
                             f"{sorted(missing)}")
        return cls(**payload)  # type: ignore[arg-type]


@dataclasses.dataclass
class Timeline:
    """A complete longitudinal run: configuration plus per-epoch snapshots."""

    #: Run provenance: churn seed/rates, engine backend, pass specs, the
    #: generator description the caller chose to record.
    config: Dict[str, object]
    snapshots: List[TimelineSnapshot]

    def __len__(self) -> int:
        return len(self.snapshots)

    @property
    def epochs(self) -> int:
        """Number of churn epochs (the baseline does not count)."""
        return max(0, len(self.snapshots) - 1)

    @property
    def interrupted_at(self) -> Optional[int]:
        """The last committed epoch of an interrupted run, else None.

        Set by the graceful-shutdown path: the run stopped early, every
        epoch up to (and including) this one is durable, and
        ``churn --resume`` is the documented next step.
        """
        return self.config.get("interrupted_at_epoch")

    def drift_series(self, field: str) -> List[object]:
        """One snapshot field across every epoch, baseline first."""
        return [getattr(snapshot, field) for snapshot in self.snapshots]

    def validate(self) -> None:
        """Enforce the timeline invariants; raises ``ValueError``."""
        if not self.snapshots:
            raise ValueError("timeline has no snapshots")
        for position, snapshot in enumerate(self.snapshots):
            if snapshot.epoch != position:
                raise ValueError(
                    f"epoch indices must be contiguous from 0: found "
                    f"epoch {snapshot.epoch} at position {position}")
        fractions = self.drift_series("dnssec_fraction")
        for previous, current in zip(fractions, fractions[1:]):
            if current < previous:
                raise ValueError(
                    f"DNSSEC fraction must be monotone non-decreasing "
                    f"(signing is additive): {previous} -> {current}")
        totals = {snapshot.total_names for snapshot in self.snapshots}
        if len(totals) > 1:
            raise ValueError(f"every epoch must survey the same directory; "
                             f"saw name counts {sorted(totals)}")
        interrupted = self.interrupted_at
        if interrupted is not None:
            last = self.snapshots[-1].epoch
            if not isinstance(interrupted, int) or interrupted != last:
                raise ValueError(
                    f"interrupted_at_epoch must name the last committed "
                    f"epoch ({last}), got {interrupted!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "format_version": TIMELINE_FORMAT_VERSION,
            "config": dict(self.config),
            "snapshots": [snapshot.to_dict() for snapshot in self.snapshots],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Timeline":
        version = payload.get("format_version")
        if version != TIMELINE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported timeline format version: {version!r}")
        snapshots = [TimelineSnapshot.from_dict(raw)
                     for raw in payload.get("snapshots", [])]
        return cls(config=dict(payload.get("config", {})),
                   snapshots=snapshots)


def save_timeline(timeline: Timeline, path: PathLike) -> pathlib.Path:
    """Atomically write a timeline to ``path`` as JSON; returns the path.

    The write goes through :mod:`repro.core.atomic`, so an interrupted
    save (including the graceful-shutdown partial save) can never leave a
    torn ``timeline.json`` — the previous contents, if any, survive.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, json.dumps(timeline.to_dict(), indent=1,
                                       sort_keys=True) + "\n")
    return path


def timeline_fingerprint(timeline: Timeline) -> str:
    """A sha256 over the timeline's *deterministic* content.

    Two runs of the same seeded world produce identical drift series but
    can never produce identical wall-clocks, and socket runs record the
    ephemeral worker addresses (and the store its path) in the config —
    so literal byte-equality of ``timeline.json`` is unachievable even
    between two uninterrupted runs.  The fingerprint canonicalises
    exactly that: elapsed fields are zeroed and the ``store`` /
    ``worker_addrs`` config entries dropped before hashing.  Everything
    else — every snapshot field, the churn seed, rates, pass specs, an
    ``interrupted_at_epoch`` marker — is covered, which is what makes
    ``fingerprint(resumed run) == fingerprint(uninterrupted run)`` the
    resume-determinism acceptance check.
    """
    payload = timeline.to_dict()
    config = payload["config"]
    config.pop("store", None)
    config.pop("worker_addrs", None)
    for snapshot in payload["snapshots"]:
        snapshot["delta_elapsed_s"] = 0.0
        if snapshot.get("cold_elapsed_s") is not None:
            snapshot["cold_elapsed_s"] = 0.0
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def load_timeline(path: PathLike) -> Timeline:
    """Read (and validate) a timeline written by :func:`save_timeline`.

    Sniffs the leading bytes before parsing: a REPRO-SNAP results file or
    a zlib-compressed document handed to ``timeline report`` by mistake
    gets a precise :class:`SnapshotFormatError` instead of a raw
    ``json.JSONDecodeError``.
    """
    import zlib

    path = pathlib.Path(path)
    raw = path.read_bytes()
    if raw.startswith(MAGIC):
        raise SnapshotFormatError(
            f"{path}: this is a REPRO-SNAP survey snapshot, not a timeline "
            f"JSON (use 'repro-dns report' for survey snapshots)")
    if _is_zlib_header(raw[:2]):
        try:
            raw = zlib.decompress(raw)
        except zlib.error as error:
            raise SnapshotFormatError(
                f"{path}: truncated or corrupt zlib stream: {error}"
            ) from error
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise SnapshotFormatError(
            f"{path}: not a timeline (expected JSON, got malformed input: "
            f"{error})") from error
    timeline = Timeline.from_dict(payload)
    timeline.validate()
    return timeline


# -- pass-spec plumbing ----------------------------------------------------------------


def dnssec_spec_options(passes: Union[str, Sequence[str], None]
                        ) -> Tuple[float, str, bool]:
    """(fraction, seed, sign_tlds) of the ``dnssec`` pass configuration.

    Accepts the same forms as :func:`run_churn_timeline` (a comma-joined
    CLI string, a sequence of spec strings, or ``None``).  The churn
    model's adoption state must start exactly where the engine's
    deployment starts — fraction, seed, *and* the sign-TLDs policy — or
    the first journalled extension would deploy a mismatched superset and
    be rejected.  The specs are resolved through
    :func:`repro.core.passes.build_passes` and the built pass's own
    attributes are read, so this can never drift from the grammar (or the
    defaults) the engine itself applies.  Returns
    (0.0, "repro-dnssec", True) — an unsigned world — when no dnssec
    pass is configured.
    """
    for pass_ in build_passes(list(_normalise_pass_specs(passes))):
        if pass_.name == "dnssec":
            return pass_.fraction, pass_.seed, pass_.sign_tlds
    return 0.0, "repro-dnssec", True


def _with_dnssec_fraction(pass_specs: Sequence[str],
                          fraction: float) -> List[str]:
    """Pass specs with the dnssec fraction rewritten to ``fraction``.

    Used by the cold audit: a cold engine over the epoch-``e`` world must
    be *configured* for the deployment the journal has grown to, exactly
    as the warm engine adopted it.
    """
    rewritten: List[str] = []
    for spec in pass_specs:
        kind, _, option_text = spec.partition(":")
        if kind.strip() != "dnssec":
            rewritten.append(spec)
            continue
        options = [item.strip() for item in option_text.split(";")
                   if item.strip() and
                   not item.strip().startswith("fraction")]
        options.insert(0, f"fraction={fraction}")
        rewritten.append("dnssec:" + ";".join(options))
    return rewritten


# -- the epoch loop --------------------------------------------------------------------


def _normalise_pass_specs(passes: Union[str, Sequence[str], None]
                          ) -> Tuple[str, ...]:
    if passes is None:
        return ()
    if isinstance(passes, str):
        return tuple(item.strip() for item in passes.split(",")
                     if item.strip())
    for spec in passes:
        if not isinstance(spec, str):
            raise TypeError(
                "run_churn_timeline needs pass *spec strings* (it rebuilds "
                "fresh pass instances for the cold audit); got "
                f"{type(spec).__name__}")
    return tuple(passes)


def _reduce_epoch(epoch: int, results: SurveyResults,
                  previous: Optional[SurveyResults],
                  events: Sequence, stats,
                  elapsed_s: float,
                  dnssec_fraction: float) -> TimelineSnapshot:
    """Fold one epoch's results (and drift vs ``previous``) into a row."""
    sizes = [float(size) for size in results.tcb_sizes()]
    event_kinds: Dict[str, int] = {}
    for event in events:
        event_kinds[event.kind] = event_kinds.get(event.kind, 0) + 1

    extras = results.extras_summary()
    availability = extras.get("availability")
    dnssec_secure = extras.get("dnssec_status=secure")
    if dnssec_secure is None and "dnssec_status" in \
            results.extras_columns():
        dnssec_secure = 0.0  # the pass ran but nothing validated secure

    changed = added = removed = 0
    tcb_drift = 0.0
    movers: List[Dict[str, str]] = []
    if previous is not None:
        diff = diff_results(previous, results)
        changed = diff.changed
        added = len(diff.only_in_b)
        removed = len(diff.only_in_a)
        tcb_drift = diff.numeric.get("tcb_size", {}).get("mean_abs_delta",
                                                         0.0)
        movers = [
            {"name": str(change.name),
             "changes": "; ".join(
                 f"{field}: {before} -> {after}"
                 for field, (before, after) in sorted(change.fields.items()))}
            for change in diff.top_movers(TOP_MOVER_COUNT)]

    size_stats = summary_stats(sizes)

    return TimelineSnapshot(
        epoch=epoch,
        events=len(events),
        event_kinds=event_kinds,
        total_names=stats.total_names,
        dirty_names=stats.dirty_names,
        patched_names=stats.patched_names,
        dirty_fraction=stats.dirty_fraction,
        delta_elapsed_s=round(elapsed_s, 6),
        names_resolved=len(results.resolved_records()),
        hijackable_fraction=results.fraction_completely_hijackable(),
        mean_tcb=size_stats["mean"],
        median_tcb=size_stats["median"],
        p95_tcb=percentile(sizes, 95.0),
        mean_mincut=results.mean_mincut_size(),
        vulnerable_dependency_fraction=
        results.fraction_with_vulnerable_dependency(),
        availability_mean=availability,
        dnssec_secure_fraction=dnssec_secure,
        dnssec_fraction=dnssec_fraction,
        changed_names=changed,
        added_names=added,
        removed_names=removed,
        tcb_mean_abs_delta=tcb_drift,
        top_movers=movers)


@dataclasses.dataclass
class _BaselineStats:
    """Delta-shaped bookkeeping for the cold epoch-0 survey."""

    total_names: int
    dirty_names: int
    patched_names: int = 0
    dirty_fraction: float = 1.0


def run_churn_timeline(internet, model: ChurnModel, epochs: int,
                       backend: str = "serial", workers: int = 1,
                       include_bottleneck: bool = True,
                       passes: Union[str, Sequence[str], None] = None,
                       popular_count: int = 500,
                       max_names: Optional[int] = None,
                       cold_check: bool = False,
                       store: Union[EpochStore, PathLike, None] = None,
                       keyframe_every: Optional[int] = None,
                       worker_addrs: Sequence[str] = (),
                       socket_options: Optional[Dict[str, object]] = None,
                       progress=None,
                       resume: bool = False,
                       should_stop: Optional[Callable[[], bool]] = None
                       ) -> Timeline:
    """Run ``epochs`` churn steps over ``internet`` and reduce each epoch.

    The loop alternates ``model.advance`` (world mutation through a fresh
    journal) with ``engine.run_delta`` (dirty-only re-survey), starting
    from a cold epoch-0 baseline.  ``passes`` must be spec strings (see
    :func:`repro.core.passes.build_passes`) — the runner builds the warm
    engine itself and, under ``cold_check``, fresh cold engines whose
    dnssec fraction tracks the journal's deployment progress.

    ``store``, when given (an :class:`~repro.core.snapstore.EpochStore` or
    a directory path), persists every epoch's full results: epoch 0 as a
    complete binary snapshot, later epochs as column deltas bounded by the
    engine's dirty sets — so disk usage grows with churn, not with
    ``epochs × universe``.

    ``keyframe_every=K`` makes the store write a complete snapshot every
    K epochs (instead of a delta), bounding ``load_epoch`` overlay chains.

    ``worker_addrs`` (with ``backend="socket"``) runs every epoch's
    re-survey over a pool of `repro-dns worker` processes; the workers
    stay warm across epochs, each receiving only the shard of dirty
    names striped onto it plus the epoch's mutation specs.  The cold
    audit (``cold_check``) always runs serially: it exists to check the
    warm distributed state against an independent reference, and the
    busy workers cannot serve a second coordinator mid-epoch.
    ``socket_options`` passes extra :class:`EngineConfig` fields (e.g.
    ``retries``, ``min_workers``, ``auth_token``, ``response_timeout``)
    through to the socket backend only — the serial cold audit never
    sees them.

    ``progress``, when given, is called as ``progress(epoch, snapshot)``
    after each epoch is reduced.

    ``resume=True`` continues an interrupted run from a non-empty
    ``store``: the committed epochs are *replayed* — ``model.advance``
    re-derives the world and the engine's warm state epoch by epoch (the
    churn model is seeded, so the event sequence reproduces exactly),
    while the results come straight off the store's durable epochs with
    no re-survey — and the loop then continues from the first
    uncommitted epoch.  The finished timeline is deterministic: its
    :func:`timeline_fingerprint` equals an uninterrupted run's.
    ``internet`` and ``model`` must be freshly built with the run's
    original seeds and configuration.

    ``should_stop``, when given, is polled between epochs (the graceful-
    shutdown hook): returning True finishes the in-flight epoch's commit,
    marks the timeline ``interrupted_at_epoch``, and returns it early.
    """
    from repro.topology.changes import ChangeJournal

    if epochs < 0:
        raise ValueError("epochs must be >= 0")
    pass_specs = _normalise_pass_specs(passes)
    epoch_store = (store if isinstance(store, EpochStore) or store is None
                   else EpochStore(store, keyframe_every=keyframe_every))
    if resume:
        if epoch_store is None:
            raise ValueError("resume needs an epoch store (the committed "
                             "epochs are the only durable state)")
        _check_resumable_store(epoch_store, epochs)
    elif epoch_store is not None and epoch_store.epochs:
        raise ValueError(f"epoch store {epoch_store.root} is not empty "
                         f"(holds {epoch_store.epochs} epochs; pass "
                         f"resume=True / --resume to continue it)")

    def engine_config(specs: Sequence[str],
                      run_backend: Optional[str] = None) -> EngineConfig:
        run_backend = run_backend or backend
        extra = dict(socket_options or {}) if run_backend == "socket" else {}
        return EngineConfig(backend=run_backend, workers=workers,
                            include_bottleneck=include_bottleneck,
                            popular_count=popular_count,
                            passes=build_passes(list(specs)),
                            worker_addrs=(tuple(worker_addrs)
                                          if run_backend == "socket"
                                          else ()),
                            **extra)

    # The engine is created on the *pristine* world with the original
    # pass specs — on resume too: replay then advances world and engine
    # together, so the coordinator's frozen BUILD frame and the replayed
    # spec history match what the interrupted run's workers saw.
    engine = SurveyEngine(internet, config=engine_config(pass_specs))

    try:
        return _run_epoch_loop(internet, model, epochs, engine,
                               engine_config, pass_specs, backend, workers,
                               include_bottleneck, popular_count, max_names,
                               cold_check, epoch_store, keyframe_every,
                               worker_addrs, progress, resume, should_stop)
    finally:
        engine.close()


def _check_resumable_store(epoch_store: EpochStore, epochs: int) -> None:
    """Refuse to resume from a store that is empty, damaged, or oversized."""
    report = epoch_store.verify()
    if report.problems:
        details = "; ".join(str(problem) for problem in report.problems)
        raise SnapshotFormatError(
            f"{epoch_store.root}: cannot resume from a damaged epoch "
            f"store ({details}) — run `repro-dns fsck --salvage "
            f"{epoch_store.root}` first")
    if report.valid_epochs == 0:
        raise ValueError(
            f"epoch store {epoch_store.root} is empty — nothing to "
            f"resume (run without --resume)")
    if report.valid_epochs > epochs + 1:
        raise ValueError(
            f"epoch store {epoch_store.root} already holds "
            f"{report.valid_epochs - 1} churn epochs, more than the "
            f"{epochs} requested")


def _cold_audit(snapshot: TimelineSnapshot, results, internet,
                engine_config, pass_specs, backend, model,
                max_names) -> None:
    """Run the serial cold reference survey and record the comparison."""
    cold_specs = _with_dnssec_fraction(pass_specs, model.dnssec_fraction)
    # The audit reference is always serial: an independent cold
    # engine must not contend for (or rebuild) the busy workers.
    cold_engine = SurveyEngine(
        internet, config=engine_config(
            cold_specs,
            run_backend="serial" if backend == "socket" else None))
    cold_started = time.perf_counter()
    cold = cold_engine.run(max_names=max_names)
    snapshot.cold_elapsed_s = round(time.perf_counter() - cold_started, 6)
    snapshot.cold_identical = (
        json.dumps(results_to_dict(results), sort_keys=True)
        == json.dumps(results_to_dict(cold), sort_keys=True))


def _check_resume_compatibility(engine, baseline_results,
                                max_names) -> None:
    """The resumed run must be configured exactly like the original."""
    metadata = baseline_results.metadata
    expected_passes = [pass_.name for pass_ in engine.passes]
    if metadata.get("passes") != expected_passes:
        raise ValueError(
            f"cannot resume: the store was written with passes "
            f"{metadata.get('passes')}, this run configures "
            f"{expected_passes}")
    for key, value in (
            ("popular_count", engine.config.popular_count),
            ("include_bottleneck", engine.config.include_bottleneck),
            ("names_requested",
             len(engine._select_entries(None, max_names)))):
        if metadata.get(key) != value:
            raise ValueError(
                f"cannot resume: the store was written with "
                f"{key}={metadata.get(key)!r}, this run has {key}={value!r}")


def _replay_committed_epochs(internet, model, engine, engine_config,
                             pass_specs, backend, max_names, cold_check,
                             epoch_store, progress):
    """Re-derive world + engine state for a store's committed epochs.

    No name is re-surveyed: ``model.advance`` replays the seeded event
    sequence (mutating the world and the engine's warm context exactly
    as the interrupted run did), and every epoch's results are opened
    lazily from the store.  Returns the rebuilt snapshot rows and the
    last durable epoch's results — the delta baseline the continuing
    loop picks up from.
    """
    from repro.topology.changes import ChangeJournal

    committed = epoch_store.epochs
    replay_started = time.perf_counter()
    results = epoch_store.load_epoch(0)
    _check_resume_compatibility(engine, results, max_names)
    baseline = _reduce_epoch(
        0, results, None, events=(),
        stats=_BaselineStats(total_names=len(results.records),
                             dirty_names=len(results.records)),
        elapsed_s=time.perf_counter() - replay_started,
        dnssec_fraction=model.dnssec_fraction)
    snapshots = [baseline]
    if progress is not None:
        progress(0, baseline)

    for epoch in range(1, committed):
        epoch_started = time.perf_counter()
        journal = ChangeJournal(internet)
        events = model.advance(journal)
        changes = journal.changes()
        if backend == "socket":
            # The coordinator's spec history must replay completely: a
            # (re)built worker receives every mutation since epoch 0.
            engine._ensure_coordinator().sync_journal(journal)
        for deployment in changes.dnssec_deployments:
            for pass_ in engine.passes:
                adopt = getattr(pass_, "adopt_deployment", None)
                if adopt is not None:
                    adopt(deployment)
        previous = results
        entries = engine._select_entries(None, max_names)
        # Mirror run_delta's dirty bookkeeping so the replayed stats row
        # equals the one the interrupted run reduced.
        dirty = set(DirtyIndex(previous).dirty_names(changes))
        dirty_count = clean_count = 0
        for entry in entries:
            if entry.name not in dirty and \
                    previous.record_for(entry.name) is not None:
                clean_count += 1
            else:
                dirty.add(entry.name)
                dirty_count += 1
        engine._invalidate_for_changes(changes, dirty)
        results = epoch_store.load_epoch(epoch)
        elapsed = time.perf_counter() - epoch_started
        stats = DeltaStats(
            total_names=len(entries), dirty_names=dirty_count,
            patched_names=clean_count,
            events=len(journal) if hasattr(journal, "__len__") else 0,
            edited_zones=len(changes.edited_zones),
            created_zones=len(changes.created_zones),
            touched_hosts=len(changes.touched_hosts),
            dirty_fraction=(dirty_count / len(entries)) if entries else 0.0,
            elapsed_s=elapsed)
        snapshot = _reduce_epoch(epoch, results, previous, events, stats,
                                 elapsed, model.dnssec_fraction)
        if cold_check:
            _cold_audit(snapshot, results, internet, engine_config,
                        pass_specs, backend, model, max_names)
        snapshots.append(snapshot)
        if progress is not None:
            progress(epoch, snapshot)
    return snapshots, results


def _run_epoch_loop(internet, model, epochs, engine, engine_config,
                    pass_specs, backend, workers, include_bottleneck,
                    popular_count, max_names, cold_check, epoch_store,
                    keyframe_every, worker_addrs, progress, resume,
                    should_stop) -> Timeline:
    from repro.topology.changes import ChangeJournal

    if resume:
        snapshots, results = _replay_committed_epochs(
            internet, model, engine, engine_config, pass_specs, backend,
            max_names, cold_check, epoch_store, progress)
    else:
        started = time.perf_counter()
        results = engine.run(max_names=max_names)
        baseline_elapsed = time.perf_counter() - started
        baseline = _reduce_epoch(
            0, results, None, events=(),
            stats=_BaselineStats(total_names=len(results.records),
                                 dirty_names=len(results.records)),
            elapsed_s=baseline_elapsed,
            dnssec_fraction=model.dnssec_fraction)
        snapshots = [baseline]
        if epoch_store is not None:
            epoch_store.append(results)
        if progress is not None:
            progress(0, baseline)

    interrupted: Optional[int] = None
    for epoch in range(len(snapshots), epochs + 1):
        if should_stop is not None and should_stop():
            # The previous epoch's commit is complete and durable; stop
            # here and mark the timeline resumable at it.
            interrupted = epoch - 1
            break
        journal = ChangeJournal(internet)
        events = model.advance(journal)
        epoch_started = time.perf_counter()
        outcome = engine.run_delta(results, journal, max_names=max_names)
        elapsed = time.perf_counter() - epoch_started
        snapshot = _reduce_epoch(epoch, outcome.results, results, events,
                                 outcome.stats, elapsed,
                                 model.dnssec_fraction)
        if cold_check:
            _cold_audit(snapshot, outcome.results, internet, engine_config,
                        pass_specs, backend, model, max_names)
        if epoch_store is not None:
            # The dirty set bounds the changed-row scan: clean rows are
            # unchanged by the delta contract and are never compared.
            epoch_store.append(outcome.results, previous=results,
                               dirty=outcome.dirty)
        results = outcome.results
        snapshots.append(snapshot)
        if progress is not None:
            progress(epoch, snapshot)

    timeline = Timeline(
        config={
            "epochs": epochs,
            "backend": backend,
            "workers": workers,
            "include_bottleneck": include_bottleneck,
            "passes": list(pass_specs),
            "popular_count": popular_count,
            "max_names": max_names,
            "churn_seed": model.seed,
            "rates": model.rates.to_dict(),
            "cold_check": cold_check,
            "store": (str(epoch_store.root)
                      if epoch_store is not None else None),
            "keyframe_every": keyframe_every,
            "worker_addrs": list(worker_addrs),
        },
        snapshots=snapshots)
    if interrupted is not None:
        timeline.config["interrupted_at_epoch"] = interrupted
    timeline.validate()
    return timeline
