"""Tests for :mod:`repro.dns.name`."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.errors import NameError_
from repro.dns.name import DomainName, ROOT_NAME, name_key


# -- construction and canonicalisation ---------------------------------------------

def test_parse_simple_name():
    name = DomainName("www.example.com")
    assert name.labels == ("www", "example", "com")
    assert str(name) == "www.example.com"


def test_parse_is_case_insensitive():
    assert DomainName("WWW.Example.COM") == DomainName("www.example.com")


def test_trailing_dot_is_stripped():
    assert DomainName("example.com.") == DomainName("example.com")


def test_root_representations():
    assert DomainName("") == ROOT_NAME
    assert DomainName(".") == ROOT_NAME
    assert str(ROOT_NAME) == "."
    assert ROOT_NAME.is_root
    assert ROOT_NAME.depth == 0


def test_construct_from_labels():
    name = DomainName(("www", "example", "com"))
    assert str(name) == "www.example.com"


def test_construct_from_domain_name_copies():
    original = DomainName("example.com")
    assert DomainName(original) == original


def test_whitespace_is_stripped():
    assert DomainName("  example.com  ") == DomainName("example.com")


@pytest.mark.parametrize("bad", [
    "exa mple.com", "-bad.com", "bad-.com", "ex..com", "ex!.com",
    "a" * 64 + ".com", ".leading.dot.com."[:1] + "..x",
])
def test_invalid_names_rejected(bad):
    with pytest.raises(NameError_):
        DomainName(bad)


def test_name_too_long_rejected():
    label = "a" * 60
    too_long = ".".join([label] * 5)
    with pytest.raises(NameError_):
        DomainName(too_long)


def test_underscore_labels_allowed():
    # version.bind style and SRV-style names use underscores in practice.
    assert DomainName("_sip._tcp.example.com").depth == 4


# -- value-object behaviour -----------------------------------------------------------

def test_equality_with_string():
    assert DomainName("example.com") == "Example.Com"
    assert DomainName("example.com") != "other.com"
    assert DomainName("example.com") != "not a valid ! name"


def test_hashable_and_usable_as_dict_key():
    mapping = {DomainName("a.com"): 1}
    assert mapping[DomainName("A.COM")] == 1


def test_hash_derives_from_cached_presentation_text():
    name = DomainName("www.cs.cornell.edu")
    assert hash(name) == hash(str(name))
    # Hash/str caches survive copy-construction and hierarchy fast paths.
    assert hash(DomainName(name)) == hash(name)
    assert hash(name.parent()) == hash("cs.cornell.edu")
    assert hash(DomainName.root()) == hash(".")
    # A name equal to a string now hashes like it, so mixed-key dict
    # probes behave consistently.
    mapping = {DomainName("a.com"): 1}
    assert mapping["a.com"] == 1


def test_pickle_roundtrip_preserves_identity_semantics():
    import pickle
    for text in ("www.example.com", "a.root-servers.net", "."):
        name = DomainName(text)
        clone = pickle.loads(pickle.dumps(name))
        assert clone == name
        assert hash(clone) == hash(name)
        assert str(clone) == str(name)
        assert clone.labels == name.labels


def test_immutable():
    name = DomainName("example.com")
    with pytest.raises(AttributeError):
        name.labels = ("x",)


def test_ordering_groups_by_parent_domain():
    names = [DomainName("b.example.com"), DomainName("a.other.com"),
             DomainName("a.example.com")]
    ordered = sorted(names)
    assert ordered[0] == DomainName("a.example.com")
    assert ordered[1] == DomainName("b.example.com")
    assert ordered[2] == DomainName("a.other.com")


def test_iteration_and_len():
    name = DomainName("www.example.com")
    assert list(name) == ["www", "example", "com"]
    assert len(name) == 3


# -- hierarchy operations -------------------------------------------------------------

def test_parent_chain():
    name = DomainName("www.cs.cornell.edu")
    assert name.parent() == DomainName("cs.cornell.edu")
    assert name.parent().parent() == DomainName("cornell.edu")
    assert ROOT_NAME.parent() == ROOT_NAME


def test_ancestors_excluding_self():
    name = DomainName("www.cs.cornell.edu")
    ancestors = list(name.ancestors())
    assert ancestors == [DomainName("cs.cornell.edu"),
                         DomainName("cornell.edu"),
                         DomainName("edu"), ROOT_NAME]


def test_ancestors_including_self_excluding_root():
    name = DomainName("a.b.c")
    ancestors = list(name.ancestors(include_self=True, include_root=False))
    assert ancestors == [DomainName("a.b.c"), DomainName("b.c"),
                         DomainName("c")]


def test_is_subdomain_of():
    name = DomainName("www.cs.cornell.edu")
    assert name.is_subdomain_of("cornell.edu")
    assert name.is_subdomain_of("edu")
    assert name.is_subdomain_of(ROOT_NAME)
    assert name.is_subdomain_of(name)
    assert not name.is_subdomain_of(name, proper=True)
    assert not name.is_subdomain_of("rochester.edu")
    assert not DomainName("cornell.edu").is_subdomain_of(name)


def test_is_ancestor_of():
    assert DomainName("edu").is_ancestor_of("cornell.edu", proper=True)
    assert not DomainName("edu").is_ancestor_of("example.com")


def test_suffix_match_requires_label_boundary():
    # "ample.com" is not an ancestor of "example.com".
    assert not DomainName("example.com").is_subdomain_of("ample.com")


def test_common_ancestor():
    a = DomainName("www.cs.cornell.edu")
    b = DomainName("mail.cornell.edu")
    assert a.common_ancestor(b) == DomainName("cornell.edu")
    assert a.common_ancestor("example.com") == ROOT_NAME


def test_relativize():
    name = DomainName("www.cs.cornell.edu")
    assert name.relativize("cornell.edu") == ("www", "cs")
    assert name.relativize(ROOT_NAME) == ("www", "cs", "cornell", "edu")
    with pytest.raises(NameError_):
        name.relativize("example.com")


def test_child_and_concatenate():
    base = DomainName("cornell.edu")
    assert base.child("www") == DomainName("www.cornell.edu")
    assert DomainName("www").concatenate(base) == DomainName("www.cornell.edu")
    with pytest.raises(NameError_):
        base.child("bad label")


def test_tld_and_sld():
    name = DomainName("www.cs.cornell.edu")
    assert name.tld == "edu"
    assert name.sld == DomainName("cornell.edu")
    assert ROOT_NAME.tld is None
    assert DomainName("com").sld is None


def test_in_bailiwick_of():
    assert DomainName("dns1.cornell.edu").in_bailiwick_of("cornell.edu")
    assert not DomainName("dns1.rochester.edu").in_bailiwick_of("cornell.edu")


def test_name_key_sorts_by_reversed_labels():
    assert name_key("www.example.com") == ("com", "example", "www")


# -- property-based tests ----------------------------------------------------------------

_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1,
                 max_size=8)
_names = st.lists(_label, min_size=1, max_size=5).map(
    lambda labels: DomainName(labels))


@given(_names)
def test_roundtrip_through_string(name):
    assert DomainName(str(name)) == name


@given(_names)
def test_every_name_is_subdomain_of_all_ancestors(name):
    for ancestor in name.ancestors(include_self=True):
        assert name.is_subdomain_of(ancestor)


@given(_names)
def test_parent_reduces_depth_by_one(name):
    assert name.parent().depth == name.depth - 1


@given(_names, _label)
def test_child_inverts_parent(name, label):
    child = name.child(label)
    assert child.parent() == name
    assert child.is_subdomain_of(name, proper=True)


@given(_names, _names)
def test_common_ancestor_is_symmetric_and_ancestral(a, b):
    common = a.common_ancestor(b)
    assert common == b.common_ancestor(a)
    assert a.is_subdomain_of(common)
    assert b.is_subdomain_of(common)


@given(_names, _names)
def test_subdomain_relation_antisymmetry(a, b):
    if a.is_subdomain_of(b) and b.is_subdomain_of(a):
        assert a == b


def test_string_equality_rejects_malformed_strings():
    """The textual __eq__ fast path must match the old coercion semantics:
    strings the constructor rejects never compare equal."""
    root = DomainName(".")
    assert root == "."
    assert root == ""
    assert root != ".."
    assert root != " .. "
    name = DomainName("www.example.com")
    assert name == "WWW.Example.Com."
    assert name == "  www.example.com  "
    assert name != "www.example.com.."
    assert name != "www..example.com"
    assert name == "www.example.com. "  # whitespace strips before the dot
