"""Longitudinal churn acceptance: the epoch loop must earn its delta engine.

The churn simulator's value proposition is that surveying N epochs of a
slowly mutating world costs one cold survey plus N *small* incremental
re-surveys — not N cold surveys.  This bench runs a realistic churn mix
(registrar transfers, a server death, software/region churn) for a few
epochs with the cold audit enabled, which times a cold full survey of the
identical mutated world after every epoch and checks byte-identity.

Acceptance floors: every epoch byte-identical to its cold survey, and the
summed delta wall-clock at least ``MIN_SPEEDUP`` below the summed cold
wall-clock.  Timings land in ``BENCH_results.json`` under ``churn_epochs``.
"""

import os

from repro.core.timeline import run_churn_timeline
from repro.topology.churn import ChurnModel, ChurnRates
from repro.topology.generator import InternetGenerator

from conftest import BENCH_CONFIG

#: Cold-vs-delta floor over the whole epoch loop.  The tiny CI world is so
#: small that per-epoch constant overheads (invalidation, diffing) eat a
#: large share of the delta pass; the floor is asserted in full at bench
#: scale and relaxed for the smoke run.
MIN_SPEEDUP = 5.0 if not os.environ.get("REPRO_BENCH_TINY") else 2.0

#: Churn epochs simulated (each adds a delta + a cold audit survey).
EPOCHS = 4

#: The mutation mix: a couple of transfers and software changes per epoch,
#: a box dying every other epoch — the "slow month in the DNS" workload.
RATES = ChurnRates(transfer=1.0, death=0.5, upgrade=2.0, downgrade=0.5,
                   region=1.0, dnssec=0.0)


def test_bench_churn_epoch_loop(figure_writer, bench_metrics):
    """N churn epochs: delta loop vs cold-per-epoch, byte-identical."""
    # A private world: the churn model mutates it in place, so the shared
    # session-scoped bench_internet must not be used here.
    internet = InternetGenerator(BENCH_CONFIG).generate()
    model = ChurnModel(internet, RATES, seed=20040722)

    timeline = run_churn_timeline(
        internet, model, epochs=EPOCHS,
        popular_count=BENCH_CONFIG.alexa_count, cold_check=True)

    epochs = timeline.snapshots[1:]
    assert len(epochs) == EPOCHS
    assert all(snapshot.cold_identical for snapshot in epochs), \
        "an incremental epoch diverged from its cold survey"

    delta_total = sum(snapshot.delta_elapsed_s for snapshot in epochs)
    cold_total = sum(snapshot.cold_elapsed_s for snapshot in epochs)
    speedup = cold_total / delta_total if delta_total else float("inf")
    dirty_mean = sum(snapshot.dirty_fraction for snapshot in epochs) \
        / len(epochs)
    events_total = sum(snapshot.events for snapshot in epochs)

    figure_writer.write(
        "churn_epochs", "Longitudinal churn: delta epochs vs cold-per-epoch",
        [f"names                     {timeline.snapshots[0].total_names}",
         f"epochs                    {EPOCHS}",
         f"journalled events         {events_total}",
         f"mean dirty fraction       {dirty_mean:.2%}",
         f"baseline cold survey      "
         f"{timeline.snapshots[0].delta_elapsed_s:.3f}s",
         f"delta epochs (total)      {delta_total:.3f}s",
         f"cold-per-epoch (total)    {cold_total:.3f}s",
         f"speedup                   {speedup:.1f}x "
         f"(floor {MIN_SPEEDUP:.0f}x)",
         "every epoch byte-identical to its cold survey"])
    bench_metrics.record(
        "churn_epochs", names=timeline.snapshots[0].total_names,
        epochs=EPOCHS, events=events_total,
        dirty_fraction_mean=round(dirty_mean, 4),
        delta_total_s=round(delta_total, 4),
        cold_total_s=round(cold_total, 4),
        speedup=round(speedup, 2))

    assert speedup >= MIN_SPEEDUP, (
        f"churn epoch loop only {speedup:.1f}x faster than cold-per-epoch "
        f"with a mean dirty fraction of {dirty_mean:.1%}")
