"""Domain names and hierarchy operations.

The analyses in the paper constantly reason about the namespace hierarchy:
which zone a name belongs to, whether a nameserver is *in bailiwick* (inside
the administrative domain of the name it serves), which top-level domain a
name falls under, and so on.  :class:`DomainName` provides an immutable,
canonicalised representation with those operations.

Names are stored as a tuple of labels ordered from the most specific label to
the root, e.g. ``www.cs.cornell.edu`` is ``("www", "cs", "cornell", "edu")``.
The root name is the empty tuple and prints as ``"."``.
"""

from __future__ import annotations

import functools
import re
from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.dns.errors import NameError_

#: Maximum length of a single label, per RFC 1035.
MAX_LABEL_LENGTH = 63

#: Maximum length of a full name (presentation form without trailing dot).
MAX_NAME_LENGTH = 253

_LABEL_RE = re.compile(r"^[a-z0-9_]([a-z0-9_-]*[a-z0-9_])?$")

NameLike = Union[str, "DomainName", Iterable[str]]


@functools.total_ordering
class DomainName:
    """An immutable, canonicalised (lower-cased) DNS domain name.

    Instances behave as value objects: they hash and compare by their label
    sequence, so they can be used freely as dictionary keys and graph nodes.

    Parameters
    ----------
    name:
        Either a presentation-form string (``"www.example.com"``, with or
        without a trailing dot), another :class:`DomainName` (copied), or an
        iterable of labels ordered most-specific first.
    """

    __slots__ = ("_labels", "_hash", "_text")

    def __init__(self, name: NameLike = ""):
        if isinstance(name, DomainName):
            # Copy-construction reuses the source's cached hash and text —
            # tuples do not cache their hash, so rehashing here would cost
            # a label walk on every NameLike normalisation.
            object.__setattr__(self, "_labels", name._labels)
            object.__setattr__(self, "_hash", name._hash)
            object.__setattr__(self, "_text", name._text)
            return
        if isinstance(name, str):
            labels = self._parse(name)
        else:
            labels = tuple(self._validate_label(label) for label in name)
            if len(str(".".join(labels))) > MAX_NAME_LENGTH:
                raise NameError_(f"name too long: {'.'.join(labels)!r}")
        object.__setattr__(self, "_labels", labels)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_text", None)

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _validate_label(label: str) -> str:
        label = label.lower()
        if not label:
            raise NameError_("empty label")
        if len(label) > MAX_LABEL_LENGTH:
            raise NameError_(f"label too long: {label!r}")
        if not _LABEL_RE.match(label):
            raise NameError_(f"invalid label: {label!r}")
        return label

    @classmethod
    def _parse(cls, text: str) -> Tuple[str, ...]:
        text = text.strip().lower()
        if text in ("", "."):
            return ()
        if text.endswith("."):
            text = text[:-1]
        if len(text) > MAX_NAME_LENGTH:
            raise NameError_(f"name too long: {text!r}")
        return tuple(cls._validate_label(label) for label in text.split("."))

    @classmethod
    def root(cls) -> "DomainName":
        """Return the DNS root name (``"."``)."""
        return cls(())

    @classmethod
    def _from_labels(cls, labels: Tuple[str, ...]) -> "DomainName":
        """Construct from already-canonical labels, skipping validation.

        Internal fast path for hierarchy operations (``parent``,
        ``ancestors``, suffix walks): any slice of a valid name's label
        tuple is itself valid, so re-running the per-label regex would be
        pure overhead in the resolver's hot loops.
        """
        name = object.__new__(cls)
        object.__setattr__(name, "_labels", labels)
        object.__setattr__(name, "_hash", None)
        object.__setattr__(name, "_text", None)
        return name

    @classmethod
    def _from_text(cls, text: str) -> "DomainName":
        """Construct from already-canonical presentation text, trusted.

        The unpickling fast path (see :meth:`__reduce__`): the text was
        produced by our own ``__str__``, so labels are split without
        re-running the per-label validation regex, and the cached
        presentation string is seeded directly — the hot shard-merge path
        of the ``process`` survey backend reconstructs every record name
        through here.
        """
        name = object.__new__(cls)
        labels = () if text == "." else tuple(text.split("."))
        object.__setattr__(name, "_labels", labels)
        object.__setattr__(name, "_hash", None)
        object.__setattr__(name, "_text", text)
        return name

    # -- value-object protocol ----------------------------------------------

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("DomainName is immutable")

    def __hash__(self) -> int:
        # Hash off the cached presentation string, computed on first probe
        # and memoized: construction never walks the label tuple just to
        # hash it, copy-construction and unpickling inherit both caches,
        # and a name that is never used as a key pays nothing.
        digest = self._hash
        if digest is None:
            digest = hash(self.__str__())
            object.__setattr__(self, "_hash", digest)
        return digest

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DomainName):
            return self._labels == other._labels
        if isinstance(other, str):
            # Textual comparison instead of the old "construct a DomainName
            # and compare labels" fallback, which allocated (and regex-
            # validated) a throwaway instance on every miss in hot loops.
            # Our own labels are canonical, so string equality against the
            # normalised text is exact: any string that the validating
            # constructor would map to our labels normalises to our
            # presentation form, and invalid strings can never match it.
            text = other.strip().lower()
            if text in ("", "."):
                return not self._labels
            if text.endswith("."):
                text = text[:-1]
                if not text or text.endswith("."):
                    # "..", "a.." etc. would raise in the constructor
                    # (empty label); they must not collapse to a valid name.
                    return False
            return text == str(self)
        return NotImplemented

    def __lt__(self, other: "DomainName") -> bool:
        if isinstance(other, str):
            other = DomainName(other)
        if not isinstance(other, DomainName):
            return NotImplemented
        # Canonical DNS ordering sorts by reversed label sequence so that
        # names group by their parent domains.
        return tuple(reversed(self._labels)) < tuple(reversed(other._labels))

    def __str__(self) -> str:
        text = self._text
        if text is None:
            text = ".".join(self._labels) if self._labels else "."
            object.__setattr__(self, "_text", text)
        return text

    def __repr__(self) -> str:
        return f"DomainName({str(self)!r})"

    def __reduce__(self):
        # The immutability guard (__setattr__ raises) breaks pickle's default
        # slot-state protocol, so reconstruct through the trusted
        # presentation-text fast path; the process survey backend ships
        # DomainName instances between workers over pipes, and re-validating
        # every label with the constructor regex dominated that merge.
        return (DomainName._from_text, (str(self),))

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    # -- accessors ------------------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        """Labels ordered most-specific first (``www``, ``cs``, ...)."""
        return self._labels

    @property
    def is_root(self) -> bool:
        """True if this is the root name ``"."``."""
        return not self._labels

    @property
    def depth(self) -> int:
        """Number of labels (the root has depth 0, ``com`` has depth 1)."""
        return len(self._labels)

    @property
    def tld(self) -> Optional[str]:
        """The top-level domain label, or ``None`` for the root."""
        return self._labels[-1] if self._labels else None

    @property
    def sld(self) -> Optional["DomainName"]:
        """The second-level domain (e.g. ``cornell.edu``), or ``None``."""
        if len(self._labels) < 2:
            return None
        return DomainName._from_labels(self._labels[-2:])

    # -- hierarchy operations --------------------------------------------------

    def parent(self) -> "DomainName":
        """Return the immediate parent domain.

        The parent of the root is the root itself, mirroring the convention
        used when walking delegation chains upward.
        """
        if not self._labels:
            return self
        return DomainName._from_labels(self._labels[1:])

    def ancestors(self, include_self: bool = False,
                  include_root: bool = True) -> Iterator["DomainName"]:
        """Yield ancestor domains from the closest parent up to the root.

        Parameters
        ----------
        include_self:
            If true, the name itself is yielded first.
        include_root:
            If false, the root name is omitted.
        """
        current = self if include_self else self.parent()
        previous = None
        while previous != current:
            if current.is_root and not include_root:
                return
            yield current
            previous = current
            current = current.parent()

    def is_subdomain_of(self, other: NameLike, proper: bool = False) -> bool:
        """Return True if this name lies under ``other`` in the hierarchy.

        ``proper=True`` excludes the case where the two names are equal.
        Every name is a subdomain of the root.
        """
        if not isinstance(other, DomainName):
            other = DomainName(other)
        if len(other._labels) > len(self._labels):
            return False
        if proper and len(other._labels) == len(self._labels):
            return False
        if not other._labels:
            return True
        return self._labels[-len(other._labels):] == other._labels

    def is_ancestor_of(self, other: NameLike, proper: bool = False) -> bool:
        """Return True if ``other`` lies under this name."""
        return DomainName(other).is_subdomain_of(self, proper=proper)

    def common_ancestor(self, other: NameLike) -> "DomainName":
        """Return the deepest domain that is an ancestor of both names."""
        other = DomainName(other)
        common = []
        for a, b in zip(reversed(self._labels), reversed(other._labels)):
            if a != b:
                break
            common.append(a)
        return DomainName._from_labels(tuple(reversed(common)))

    def relativize(self, origin: NameLike) -> Tuple[str, ...]:
        """Return the labels of this name relative to ``origin``.

        Raises :class:`NameError_` if the name is not under ``origin``.
        """
        origin = DomainName(origin)
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not a subdomain of {origin}")
        if not origin._labels:
            return self._labels
        return self._labels[: len(self._labels) - len(origin._labels)]

    def child(self, label: str) -> "DomainName":
        """Return the name formed by prepending ``label`` to this name."""
        return DomainName((self._validate_label(label),) + self._labels)

    def concatenate(self, suffix: NameLike) -> "DomainName":
        """Return this (relative) name appended to ``suffix``."""
        suffix = DomainName(suffix)
        return DomainName(self._labels + suffix._labels)

    def in_bailiwick_of(self, domain: NameLike) -> bool:
        """True if this name is inside the administrative domain ``domain``.

        A nameserver is *in bailiwick* for a domain when its own name lies
        under that domain; the paper's "servers administered by the
        nameowner" metric counts in-bailiwick servers.
        """
        return self.is_subdomain_of(domain)


#: The DNS root name, shared for convenience.
ROOT_NAME = DomainName.root()


def name_key(name: NameLike) -> Tuple[str, ...]:
    """Return a canonical sort key (reversed labels) for a name.

    Sorting by this key groups names by parent domain, which is the order the
    survey reports use when listing names per TLD.
    """
    return tuple(reversed(DomainName(name).labels))
