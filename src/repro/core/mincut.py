"""Bottleneck (min-cut) analysis of delegation graphs (Figure 7).

Section 3.2 distinguishes partial hijacks (divert *some* queries) from
complete hijacks (divert *all* queries) and measures the latter by computing
"the minimum number of nameservers that need to be attacked in order to
completely take over a domain ... determined by computing a min-cut of the
delegation graph".

The delegation graph is an AND/OR structure: resolving a name requires every
zone on its delegation path (AND), but any single nameserver suffices for
each zone (OR), and a nameserver can be neutralised either by attacking the
machine itself or by taking over the resolution of its hostname
(recursively).  The minimum attack set therefore satisfies the recursion::

    block(name)  = min over zones Z on name's path of block_zone(Z)
    block_zone(Z)= sum over nameservers H of Z of
                     min(attack(H), block(H.hostname))

:class:`BottleneckAnalyzer` evaluates this recursion directly on the
delegation graph with memoisation and cycle guards.  Two implementations
share the same structure:

* the **integer path** — taken automatically for the survey engine's
  :class:`~repro.core.delegation.TCBView`: the recursion runs on dense node
  ids from the :class:`~repro.core.graphcore.DependencyUniverse`, candidate
  cuts are NS-slot bitsets (union = big-int OR, dedup = AND-NOT), and
  nothing in the loop hashes a :class:`~repro.dns.name.DomainName`;
* the **generic path** — for materialised
  :class:`~repro.core.delegation.DelegationGraph`\\ s (including hand-built
  test topologies), walking ``(kind, DomainName)`` node keys.

Both traverse successors in identical order and make identical tie-breaking
decisions, so they produce identical cuts; the equivalence suite asserts it.

Two weightings are provided:

* **unweighted** — every server costs 1; the resulting total is the paper's
  "average min-cut of 2.5 nameservers".
* **vulnerability-aware** — servers with a known exploit cost (0 safe, 1
  total) while safe servers cost (1 safe, 1 total) and costs compare
  lexicographically; the optimal cut then minimises the number of *safe*
  servers the attacker still has to deal with, which is exactly the
  "number of safe bottleneck nameservers" plotted in Figure 7.

Shared dependencies make the summed recursion an upper bound on the true
optimum (the same server counted via two branches is paid twice), so the
reported cut is conservative; on the survey graphs the bound is tight for
the dominant pattern (the weakest zone is the name's own NS set).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.dns.name import DomainName
from repro.core.delegation import (
    DelegationGraph,
    NodeKey,
    TCBView,
    name_node,
)

#: Cost value representing "cannot be blocked" (e.g. behind the trusted root).
_INFINITY = (10 ** 9, 10 ** 9)


@dataclasses.dataclass
class BottleneckResult:
    """The optimal attack set for one name under one weighting."""

    name: DomainName
    cut_servers: FrozenSet[DomainName]
    safe_in_cut: int
    vulnerable_in_cut: int
    feasible: bool = True

    @property
    def size(self) -> int:
        """Total number of servers in the cut."""
        return len(self.cut_servers)

    @property
    def fully_vulnerable(self) -> bool:
        """True if the cut consists solely of vulnerable servers.

        These are the names the paper reports as completely hijackable with
        scripted attacks alone (about 30 % of the survey).
        """
        return self.feasible and self.size > 0 and self.safe_in_cut == 0

    @property
    def one_safe_server(self) -> bool:
        """True if exactly one safe server stands in the way.

        The paper notes another 10 % of names fall in this category, where a
        DoS on that one safe server plus compromise of the vulnerable ones
        completes the hijack.
        """
        return self.feasible and self.safe_in_cut == 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation used by snapshots."""
        return {
            "name": str(self.name),
            "size": self.size,
            "safe_in_cut": self.safe_in_cut,
            "vulnerable_in_cut": self.vulnerable_in_cut,
            "feasible": self.feasible,
            "servers": sorted(str(s) for s in self.cut_servers),
        }


class BottleneckAnalyzer:
    """Computes minimum attack sets over delegation graphs.

    Parameters
    ----------
    vulnerability_map:
        Per-hostname "has an exploitable hole" flags; hosts missing from the
        map count as safe.
    vulnerability_aware:
        Whether the cut minimises the number of *safe* servers (lexicographic
        cost) or just its total size.
    shared_memo:
        Optional cross-call memo, used by the survey engine to reuse blocking
        costs across the thousands of names that share a universe graph.
        On the integer path entries are keyed by integer node id (and cuts
        are slot bitsets); on the generic path by NodeKey.  Only *clean*
        results — computed without truncating a dependency cycle and without
        consuming a truncation-tainted value — are published to it, because
        those are the only results independent of the path the recursion
        took to reach the node (a node on a cycle always observes its own
        truncation and therefore never qualifies).  Entries must be purged
        when the underlying graph or the vulnerability flags of
        already-analysed hosts change; the engine registers the memo with
        the builder's :class:`~repro.core.delegation.ClosureIndex` for
        exactly that.
    """

    def __init__(self, vulnerability_map: Optional[Mapping[DomainName, bool]] = None,
                 vulnerability_aware: bool = True,
                 shared_memo: Optional[Dict] = None):
        self.vulnerability_map = dict(vulnerability_map or {})
        self.vulnerability_aware = vulnerability_aware
        self.shared_memo = shared_memo
        self._taint_events = 0
        self._tainted: Set = set()
        self._prefix_state: Optional[Tuple[object, int, Dict]] = None
        # Zone-term replay state, active only during a prefix-resumed
        # evaluation: `_zc` maps a zone id to (cost, mask, taint-event
        # delta) when the term was computed purely from snapshot-resident
        # memo hits (constant across chains sharing the snapshot); `_base`
        # is that snapshot memo.
        self._zc: Optional[Dict[int, tuple]] = None
        self._base: Optional[Dict] = None

    def _prefix_cache(self, universe, closures) -> Dict[int, tuple]:
        """Per-first-zone resume snapshots, valid for one closure version.

        A surveyed name's node has no in-edges, so the evaluation of its
        first direct zone (the TLD) is independent of the name: the walk,
        its memo contents, and its taint-event count are identical for
        every chain starting with that zone.  Snapshotting them after the
        first zone and resuming later chains from a copy removes the
        dominant per-chain cost (re-walking the whole TLD subtree, which
        in-bailiwick NS cycles keep out of the clean-only shared memo)
        without changing a single comparison the recursion makes.
        """
        state = self._prefix_state
        if state is None or state[0] is not universe \
                or state[1] != closures.version:
            state = (universe, closures.version, {})
            self._prefix_state = state
        return state[2]

    # -- public -------------------------------------------------------------------

    def analyze(self, graph) -> BottleneckResult:
        """Compute the optimal attack set for ``graph``'s target name."""
        if isinstance(graph, TCBView):
            core = graph.int_core()
            if core is not None:
                return self._analyze_int(graph, core)
        memo: Dict[NodeKey, Tuple[Tuple[int, int], FrozenSet[DomainName]]] = {}
        self._taint_events = 0
        self._tainted = set()
        cost, servers = self._block_name(graph, name_node(graph.target),
                                         memo, frozenset())
        return self._result(graph.target, cost, servers)

    def analyze_unweighted(self, graph) -> BottleneckResult:
        """Convenience: the cut that minimises total size regardless of vulns."""
        analyzer = BottleneckAnalyzer(self.vulnerability_map,
                                      vulnerability_aware=False)
        return analyzer.analyze(graph)

    def _result(self, target: DomainName, cost: Tuple[int, int],
                servers: FrozenSet[DomainName]) -> BottleneckResult:
        feasible = cost < _INFINITY
        if not feasible:
            return BottleneckResult(name=target, cut_servers=frozenset(),
                                    safe_in_cut=0, vulnerable_in_cut=0,
                                    feasible=False)
        safe = sum(1 for host in servers if not self._is_vulnerable(host))
        vulnerable = len(servers) - safe
        return BottleneckResult(name=target, cut_servers=servers,
                                safe_in_cut=safe, vulnerable_in_cut=vulnerable,
                                feasible=True)

    # -- cost model ------------------------------------------------------------------

    def _is_vulnerable(self, hostname: DomainName) -> bool:
        return bool(self.vulnerability_map.get(hostname, False))

    # -- integer recursion (TCBView fast path) ------------------------------------------

    def _analyze_int(self, graph: TCBView, core) -> BottleneckResult:
        """Top-level integer evaluation, with per-first-zone prefix resume.

        Mirrors :meth:`_block_name_int` applied to the target node, except
        that the first zone's (cost, mask, memo, taint) state is snapshotted
        and replayed across chains sharing it — the target itself is
        unreachable from the universe, so that state cannot depend on it.
        """
        universe, closures, target_id = core
        self._taint_events = 0
        self._tainted = set()
        shared = self.shared_memo
        if shared is not None:
            hit = shared.get(target_id)
            if hit is not None:
                return self._result_from_mask(graph.target, universe, hit)
        zones = closures.split_ids(target_id)[0]
        memo: Dict[int, Tuple[Tuple[int, int], int]] = {}
        if not zones:
            result = (_INFINITY, 0)
            memo[target_id] = result
            if shared is not None:
                shared[target_id] = result
            return self._result_from_mask(graph.target, universe, result)

        prefix = self._prefix_cache(universe, closures)
        first = zones[0]
        entry = prefix.get(first)
        best_cost: Tuple[int, int] = _INFINITY
        best_mask = 0
        in_progress = frozenset((target_id,))
        start = 0
        self._zc = self._base = None
        if entry is not None:
            cost0, mask0, snap_memo, snap_tainted, snap_events, zone_cache \
                = entry
            memo = dict(snap_memo)
            self._tainted = set(snap_tainted)
            self._taint_events = snap_events
            self._zc = zone_cache
            self._base = snap_memo
            if cost0 < best_cost:
                best_cost, best_mask = cost0, mask0
            start = 1
        for index in range(start, len(zones)):
            cost, mask, _pure = self._block_zone_int(universe, closures,
                                                     zones[index], memo,
                                                     in_progress)
            if cost < best_cost:
                best_cost, best_mask = cost, mask
            if index == 0:
                prefix[first] = (cost, mask, dict(memo), set(self._tainted),
                                 self._taint_events, {})
        result = (best_cost, best_mask)
        if best_cost < _INFINITY:
            memo[target_id] = result
            if self._taint_events == 0:
                if shared is not None:
                    shared[target_id] = result
            else:
                self._tainted.add(target_id)
        return self._result_from_mask(graph.target, universe, result)

    def _result_from_mask(self, target: DomainName, universe,
                          result: Tuple[Tuple[int, int], int]
                          ) -> BottleneckResult:
        cost, mask = result
        servers = frozenset(universe.mask_to_hosts(mask)) if mask else \
            frozenset()
        return self._result(target, cost, servers)

    def _block_name_int(self, universe, closures, node: int,
                        memo: Dict[int, Tuple[Tuple[int, int], int]],
                        in_progress: FrozenSet[int]
                        ) -> Tuple[Tuple[int, int], int]:
        """Cheapest way to block a name/host node (ids + slot bitsets)."""
        cached = memo.get(node)
        if cached is not None:
            if node in self._tainted:
                # The consumer inherits this value's context-dependence.
                self._taint_events += 1
            return cached
        shared = self.shared_memo
        if shared is not None:
            hit = shared.get(node)
            if hit is not None:
                return hit
        if node in in_progress:
            # Cyclic dependency (mutual secondaries): this branch cannot be
            # used to block the node more cheaply than attacking servers
            # directly, so treat it as unblockable here.
            self._taint_events += 1
            return _INFINITY, 0
        in_progress = in_progress | {node}
        events_before = self._taint_events

        zones = closures.split_ids(node)[0]
        if not zones:
            result = (_INFINITY, 0)
            memo[node] = result
            if shared is not None:
                # A node with no zone dependencies is unblockable regardless
                # of how the recursion reached it.
                shared[node] = result
            return result

        best_cost: Tuple[int, int] = _INFINITY
        best_mask = 0
        zone_cache = self._zc
        for zone in zones:
            if zone_cache is not None:
                replay = zone_cache.get(zone)
                if replay is not None:
                    cost, mask, delta = replay
                    if delta:
                        self._taint_events += delta
                    if cost < best_cost:
                        best_cost, best_mask = cost, mask
                    continue
                events_zone = self._taint_events
                cost, mask, pure = self._block_zone_int(universe, closures,
                                                        zone, memo,
                                                        in_progress)
                if pure:
                    zone_cache[zone] = (cost, mask,
                                        self._taint_events - events_zone)
            else:
                cost, mask, _pure = self._block_zone_int(universe, closures,
                                                         zone, memo,
                                                         in_progress)
            if cost < best_cost:
                best_cost, best_mask = cost, mask
        result = (best_cost, best_mask)
        if best_cost < _INFINITY:
            memo[node] = result
            if self._taint_events == events_before:
                if shared is not None:
                    shared[node] = result
            else:
                self._tainted.add(node)
        return result

    def _block_zone_int(self, universe, closures, zone: int,
                        memo: Dict[int, Tuple[Tuple[int, int], int]],
                        in_progress: FrozenSet[int]
                        ) -> Tuple[Tuple[int, int], int, bool]:
        """Cheapest way to control every nameserver delegated for a zone.

        The third element of the result is the zone-term *purity* flag:
        True when replay is active and every nameserver value came from a
        snapshot-resident memo hit, i.e. the term may be recorded for
        replay by the caller.
        """
        pure = self._zc is not None
        base = self._base
        nameservers = closures.split_ids(zone)[1]
        if not nameservers:
            return _INFINITY, 0, pure
        total = (0, 0)
        servers_mask = 0
        # Direct attack cost, inlined (this loop runs millions of times per
        # survey): compromising an already-vulnerable server is "free" in
        # the primary component (no safe server consumed) but still counts
        # toward the cut size in the secondary, so ties prefer smaller cuts.
        vulnerability_aware = self.vulnerability_aware
        vulnerability_get = self.vulnerability_map.get
        ns_slots = universe.ns_slots
        slot_hosts = universe.slot_hosts
        memo_get = memo.get
        tainted = self._tainted
        for ns in nameservers:
            slot = ns_slots[ns]
            if vulnerability_aware and vulnerability_get(slot_hosts[slot],
                                                         False):
                direct_cost = (0, 1)
            else:
                direct_cost = (1, 1)
            cached = memo_get(ns)
            if cached is None:
                cached = self._block_name_int(universe, closures, ns, memo,
                                              in_progress)
                pure = False
            else:
                if ns in tainted:
                    self._taint_events += 1
                if pure and ns not in base:
                    pure = False
            indirect_cost, indirect_mask = cached
            if indirect_cost < direct_cost:
                choice_cost, choice_mask = indirect_cost, indirect_mask
            else:
                choice_cost, choice_mask = direct_cost, 1 << slot
            if choice_cost >= _INFINITY:
                return _INFINITY, 0, pure
            # Servers already selected for this zone's cut are not paid twice.
            new_mask = choice_mask & ~servers_mask
            if new_mask != choice_mask:
                choice_cost = self._cost_of_mask(universe, new_mask)
            total = (total[0] + choice_cost[0], total[1] + choice_cost[1])
            servers_mask |= new_mask
            if total >= _INFINITY:
                return _INFINITY, 0, pure
        return total, servers_mask, pure

    def _cost_of_mask(self, universe, mask: int) -> Tuple[int, int]:
        """Combined cost of a concrete slot bitset (used when deduplicating)."""
        hosts = universe.mask_to_hosts(mask)
        safe = sum(1 for host in hosts if not (
            self.vulnerability_aware and self._is_vulnerable(host)))
        return (safe if self.vulnerability_aware else len(hosts), len(hosts))

    # -- generic recursion (materialised graphs, hand-built topologies) ------------------

    def _block_name(self, graph, node: NodeKey,
                    memo: Dict, in_progress: FrozenSet[NodeKey]
                    ) -> Tuple[Tuple[int, int], FrozenSet[DomainName]]:
        """Cheapest way to block every resolution path of a name/host node."""
        cached = memo.get(node)
        if cached is not None:
            if node in self._tainted:
                # The consumer inherits this value's context-dependence.
                self._taint_events += 1
            return cached
        shared = self.shared_memo
        if shared is not None:
            hit = shared.get(node)
            if hit is not None:
                return hit
        if node in in_progress:
            # Cyclic dependency (mutual secondaries): this branch cannot be
            # used to block the node more cheaply than attacking servers
            # directly, so treat it as unblockable here.
            self._taint_events += 1
            return _INFINITY, frozenset()
        in_progress = in_progress | {node}
        events_before = self._taint_events

        zones = graph.zones_of(node)
        if not zones:
            result = (_INFINITY, frozenset())
            memo[node] = result
            if shared is not None:
                # A node with no zone dependencies is unblockable regardless
                # of how the recursion reached it.
                shared[node] = result
            return result

        best_cost: Tuple[int, int] = _INFINITY
        best_servers: FrozenSet[DomainName] = frozenset()
        for zone in zones:
            cost, servers = self._block_zone(graph, zone, memo, in_progress)
            if cost < best_cost:
                best_cost, best_servers = cost, servers
        result = (best_cost, best_servers)
        if best_cost < _INFINITY:
            memo[node] = result
            if self._taint_events == events_before:
                if shared is not None:
                    shared[node] = result
            else:
                self._tainted.add(node)
        return result

    def _block_zone(self, graph, zone: NodeKey,
                    memo: Dict, in_progress: FrozenSet[NodeKey]
                    ) -> Tuple[Tuple[int, int], FrozenSet[DomainName]]:
        """Cheapest way to control every nameserver delegated for a zone."""
        nameservers = graph.nameservers_of_zone(zone)
        if not nameservers:
            return _INFINITY, frozenset()
        total = (0, 0)
        servers: Set[DomainName] = set()
        vulnerability_aware = self.vulnerability_aware
        vulnerability_get = self.vulnerability_map.get
        for ns in nameservers:
            hostname = ns[1]
            if vulnerability_aware and vulnerability_get(hostname, False):
                direct_cost = (0, 1)
            else:
                direct_cost = (1, 1)
            indirect_cost, indirect_servers = self._block_name(
                graph, ns, memo, in_progress)
            if indirect_cost < direct_cost:
                choice_cost, choice_servers = indirect_cost, indirect_servers
            else:
                choice_cost, choice_servers = direct_cost, frozenset({hostname})
            if choice_cost >= _INFINITY:
                return _INFINITY, frozenset()
            # Servers already selected for this zone's cut are not paid twice.
            new_servers = set(choice_servers) - servers
            if len(new_servers) != len(choice_servers):
                choice_cost = self._cost_of(new_servers)
            total = (total[0] + choice_cost[0], total[1] + choice_cost[1])
            servers.update(new_servers)
            if total >= _INFINITY:
                return _INFINITY, frozenset()
        return total, frozenset(servers)

    def _cost_of(self, servers: Set[DomainName]) -> Tuple[int, int]:
        """Combined cost of a concrete server set (used when deduplicating)."""
        safe = sum(1 for host in servers if not (
            self.vulnerability_aware and self._is_vulnerable(host)))
        return (safe if self.vulnerability_aware else len(servers), len(servers))
