"""Core contribution: delegation graphs, TCBs, bottlenecks, hijacks, value.

This subpackage implements the analyses that constitute the paper's
contribution, on top of the DNS / network / topology substrates:

* :mod:`repro.core.delegation` -- building the delegation graph (the
  transitive closure of nameserver dependencies) of a domain name.
* :mod:`repro.core.tcb` -- the trusted computing base of a name and its
  vulnerability profile (Figures 2-6).
* :mod:`repro.core.mincut` -- bottleneck (min-cut) analysis determining the
  minimum set of servers whose compromise completely hijacks a name
  (Figure 7).
* :mod:`repro.core.hijack` -- hijack feasibility classification, attack-path
  extraction, and an end-to-end hijack simulator.
* :mod:`repro.core.value` -- nameserver value ranking: how many names each
  server controls (Figures 8-9).
* :mod:`repro.core.survey` -- the survey facade tying it all together.
* :mod:`repro.core.engine` -- the staged survey engine (discovery, closure,
  fingerprinting, analysis) with serial / thread / sharded backends.
* :mod:`repro.core.report` -- CDFs, summary statistics, and per-figure data
  series.
* :mod:`repro.core.snapshot` -- JSON persistence of survey results.
* :mod:`repro.core.delta` -- dirty-set computation for incremental
  re-surveys over a journalled world change.
"""

from repro.core.delegation import (
    ClosureIndex,
    DelegationGraph,
    DelegationGraphBuilder,
    TCBView,
)
from repro.core.tcb import TCBReport, compute_tcb_report
from repro.core.mincut import BottleneckAnalyzer, BottleneckResult
from repro.core.hijack import (
    HijackAnalyzer,
    HijackAssessment,
    HijackSimulator,
    HijackOutcome,
    AttackStep,
)
from repro.core.value import NameserverValueAnalyzer, ServerValue
from repro.core.survey import Survey, SurveyResults, NameRecord
from repro.core.engine import (
    EngineConfig,
    SurveyAggregator,
    SurveyEngine,
    WorkerContext,
)
from repro.core.report import (
    CDFSeries,
    summary_stats,
    average_by_group,
    rank_series,
)
from repro.core.delta import DeltaOutcome, DeltaStats, DirtyIndex
from repro.core.snapshot import save_results, load_results
from repro.core.timeline import (
    Timeline,
    TimelineSnapshot,
    load_timeline,
    run_churn_timeline,
    save_timeline,
)
from repro.core.availability import (
    AvailabilityAnalyzer,
    AvailabilityReport,
    availability_security_tradeoff,
)
from repro.core.dnssec_impact import (
    DNSSECDeployment,
    DNSSECImpactAnalyzer,
    DNSSECImpactReport,
    deploy_dnssec,
)

__all__ = [
    "ClosureIndex",
    "DelegationGraph",
    "DelegationGraphBuilder",
    "TCBView",
    "EngineConfig",
    "SurveyAggregator",
    "SurveyEngine",
    "WorkerContext",
    "TCBReport",
    "compute_tcb_report",
    "BottleneckAnalyzer",
    "BottleneckResult",
    "HijackAnalyzer",
    "HijackAssessment",
    "HijackSimulator",
    "HijackOutcome",
    "AttackStep",
    "NameserverValueAnalyzer",
    "ServerValue",
    "Survey",
    "SurveyResults",
    "NameRecord",
    "CDFSeries",
    "summary_stats",
    "average_by_group",
    "rank_series",
    "DeltaOutcome",
    "DeltaStats",
    "DirtyIndex",
    "save_results",
    "load_results",
    "Timeline",
    "TimelineSnapshot",
    "load_timeline",
    "run_churn_timeline",
    "save_timeline",
    "AvailabilityAnalyzer",
    "AvailabilityReport",
    "availability_security_tradeoff",
    "DNSSECDeployment",
    "DNSSECImpactAnalyzer",
    "DNSSECImpactReport",
    "deploy_dnssec",
]
