"""Availability analysis: the other side of the paper's dilemma.

Section 3.1 and the discussion in Section 5 frame an explicit trade-off:
administrators delegate to geographically and administratively remote
secondaries to survive failures, but every server they (transitively) lean
on is also a place their namespace can be hijacked from.  The security side
is quantified by the TCB and bottleneck analyses; this module quantifies the
availability side so the trade-off can be studied on the same graphs.

Resolution of a name succeeds when, for *every* zone on its delegation path,
at least one of the zone's nameservers is reachable — where "reachable"
itself requires the server to be up and its hostname to be resolvable
(recursively).  Over the delegation graph this is the same AND/OR structure
as the bottleneck analysis, evaluated with probabilities instead of attack
costs::

    avail(name)  = product over zones Z on the chain of avail_zone(Z)
    avail_zone(Z) = 1 - product over nameservers H of (1 - up(H) * avail(H))

Cycles (mutual secondaries) are broken the same way as in the bottleneck
analysis: a dependency loop cannot make a server *more* reachable, so the
looping branch contributes only the server's own up-probability.

The analyzer accepts any :class:`~repro.core.delegation.DelegationView` —
a materialised per-name :class:`~repro.core.delegation.DelegationGraph` or
the survey engine's zero-copy :class:`~repro.core.delegation.TCBView` — and
supports *shared memos* across names, with the same clean/tainted publishing
discipline as :class:`~repro.core.mincut.BottleneckAnalyzer`: only values
computed without truncating a dependency cycle (and without consuming a
truncation-tainted value) are published cross-name, because those are the
only values independent of the path the recursion took to reach the node.

Three evaluation modes are provided:

* :meth:`AvailabilityAnalyzer.resolution_probability` — analytic evaluation
  of the recursion under independent per-server failure probabilities
  (an approximation: shared dependencies are treated as independent).
* :meth:`AvailabilityAnalyzer.monte_carlo` — simulate failure draws and
  evaluate the same structure exactly per draw; used to sanity-check the
  analytic value and to study correlated (regional) failures.
* :meth:`AvailabilityAnalyzer.single_points_of_failure` — the servers whose
  individual loss makes the name unresolvable, computed by a kill-set
  recursion over the same AND/OR structure (a server kills a zone iff it
  kills every nameserver of that zone) instead of one full re-evaluation
  per TCB member.
"""

from __future__ import annotations

import dataclasses
import random
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Mapping,
    Optional,
    Set,
    Union,
)

from repro.dns.name import DomainName
from repro.core.delegation import DelegationView, NodeKey, name_node

#: A per-server up-probability map or a single probability applied to all.
UpModel = Union[float, Mapping[DomainName, float]]


@dataclasses.dataclass
class AvailabilityReport:
    """Availability estimate for one name."""

    name: DomainName
    analytic: float
    monte_carlo: Optional[float] = None
    samples: int = 0
    single_points_of_failure: FrozenSet[DomainName] = frozenset()

    @property
    def has_single_point_of_failure(self) -> bool:
        """True if one server's loss alone makes the name unresolvable."""
        return bool(self.single_points_of_failure)


class AvailabilityAnalyzer:
    """Evaluates resolution availability over delegation views.

    Parameters
    ----------
    up_probability:
        Either a single probability applied to every server, or a mapping
        from hostname to up-probability (servers missing from the mapping
        get ``default_up``).
    default_up:
        Up-probability for servers not listed in the mapping.
    shared_memo:
        Optional cross-name memo for analytic availabilities, keyed by
        graph node.  Only cycle-independent ("clean") values are published.
        The survey engine registers it with the builder's
        :class:`~repro.core.delegation.ClosureIndex` so universe growth
        purges exactly the entries whose subtree changed.  Valid only while
        the analyzer's up-model is unchanged.
    shared_spof_memo:
        Optional cross-name memo for kill sets, same discipline.
    """

    def __init__(self, up_probability: UpModel = 0.99,
                 default_up: float = 0.99,
                 shared_memo: Optional[Dict[NodeKey, float]] = None,
                 shared_spof_memo: Optional[Dict[NodeKey,
                                                 FrozenSet[DomainName]]] = None):
        if isinstance(up_probability, float):
            if not 0.0 <= up_probability <= 1.0:
                raise ValueError("up_probability must be within [0, 1]")
            self._per_server: Dict[DomainName, float] = {}
            self.default_up = up_probability
        else:
            self._per_server = {DomainName(host): float(p)
                                for host, p in up_probability.items()}
            self.default_up = default_up
        if not 0.0 <= self.default_up <= 1.0:
            raise ValueError("default_up must be within [0, 1]")
        self.shared_memo = shared_memo
        self.shared_spof_memo = shared_spof_memo
        self._taint_events = 0
        self._tainted: Set[NodeKey] = set()

    # -- probability model ---------------------------------------------------------

    def up_probability(self, hostname: DomainName) -> float:
        """The probability that ``hostname`` is reachable."""
        return self._per_server.get(hostname, self.default_up)

    # -- analytic evaluation -----------------------------------------------------------

    def resolution_probability(self, graph: DelegationView) -> float:
        """Probability that the view's target name resolves.

        Shared dependencies are treated as independent, so the value is an
        approximation (generally a slight underestimate for names whose
        zones share servers); :meth:`monte_carlo` evaluates the structure
        without that assumption.
        """
        target = name_node(graph.target)
        if not graph.zones_of(target):
            # Nothing is known about the name's delegation chain at all.
            return 0.0
        self._taint_events = 0
        self._tainted = set()
        return self._avail_name(graph, target, {}, frozenset(),
                                lambda hostname: self.up_probability(hostname),
                                self.shared_memo)

    def _avail_name(self, graph: DelegationView, node: NodeKey,
                    memo: Dict[NodeKey, float],
                    in_progress: FrozenSet[NodeKey],
                    up: Callable[[DomainName], float],
                    shared: Optional[Dict[NodeKey, float]] = None) -> float:
        cached = memo.get(node)
        if cached is not None:
            if node in self._tainted:
                # The consumer inherits this value's context-dependence.
                self._taint_events += 1
            return cached
        if shared is not None:
            hit = shared.get(node)
            if hit is not None:
                return hit
        if node in in_progress:
            # A dependency loop cannot improve reachability.
            self._taint_events += 1
            return 1.0
        in_progress = in_progress | {node}
        events_before = self._taint_events
        zones = graph.zones_of(node)
        if not zones:
            # No recorded chain (e.g. glued hostname inside an already
            # covered zone): treat as reachable so the parent term reduces
            # to the server's own up-probability.
            memo[node] = 1.0
            if shared is not None:
                shared[node] = 1.0
            return 1.0
        probability = 1.0
        for zone in zones:
            nameservers = graph.nameservers_of_zone(zone)
            if not nameservers:
                probability = 0.0
                break
            all_down = 1.0
            for ns in nameservers:
                hostname = ns[1]
                reachable = up(hostname) * self._avail_name(
                    graph, ns, memo, in_progress, up, shared)
                all_down *= (1.0 - reachable)
            probability *= (1.0 - all_down)
        memo[node] = probability
        if self._taint_events == events_before:
            if shared is not None:
                shared[node] = probability
        else:
            self._tainted.add(node)
        return probability

    # -- Monte Carlo evaluation ------------------------------------------------------------

    def monte_carlo(self, graph: DelegationView, samples: int = 500,
                    rng: Optional[random.Random] = None) -> float:
        """Estimate availability by sampling failure scenarios."""
        if samples <= 0:
            raise ValueError("samples must be positive")
        rng = rng or random.Random(0)
        hosts = sorted(graph.tcb())
        successes = 0
        for _ in range(samples):
            down = {host for host in hosts
                    if rng.random() >= self.up_probability(host)}
            if self.resolvable_with_failures(graph, down):
                successes += 1
        return successes / samples

    def resolvable_with_failures(self, graph: DelegationView,
                                 failed: Set[DomainName]) -> bool:
        """Exact check: does the name resolve when ``failed`` servers are down?"""
        target = name_node(graph.target)
        if not graph.zones_of(target):
            return False
        up = (lambda hostname: 0.0 if hostname in failed else 1.0)
        self._taint_events = 0
        self._tainted = set()
        probability = self._avail_name(graph, target, {}, frozenset(), up)
        return probability > 0.5

    # -- single points of failure ------------------------------------------------------------

    def single_points_of_failure(self, graph: DelegationView
                                 ) -> FrozenSet[DomainName]:
        """Servers whose individual loss makes the name unresolvable.

        These are exactly the size-one bottlenecks of the availability
        structure: names served by a single machine anywhere on their chain.
        Computed by a kill-set recursion mirroring the availability AND/OR
        structure — a server kills a zone iff it kills every nameserver of
        that zone (by being it, or by killing its hostname's resolution) —
        so the cost is one graph walk instead of one per TCB member.
        """
        if not self.resolvable_with_failures(graph, set()):
            # The name does not resolve even with every server up: any
            # single failure "also" leaves it unresolvable.
            return frozenset(graph.tcb())
        self._taint_events = 0
        self._tainted = set()
        return self._kill_name(graph, name_node(graph.target), {}, {},
                               frozenset(), self.shared_spof_memo)

    def _kill_name(self, graph: DelegationView, node: NodeKey,
                   memo: Dict[NodeKey, FrozenSet[DomainName]],
                   reach_memo: Dict[NodeKey, float],
                   in_progress: FrozenSet[NodeKey],
                   shared: Optional[Dict[NodeKey, FrozenSet[DomainName]]]
                   ) -> FrozenSet[DomainName]:
        """Hostnames whose individual failure makes ``node`` unresolvable."""
        cached = memo.get(node)
        if cached is not None:
            if node in self._tainted:
                self._taint_events += 1
            return cached
        if shared is not None:
            hit = shared.get(node)
            if hit is not None:
                return hit
        if node in in_progress:
            # The looping branch is treated as reachable by the availability
            # recursion, so nothing kills it from inside the loop.
            self._taint_events += 1
            return frozenset()
        in_progress = in_progress | {node}
        events_before = self._taint_events
        zones = graph.zones_of(node)
        if not zones:
            memo[node] = frozenset()
            if shared is not None:
                shared[node] = frozenset()
            return frozenset()
        kills: Set[DomainName] = set()
        all_up = (lambda _hostname: 1.0)
        for zone in zones:
            nameservers = graph.nameservers_of_zone(zone)
            zone_kill: Optional[FrozenSet[DomainName]] = None
            for ns in nameservers:
                # A nameserver that cannot resolve even with every server up
                # (its own chain crosses a dead zone) is no alternative: it
                # imposes no constraint on the zone's kill intersection.
                reachable = self._avail_name(graph, ns, reach_memo,
                                             in_progress, all_up)
                if reachable <= 0.5:
                    continue
                hostname = ns[1]
                term = frozenset({hostname}) | self._kill_name(
                    graph, ns, memo, reach_memo, in_progress, shared)
                zone_kill = term if zone_kill is None else (zone_kill & term)
                if not zone_kill:
                    break
            if zone_kill:
                kills |= zone_kill
        result = frozenset(kills)
        memo[node] = result
        if self._taint_events == events_before:
            if shared is not None:
                shared[node] = result
        else:
            self._tainted.add(node)
        return result

    def single_points_of_failure_exhaustive(self, graph: DelegationView
                                            ) -> FrozenSet[DomainName]:
        """Reference implementation: re-evaluate resolution per TCB member.

        One full availability evaluation per server — O(TCB × graph) versus
        the kill-set recursion's single walk.  Kept as the ground truth the
        tests compare :meth:`single_points_of_failure` against.
        """
        culprits = set()
        for hostname in graph.tcb():
            if not self.resolvable_with_failures(graph, {hostname}):
                culprits.add(hostname)
        return frozenset(culprits)

    def report(self, graph: DelegationView, samples: int = 0,
               rng: Optional[random.Random] = None) -> AvailabilityReport:
        """Full availability report (analytic, optional Monte Carlo, SPOFs)."""
        analytic = self.resolution_probability(graph)
        monte_carlo = None
        if samples:
            monte_carlo = self.monte_carlo(graph, samples=samples, rng=rng)
        return AvailabilityReport(
            name=graph.target, analytic=analytic, monte_carlo=monte_carlo,
            samples=samples,
            single_points_of_failure=self.single_points_of_failure(graph))


def availability_security_tradeoff(graphs, up_probability: float = 0.95,
                                   vulnerability_map: Optional[Mapping] = None
                                   ) -> Dict[str, float]:
    """Summarise the paper's dilemma over a collection of delegation views.

    Returns the mean TCB size (the security cost), the mean analytic
    availability under independent failures (the availability benefit), and
    the fraction of names with at least one single point of failure.
    """
    analyzer = AvailabilityAnalyzer(up_probability)
    sizes = []
    availabilities = []
    spof_names = 0
    for graph in graphs:
        sizes.append(graph.tcb_size())
        availabilities.append(analyzer.resolution_probability(graph))
        if analyzer.single_points_of_failure(graph):
            spof_names += 1
    count = max(1, len(sizes))
    return {
        "names": float(len(sizes)),
        "mean_tcb_size": sum(sizes) / count,
        "mean_availability": sum(availabilities) / count,
        "fraction_with_spof": spof_names / count,
    }
