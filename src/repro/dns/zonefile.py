"""RFC 1035 master-file (zone file) reading and writing.

The survey pipeline works on in-memory :class:`~repro.dns.zone.Zone`
objects, but a downstream user auditing their own deployment has zone files.
This module converts between the two for the record types the substrate
models (SOA, NS, A, AAAA, CNAME, MX, TXT, PTR, and the DNSSEC types), with
support for ``$ORIGIN`` / ``$TTL`` directives, relative owner names, ``@``
for the apex, and comments.

Delegations are reconstructed on load: NS RRSets owned by a proper subdomain
of the apex become :class:`~repro.dns.zone.Delegation` entries, and any A
records for those nameservers below the cut are attached as glue — matching
how a real authoritative server interprets a master file.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro.dns.errors import ZoneError
from repro.dns.name import DomainName, NameLike
from repro.dns.rdtypes import DEFAULT_TTL, RRClass, RRType
from repro.dns.records import MXData, ResourceRecord, SOAData
from repro.dns.zone import Zone

PathLike = Union[str, pathlib.Path]

#: Record types the writer/parser handle.
SUPPORTED_TYPES = (RRType.SOA, RRType.NS, RRType.A, RRType.AAAA,
                   RRType.CNAME, RRType.MX, RRType.TXT, RRType.PTR,
                   RRType.DS, RRType.DNSKEY, RRType.RRSIG)


def _present_name(name: DomainName) -> str:
    """Absolute presentation form (with trailing dot) for zone files."""
    return "." if name.is_root else f"{name}."


def _present_rdata(record: ResourceRecord) -> str:
    rdata = record.rdata
    if isinstance(rdata, DomainName):
        return _present_name(rdata)
    if isinstance(rdata, MXData):
        return f"{rdata.preference} {_present_name(rdata.exchange)}"
    if isinstance(rdata, SOAData):
        return (f"{_present_name(rdata.mname)} {_present_name(rdata.rname)} "
                f"{rdata.serial} {rdata.refresh} {rdata.retry} "
                f"{rdata.expire} {rdata.minimum}")
    if record.rtype in (RRType.TXT, RRType.RRSIG, RRType.DNSKEY, RRType.DS):
        return f"\"{rdata}\""
    return str(rdata)


def zone_to_text(zone: Zone) -> str:
    """Render a zone (records, delegations, and glue) as master-file text."""
    lines = [f"$ORIGIN {_present_name(zone.apex)}", f"$TTL {DEFAULT_TTL}"]
    ordered = sorted(zone.iter_records(),
                     key=lambda r: (r.rtype is not RRType.SOA,
                                    tuple(reversed(r.name.labels)),
                                    r.rtype.value, str(r.rdata)))
    for record in ordered:
        if record.rtype not in SUPPORTED_TYPES:
            continue
        lines.append(f"{_present_name(record.name)}\t{record.ttl}\t"
                     f"{record.rclass.name}\t{record.rtype.name}\t"
                     f"{_present_rdata(record)}")
    for delegation in zone.iter_delegations():
        for nameserver in delegation.nameservers:
            lines.append(f"{_present_name(delegation.child)}\t{DEFAULT_TTL}\t"
                         f"IN\tNS\t{_present_name(nameserver)}")
        for nameserver, addresses in delegation.glue.items():
            for address in addresses:
                lines.append(f"{_present_name(nameserver)}\t{DEFAULT_TTL}\t"
                             f"IN\tA\t{address}")
    return "\n".join(lines) + "\n"


def write_zone_file(zone: Zone, path: PathLike) -> pathlib.Path:
    """Write ``zone`` to ``path`` in master-file format."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(zone_to_text(zone), encoding="utf-8")
    return path


class ZoneFileParser:
    """Parses master-file text into a :class:`Zone`."""

    def __init__(self, default_origin: Optional[NameLike] = None):
        self.default_origin = (DomainName(default_origin)
                               if default_origin is not None else None)

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _strip_comment(line: str) -> str:
        result = []
        in_quotes = False
        for char in line:
            if char == '"':
                in_quotes = not in_quotes
            if char == ";" and not in_quotes:
                break
            result.append(char)
        return "".join(result).rstrip()

    def _absolute(self, text: str, origin: DomainName) -> DomainName:
        if text == "@":
            return origin
        if text.endswith("."):
            return DomainName(text)
        return DomainName(text).concatenate(origin)

    def _parse_rdata(self, rtype: RRType, fields: List[str],
                     origin: DomainName) -> object:
        if rtype in (RRType.NS, RRType.CNAME, RRType.PTR):
            return self._absolute(fields[0], origin)
        if rtype is RRType.MX:
            return MXData(int(fields[0]), self._absolute(fields[1], origin))
        if rtype is RRType.SOA:
            if len(fields) < 7:
                raise ZoneError(f"SOA needs 7 fields, got {fields!r}")
            return SOAData(mname=self._absolute(fields[0], origin),
                           rname=self._absolute(fields[1], origin),
                           serial=int(fields[2]), refresh=int(fields[3]),
                           retry=int(fields[4]), expire=int(fields[5]),
                           minimum=int(fields[6]))
        text = " ".join(fields)
        if text.startswith('"') and text.endswith('"'):
            text = text[1:-1]
        return text

    # -- main entry points ------------------------------------------------------------

    def parse(self, text: str, origin: Optional[NameLike] = None) -> Zone:
        """Parse master-file ``text`` into a fully wired :class:`Zone`."""
        current_origin = (DomainName(origin) if origin is not None
                          else self.default_origin)
        default_ttl = DEFAULT_TTL
        entries: List[Tuple[DomainName, int, RRType, object]] = []
        last_owner: Optional[DomainName] = None

        for raw_line in text.splitlines():
            line = self._strip_comment(raw_line)
            if not line.strip():
                continue
            if line.startswith("$ORIGIN"):
                current_origin = DomainName(line.split()[1])
                continue
            if line.startswith("$TTL"):
                default_ttl = int(line.split()[1])
                continue
            if current_origin is None:
                raise ZoneError("no $ORIGIN directive and no origin given")

            starts_with_space = line[0] in (" ", "\t")
            fields = line.split()
            if starts_with_space:
                owner = last_owner
                if owner is None:
                    raise ZoneError(f"record without owner: {raw_line!r}")
            else:
                owner = self._absolute(fields[0], current_origin)
                fields = fields[1:]
            last_owner = owner

            ttl = default_ttl
            if fields and fields[0].isdigit():
                ttl = int(fields[0])
                fields = fields[1:]
            if fields and fields[0].upper() in ("IN", "CH", "HS"):
                fields = fields[1:]
            if not fields:
                raise ZoneError(f"truncated record: {raw_line!r}")
            try:
                rtype = RRType.from_text(fields[0])
            except ValueError as exc:
                raise ZoneError(str(exc)) from exc
            rdata = self._parse_rdata(rtype, fields[1:], current_origin)
            entries.append((owner, ttl, rtype, rdata))

        if current_origin is None:
            raise ZoneError("empty zone file")
        return self._build_zone(current_origin, entries)

    def _build_zone(self, origin: DomainName,
                    entries: List[Tuple[DomainName, int, RRType, object]]
                    ) -> Zone:
        soa = next((rdata for _o, _t, rtype, rdata in entries
                    if rtype is RRType.SOA and isinstance(rdata, SOAData)),
                   None)
        zone = Zone(origin, soa=soa)

        delegated: Dict[DomainName, List[DomainName]] = {}
        for owner, _ttl, rtype, rdata in entries:
            if rtype is RRType.NS and owner != origin and \
                    owner.is_subdomain_of(origin, proper=True):
                delegated.setdefault(owner, []).append(rdata)  # type: ignore[arg-type]

        glue: Dict[DomainName, Dict[str, List[str]]] = {}
        for owner, ttl, rtype, rdata in entries:
            if rtype is RRType.SOA:
                continue
            covering = next((child for child in delegated
                             if owner.is_subdomain_of(child, proper=True)),
                            None)
            if covering is not None and rtype in (RRType.A, RRType.AAAA):
                glue.setdefault(covering, {}).setdefault(str(owner),
                                                         []).append(str(rdata))
                continue
            if owner in delegated and rtype is RRType.NS:
                continue
            zone.add_record(ResourceRecord.create(owner, rtype, rdata,
                                                  ttl=ttl))

        for child, nameservers in delegated.items():
            zone.delegate(child, nameservers, glue=glue.get(child, {}))
        return zone

    def parse_file(self, path: PathLike,
                   origin: Optional[NameLike] = None) -> Zone:
        """Parse the master file at ``path``."""
        path = pathlib.Path(path)
        return self.parse(path.read_text(encoding="utf-8"), origin=origin)


def load_zone_file(path: PathLike, origin: Optional[NameLike] = None) -> Zone:
    """Convenience wrapper: parse the master file at ``path``."""
    return ZoneFileParser().parse_file(path, origin=origin)
