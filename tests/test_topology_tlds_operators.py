"""Tests for TLD profiles, operator organisations, and the BIND policy."""

import random

import pytest

from repro.dns.name import DomainName
from repro.topology.bindpolicy import (
    BindVersionPolicy,
    DEFAULT_HIDDEN_FRACTION,
    KIND_HYGIENE,
    VERSION_POOLS,
)
from repro.topology.operators import (
    OperatorKind,
    Organization,
    OrganizationRegistry,
)
from repro.topology.tlds import (
    CCTLD_PROFILES,
    FIGURE3_GTLDS,
    FIGURE4_CCTLDS,
    GTLD_PROFILES,
    TLDProfile,
    all_profiles,
    cctld_labels,
    gtld_labels,
    profile_for,
)
from repro.vulns.database import default_database


# -- TLD profiles -----------------------------------------------------------------

def test_catalogue_sizes():
    assert len(GTLD_PROFILES) == 12
    assert len(CCTLD_PROFILES) >= 40
    assert set(gtld_labels()) == set(GTLD_PROFILES)
    assert set(cctld_labels()) == set(CCTLD_PROFILES)


def test_figure_orderings_are_present_in_catalogue():
    assert set(FIGURE3_GTLDS) <= set(GTLD_PROFILES)
    assert set(FIGURE4_CCTLDS) <= set(CCTLD_PROFILES)
    assert len(FIGURE4_CCTLDS) == 15


def test_paper_cctlds_are_heavier_than_long_tail():
    worst = [CCTLD_PROFILES[label].offsite_dependency_level
             for label in FIGURE4_CCTLDS[:5]]
    tail = [CCTLD_PROFILES[label].offsite_dependency_level
            for label in ("uk", "de", "nl", "jp", "se")]
    assert min(worst) > max(tail)


def test_aero_and_int_heavier_than_com():
    assert GTLD_PROFILES["aero"].offsite_dependency_level > \
        GTLD_PROFILES["com"].offsite_dependency_level
    assert GTLD_PROFILES["int"].offsite_dependency_level > \
        GTLD_PROFILES["net"].offsite_dependency_level


def test_com_dominates_sld_share():
    assert GTLD_PROFILES["com"].sld_share == max(
        profile.sld_share for profile in all_profiles().values())


def test_ws_models_the_all_vulnerable_community():
    assert CCTLD_PROFILES["ws"].hygiene <= 0.1


def test_profile_for_and_unknown():
    assert profile_for("com").kind == "gtld"
    assert profile_for("ua").kind == "cctld"
    with pytest.raises(KeyError):
        profile_for("zz")


def test_profile_validation():
    with pytest.raises(ValueError):
        TLDProfile(label="x", kind="weird", region="us", registry_ns_count=2,
                   offsite_dependency_level=0, sld_share=0.1, hygiene=0.5)
    with pytest.raises(ValueError):
        TLDProfile(label="x", kind="gtld", region="us", registry_ns_count=0,
                   offsite_dependency_level=0, sld_share=0.1, hygiene=0.5)
    with pytest.raises(ValueError):
        TLDProfile(label="x", kind="gtld", region="us", registry_ns_count=2,
                   offsite_dependency_level=0, sld_share=0.1, hygiene=1.5)


# -- organisations ---------------------------------------------------------------------

def test_organization_tracks_nameservers_and_zones():
    org = Organization(name="cornell", kind=OperatorKind.UNIVERSITY,
                       domain=DomainName("cornell.edu"))
    org.add_nameserver("cudns.cit.cornell.edu")
    org.add_nameserver("cudns.cit.cornell.edu")
    org.add_hosted_zone("cornell.edu")
    assert len(org.nameservers) == 1
    assert org.tld == "edu"
    assert org.is_educational
    assert org.kind.provides_secondary_service
    assert not org.kind.is_registry


def test_operator_kind_classification():
    assert OperatorKind.GTLD_REGISTRY.is_registry
    assert OperatorKind.CCTLD_REGISTRY.is_registry
    assert not OperatorKind.ENTERPRISE.provides_secondary_service
    assert OperatorKind.ISP.provides_secondary_service


def test_registry_indexing_and_lookup():
    registry = OrganizationRegistry()
    org = Organization(name="hostco", kind=OperatorKind.HOSTING_PROVIDER,
                       domain=DomainName("hostco.com"))
    org.add_nameserver("ns1.hostco.com")
    registry.add(org)
    assert registry.by_name("hostco") is org
    assert registry.by_domain("hostco.com") is org
    assert registry.operator_of("ns1.hostco.com") is org
    assert registry.operator_of("ns9.hostco.com") is None
    assert registry.of_kind(OperatorKind.HOSTING_PROVIDER) == [org]
    assert len(registry) == 1
    # Adding the same name again returns the existing object.
    assert registry.add(Organization(name="hostco",
                                     kind=OperatorKind.HOSTING_PROVIDER,
                                     domain=DomainName("hostco.com"))) is org


# -- BIND version policy ----------------------------------------------------------------------

def test_version_pools_classified_correctly():
    database = default_database()
    for banner in VERSION_POOLS["safe"]:
        assert not database.is_vulnerable(banner), banner
    for banner in VERSION_POOLS["vulnerable"]:
        assert database.is_vulnerable(banner), banner
    for banner in VERSION_POOLS["hidden"]:
        assert not database.is_vulnerable(banner), banner


def test_kind_hygiene_ordering_matches_paper_narrative():
    assert KIND_HYGIENE[OperatorKind.GTLD_REGISTRY] >= \
        KIND_HYGIENE[OperatorKind.UNIVERSITY]
    assert KIND_HYGIENE[OperatorKind.ENTERPRISE] > \
        KIND_HYGIENE[OperatorKind.SMALL_BUSINESS]
    assert KIND_HYGIENE[OperatorKind.ROOT] == 1.0


def test_effective_hygiene_bounds_and_modifiers():
    policy = BindVersionPolicy(rng=random.Random(0))
    clean = policy.effective_hygiene(OperatorKind.ENTERPRISE, 1.0, 1.0)
    dirty = policy.effective_hygiene(OperatorKind.ENTERPRISE, 0.0, 0.0)
    assert 0.0 <= dirty < clean <= 1.0


def test_hygiene_scale_validation():
    with pytest.raises(ValueError):
        BindVersionPolicy(hygiene_scale=0.0)
    with pytest.raises(ValueError):
        BindVersionPolicy(hidden_fraction=1.0)


def test_assignment_fractions_track_hygiene():
    rng = random.Random(42)
    policy = BindVersionPolicy(rng=rng, hidden_fraction=0.0)
    draws = [policy.assign(OperatorKind.SMALL_BUSINESS, tld_hygiene=0.5,
                           org_hygiene=0.5) for _ in range(2000)]
    database = default_database()
    vulnerable = sum(1 for banner in draws if database.is_vulnerable(banner))
    fraction = vulnerable / len(draws)
    expected = 1.0 - policy.effective_hygiene(OperatorKind.SMALL_BUSINESS,
                                              0.5, 0.5)
    assert abs(fraction - expected) < 0.06
    summary = policy.assignment_summary()
    assert summary["vulnerable"] == vulnerable
    assert summary["hidden"] == 0


def test_hidden_fraction_produces_hidden_banners():
    policy = BindVersionPolicy(rng=random.Random(1), hidden_fraction=0.5)
    draws = [policy.assign(OperatorKind.ENTERPRISE) for _ in range(500)]
    hidden = sum(1 for banner in draws if banner in VERSION_POOLS["hidden"])
    assert 150 < hidden < 350


def test_default_hidden_fraction_is_modest():
    assert 0.0 < DEFAULT_HIDDEN_FRACTION < 0.2


def test_pools_accessors_return_copies():
    policy = BindVersionPolicy()
    pool = policy.vulnerable_pool()
    pool.append("BOGUS")
    assert "BOGUS" not in policy.vulnerable_pool()
    assert policy.safe_pool()
