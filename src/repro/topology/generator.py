"""Synthetic Internet generator.

:class:`InternetGenerator` builds a complete, resolvable DNS deployment — the
substitute for the live Internet the paper surveyed — and returns it as a
:class:`SyntheticInternet`: a registered :class:`SimulatedNetwork` of
authoritative servers, the zone objects they serve, the organisations that
operate them, root hints, and a :class:`WebDirectory` of externally-visible
web-server names to survey.

The generator reproduces the structural mechanisms the paper identifies:

* registries whose infrastructure is self-contained (``com``/``net``) versus
  registries that delegate to far-flung off-site servers (``aero``, ``int``,
  and the worst ccTLDs such as ``ua`` and ``by``);
* hosting providers and ISPs that concentrate many customer zones on a few
  servers (the "most valuable nameservers" of Section 3.3);
* universities that run their own servers, slave zones for one another in
  mutual-secondary webs, and thereby create long transitive trust chains
  (the Cornell → Rochester → Wisconsin → Michigan example of Figure 1);
* per-organisation BIND hygiene calibrated so that roughly 17 % of servers
  carry a well-documented vulnerability, skewed towards educational and
  small-registry operators.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.name import DomainName, NameLike, ROOT_NAME
from repro.dns.rdtypes import RRType
from repro.dns.resolver import IterativeResolver
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.netsim.ip import IPv4Allocator
from repro.netsim.network import SimulatedNetwork
from repro.topology.bindpolicy import BindVersionPolicy
from repro.topology.distributions import ZipfSampler, truncated_geometric
from repro.topology.operators import Organization, OperatorKind, \
    OrganizationRegistry
from repro.topology.tlds import CCTLD_PROFILES, GTLD_PROFILES, TLDProfile
from repro.topology.webdirectory import DirectoryEntry, WebDirectory

#: Alphabet used for root/gTLD server letters (a.gtld-servers.net ...).
_LETTERS = "abcdefghijklm"


@dataclasses.dataclass
class GeneratorConfig:
    """Knobs controlling the size and shape of the synthetic Internet.

    The defaults produce a survey of a few thousand names resolving against
    a few thousand nameservers — a scale that keeps the full pipeline under
    a minute while preserving the distributional shapes of the paper's
    593k-name survey.  Benchmarks shrink ``sld_count`` further.
    """

    seed: int = 20040722
    #: Number of second-level domains generated from the generic population
    #: (universities, providers, and registries are created on top of this).
    sld_count: int = 2000
    #: Soft target for the number of names in the web directory.
    directory_name_count: int = 3200
    #: Size of the "Alexa" popular-names cohort.
    alexa_count: int = 500
    hosting_provider_count: int = 40
    isp_count: int = 30
    university_count: int = 130
    #: Fraction of generic SLDs owned by self-hosting enterprises.
    enterprise_fraction: float = 0.12
    #: Fraction of generic SLDs that are government agencies (forced to .gov).
    government_fraction: float = 0.02
    #: Fraction of generic SLDs that are non-profits (forced to .org).
    nonprofit_fraction: float = 0.08
    #: Probability that a university adds an off-site secondary from each of
    #: its exchange partners (the knob the ablation bench sweeps).
    offsite_secondary_prob: float = 0.85
    #: Sizes and weights of university "secondary exchange" groups.  Most
    #: groups are small; the heavy tail creates the 200+ node TCBs.
    university_group_sizes: Tuple[int, ...] = (2, 3, 4, 6, 9, 14, 20, 28, 40)
    university_group_weights: Tuple[float, ...] = (
        0.24, 0.21, 0.17, 0.13, 0.10, 0.07, 0.04, 0.025, 0.015)
    #: Fraction of universities under US .edu (the rest sit under
    #: self-contained foreign ccTLDs).
    us_university_fraction: float = 0.8
    #: Fraction of provider-hosted small organisations that run their own
    #: primary nameservers in-house (a common 2004 pattern; these are the
    #: names whose entire bottleneck is a single sloppy organisation).
    self_hosted_small_fraction: float = 0.28
    #: Number of nstld-style servers backing the gtld-servers.net zone,
    #: adding one level of registry depth to every com/net closure.
    nstld_server_count: int = 6
    #: Probability that an enterprise spreads its zone over two providers in
    #: addition to its own servers (popular sites do this for resilience).
    multi_provider_prob: float = 0.30
    #: Probability that a university delegates a department sub-zone.
    department_subzone_prob: float = 0.3
    #: Whether parent zones carry glue for in-bailiwick nameservers.
    glue_enabled: bool = True
    #: Global multiplier on BIND hygiene (1.0 reproduces ~17 % vulnerable).
    hygiene_scale: float = 1.0
    #: Fraction of servers hiding their version banner.
    hidden_version_fraction: float = 0.06
    #: Probability that a server inherits its organisation's base BIND
    #: version rather than re-rolling (vulnerabilities cluster per admin:
    #: an organisation that runs BIND 8.2.x runs it on all of its boxes).
    org_version_correlation: float = 0.96
    #: Number of com/net registry servers.
    gtld_server_count: int = 13
    #: Restrict the ccTLDs / gTLDs built (None = full catalogue).
    include_cctlds: Optional[Sequence[str]] = None
    include_gtlds: Optional[Sequence[str]] = None
    #: Whether to plant the paper's case-study domains (fbi.gov, rkc.lviv.ua).
    plant_anecdotes: bool = True

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        if self.sld_count < 0 or self.directory_name_count < 0:
            raise ValueError("counts must be non-negative")
        if len(self.university_group_sizes) != len(self.university_group_weights):
            raise ValueError("group sizes and weights must align")
        if not 0.0 <= self.offsite_secondary_prob <= 1.0:
            raise ValueError("offsite_secondary_prob must be in [0, 1]")
        if not 0.0 <= self.multi_provider_prob <= 1.0:
            raise ValueError("multi_provider_prob must be in [0, 1]")
        if self.university_count < 0 or self.hosting_provider_count < 1:
            raise ValueError("need at least one hosting provider")


@dataclasses.dataclass
class SyntheticInternet:
    """Everything the survey needs: network, zones, operators, directory."""

    config: GeneratorConfig
    network: SimulatedNetwork
    zones: Dict[DomainName, Zone]
    servers: Dict[DomainName, AuthoritativeServer]
    organizations: OrganizationRegistry
    root_hints: Dict[DomainName, List[str]]
    directory: WebDirectory

    def make_resolver(self, use_glue: bool = True, selection: str = "first",
                      max_queries: int = 4000,
                      cache=None) -> IterativeResolver:
        """Create an iterative resolver wired to this Internet's root."""
        return IterativeResolver(self.network, self.root_hints, cache=cache,
                                 use_glue=use_glue, selection=selection,
                                 max_queries=max_queries)

    def zone(self, apex: NameLike) -> Optional[Zone]:
        """The zone rooted at ``apex``, if it exists."""
        return self.zones.get(DomainName(apex))

    def server(self, hostname: NameLike) -> Optional[AuthoritativeServer]:
        """The server with the given hostname, if it exists."""
        return self.servers.get(DomainName(hostname))

    def server_count(self) -> int:
        """Number of authoritative servers (root servers included)."""
        return len(self.servers)

    def non_root_server_count(self) -> int:
        """Number of servers excluding the root servers."""
        return sum(1 for hostname in self.servers
                   if not hostname.is_subdomain_of("root-servers.net"))

    def summary(self) -> Dict[str, int]:
        """Headline counts for reporting."""
        return {
            "servers": self.server_count(),
            "zones": len(self.zones),
            "organizations": len(self.organizations),
            "directory_names": len(self.directory),
            "tlds": len(self.directory.tld_counts()),
        }


class InternetGenerator:
    """Builds a :class:`SyntheticInternet` from a :class:`GeneratorConfig`."""

    def __init__(self, config: Optional[GeneratorConfig] = None):
        self.config = config or GeneratorConfig()
        self.config.validate()
        self._rng = random.Random(self.config.seed)
        self._ip = IPv4Allocator()
        self._policy = BindVersionPolicy(
            rng=random.Random(self.config.seed + 1),
            hidden_fraction=self.config.hidden_version_fraction,
            hygiene_scale=self.config.hygiene_scale)
        self._network = SimulatedNetwork()
        self._zones: Dict[DomainName, Zone] = {}
        self._servers: Dict[DomainName, AuthoritativeServer] = {}
        self._orgs = OrganizationRegistry()
        self._root_hints: Dict[DomainName, List[str]] = {}
        self._directory = WebDirectory()
        self._org_base_banner: Dict[str, Optional[str]] = {}
        self._gtld_profiles = self._select_profiles(GTLD_PROFILES,
                                                    self.config.include_gtlds)
        self._cctld_profiles = self._select_profiles(CCTLD_PROFILES,
                                                     self.config.include_cctlds)
        self._universities: List[Organization] = []
        self._university_groups: List[List[Organization]] = []
        self._providers: List[Organization] = []
        self._provider_sampler: Optional[ZipfSampler] = None
        self._isps: List[Organization] = []
        self._popularity = ZipfSampler(1000, exponent=0.9)

    # ------------------------------------------------------------------ public

    def generate(self) -> SyntheticInternet:
        """Build the full synthetic Internet."""
        self._build_root()
        self._build_com_net_registry()
        self._build_other_gtlds()
        self._build_cctlds()
        self._build_hosting_providers()
        self._build_isps()
        self._build_universities()
        self._augment_tlds_with_offsite_servers()
        self._build_generic_slds()
        internet = SyntheticInternet(
            config=self.config, network=self._network, zones=dict(self._zones),
            servers=dict(self._servers), organizations=self._orgs,
            root_hints=dict(self._root_hints), directory=self._directory)
        if self.config.plant_anecdotes:
            # Imported here to avoid a circular import at module load time.
            from repro.topology.anecdotes import AnecdotePlanter
            AnecdotePlanter(self).plant(internet)
            # Planting adds zones and servers after the snapshot above was
            # taken; refresh the views so the case-study infrastructure is
            # visible through the SyntheticInternet accessors too.
            internet.zones = dict(self._zones)
            internet.servers = dict(self._servers)
        return internet

    # --------------------------------------------------------------- primitives

    @staticmethod
    def _select_profiles(catalogue: Dict[str, TLDProfile],
                         include: Optional[Sequence[str]]
                         ) -> Dict[str, TLDProfile]:
        if include is None:
            return dict(catalogue)
        return {label: catalogue[label] for label in include}

    def _get_zone(self, apex: NameLike) -> Zone:
        apex = DomainName(apex)
        zone = self._zones.get(apex)
        if zone is None:
            zone = Zone(apex)
            self._zones[apex] = zone
        return zone

    def _tld_profile(self, label: Optional[str]) -> Optional[TLDProfile]:
        if label is None:
            return None
        return self._gtld_profiles.get(label) or self._cctld_profiles.get(label)

    #: Operator kinds whose servers are always current (root and com/net
    #: registry infrastructure, which the paper found well maintained).
    _ALWAYS_SAFE_KINDS = (OperatorKind.ROOT, OperatorKind.GTLD_REGISTRY)

    def _org_banner(self, org: Organization) -> Optional[str]:
        """The organisation's base BIND banner (drawn once, then reused)."""
        if org.name not in self._org_base_banner:
            profile = self._tld_profile(org.tld)
            if org.kind in self._ALWAYS_SAFE_KINDS:
                banner = self._policy.safe_pool()[0]
            elif profile is not None and profile.hygiene <= 0.1:
                # Communities the paper singles out (the .ws registry and its
                # registrants) run nothing but old, exploitable BIND; these
                # are the names whose entire TCB is vulnerable in Figure 6.
                banner = self._policy.vulnerable_pool()[2]
            else:
                tld_hygiene = profile.hygiene if profile else 0.9
                banner = self._policy.assign(org.kind, tld_hygiene=tld_hygiene,
                                             org_hygiene=org.hygiene)
            self._org_base_banner[org.name] = banner
        return self._org_base_banner[org.name]

    def _create_server(self, hostname: NameLike, org: Organization,
                       home_zone: Optional[Zone] = None) -> AuthoritativeServer:
        """Create, address, version, and register one nameserver.

        ``home_zone`` is the zone that should carry the server's A record; it
        defaults to the zone rooted at the organisation's domain.
        """
        hostname = DomainName(hostname)
        existing = self._servers.get(hostname)
        if existing is not None:
            return existing
        address = self._ip.allocate(pool=org.name, owner=str(hostname))
        profile = self._tld_profile(org.tld)
        forced_banner = org.kind in self._ALWAYS_SAFE_KINDS or \
            (profile is not None and profile.hygiene <= 0.1)
        if forced_banner or \
                self._rng.random() < self.config.org_version_correlation:
            banner = self._org_banner(org)
        else:
            profile = self._tld_profile(org.tld)
            tld_hygiene = profile.hygiene if profile else 0.9
            banner = self._policy.assign(org.kind, tld_hygiene=tld_hygiene,
                                         org_hygiene=org.hygiene)
        server = AuthoritativeServer(hostname, addresses=[address],
                                     software=banner, operator=org.name,
                                     region=org.region)
        self._servers[hostname] = server
        self._network.register_server(server)
        org.add_nameserver(hostname)
        self._orgs.index_nameserver(hostname, org)
        if home_zone is None:
            home_zone = self._zones.get(org.domain)
        if home_zone is not None and hostname.is_subdomain_of(home_zone.apex):
            home_zone.add(hostname, RRType.A, address)
        return server

    def _attach_zone(self, zone: Zone, nameservers: Sequence[NameLike]) -> None:
        """Make every named server authoritative for ``zone``."""
        for hostname in nameservers:
            server = self._servers.get(DomainName(hostname))
            if server is not None:
                server.add_zone(zone)

    def _glue_map(self, zone_apex: DomainName,
                  nameservers: Sequence[DomainName]) -> Dict[str, List[str]]:
        """Glue addresses for the nameservers that sit inside ``zone_apex``."""
        if not self.config.glue_enabled:
            return {}
        glue: Dict[str, List[str]] = {}
        for hostname in nameservers:
            if not hostname.is_subdomain_of(zone_apex):
                continue
            server = self._servers.get(hostname)
            if server is not None and server.addresses:
                glue[str(hostname)] = list(server.addresses)
        return glue

    def _delegate(self, parent_apex: NameLike, child_apex: NameLike,
                  nameservers: Sequence[NameLike],
                  always_glue: bool = False) -> None:
        """Add a delegation (and glue) from parent to child."""
        parent = self._get_zone(parent_apex)
        child_apex = DomainName(child_apex)
        nameservers = [DomainName(ns) for ns in nameservers]
        if always_glue and self.config.glue_enabled:
            glue = {}
            for hostname in nameservers:
                server = self._servers.get(hostname)
                if server is not None and server.addresses:
                    glue[str(hostname)] = list(server.addresses)
        else:
            glue = self._glue_map(child_apex, nameservers)
        parent.delegate(child_apex, nameservers, glue=glue)

    def _publish_zone(self, org: Organization, apex: NameLike,
                      nameservers: Sequence[NameLike],
                      parent_apex: Optional[NameLike] = None) -> Zone:
        """Create a zone, set its apex NS, attach servers, and delegate it."""
        apex = DomainName(apex)
        zone = self._get_zone(apex)
        nameservers = [DomainName(ns) for ns in nameservers]
        zone.set_apex_nameservers(nameservers)
        self._attach_zone(zone, nameservers)
        org.add_hosted_zone(apex)
        if parent_apex is None:
            parent_apex = apex.parent()
        self._delegate(parent_apex, apex, nameservers)
        return zone

    def _add_web_host(self, zone: Zone, label: str, org: Organization,
                      category: str, popularity: float,
                      source: str = "dmoz") -> DomainName:
        """Add an A record for a web host and list it in the directory."""
        hostname = zone.apex.child(label) if label else zone.apex
        address = self._ip.allocate(pool=f"web-{org.name}", owner=str(hostname))
        zone.add(hostname, RRType.A, address)
        self._directory.add(DirectoryEntry(
            name=hostname, tld=hostname.tld or "", category=category,
            popularity=popularity, source=source))
        return hostname

    def _popularity_draw(self, boost: float = 1.0) -> float:
        """Heavy-tailed popularity score used for the Alexa cohort.

        The rank component is compressed (exponent < 1) so that the
        structural ``boost`` — which encodes *why* a site is popular
        (multi-provider enterprise, major university, well-known foreign
        site) — dominates cohort membership rather than pure noise.
        """
        rank = self._popularity.sample(self._rng)
        return boost * (1000.0 / rank) ** 0.45

    # ------------------------------------------------------------------- stages

    def _build_root(self) -> None:
        """The root zone and the 13 root servers (excluded from TCBs)."""
        root_org = Organization(name="root-operators", kind=OperatorKind.ROOT,
                                domain=DomainName("root-servers.net"),
                                region="us", hygiene=1.0)
        self._orgs.add(root_org)
        root_zone = self._get_zone(ROOT_NAME)
        rs_zone = self._get_zone("root-servers.net")
        hostnames = []
        for letter in _LETTERS:
            hostname = DomainName(f"{letter}.root-servers.net")
            self._create_server(hostname, root_org, home_zone=rs_zone)
            hostnames.append(hostname)
        root_zone.set_apex_nameservers(hostnames)
        rs_zone.set_apex_nameservers(hostnames)
        self._attach_zone(root_zone, hostnames)
        self._attach_zone(rs_zone, hostnames)
        root_org.add_hosted_zone(ROOT_NAME)
        root_org.add_hosted_zone(rs_zone.apex)
        for hostname in hostnames:
            server = self._servers[hostname]
            self._root_hints[hostname] = list(server.addresses)

    def _build_com_net_registry(self) -> None:
        """com/net and the gtld-servers.net infrastructure that serves them."""
        org = Organization(name="gtld-registry", kind=OperatorKind.GTLD_REGISTRY,
                           domain=DomainName("gtld-servers.net"), region="us",
                           hygiene=0.98)
        self._orgs.add(org)
        infra_zone = self._get_zone("gtld-servers.net")
        hostnames = []
        for index in range(self.config.gtld_server_count):
            letter = _LETTERS[index % len(_LETTERS)]
            suffix = "" if index < len(_LETTERS) else str(index // len(_LETTERS))
            hostname = DomainName(f"{letter}{suffix}.gtld-servers.net")
            self._create_server(hostname, org, home_zone=infra_zone)
            hostnames.append(hostname)
        org.add_hosted_zone(infra_zone.apex)

        # gtld-servers.net itself is served by a second tier of registry
        # servers under nstld.com (as in the paper's Figure 1), which adds
        # one level of registry depth to every com/net closure.
        nstld_zone = self._get_zone("nstld.com")
        nstld_hostnames = []
        for index in range(self.config.nstld_server_count):
            letter = _LETTERS[index % len(_LETTERS)]
            hostname = DomainName(f"{letter}2.nstld.com")
            self._create_server(hostname, org, home_zone=nstld_zone)
            nstld_hostnames.append(hostname)
        nstld_zone.set_apex_nameservers(nstld_hostnames)
        self._attach_zone(nstld_zone, nstld_hostnames)
        org.add_hosted_zone(nstld_zone.apex)

        infra_zone.set_apex_nameservers(nstld_hostnames)
        self._attach_zone(infra_zone, nstld_hostnames)

        for label in ("com", "net"):
            if label not in self._gtld_profiles:
                continue
            tld_zone = self._get_zone(label)
            tld_zone.set_apex_nameservers(hostnames)
            self._attach_zone(tld_zone, hostnames)
            org.add_hosted_zone(tld_zone.apex)
            self._delegate(ROOT_NAME, label, hostnames, always_glue=True)
        if "net" in self._gtld_profiles:
            self._delegate("net", "gtld-servers.net", nstld_hostnames,
                           always_glue=True)
        if "com" in self._gtld_profiles:
            self._delegate("com", "nstld.com", nstld_hostnames,
                           always_glue=True)

    def _build_other_gtlds(self) -> None:
        """Registries for the remaining gTLDs (org, edu, info, aero, ...)."""
        for label, profile in self._gtld_profiles.items():
            if label in ("com", "net"):
                continue
            org = Organization(name=f"nic-{label}",
                               kind=OperatorKind.GTLD_REGISTRY,
                               domain=DomainName(f"{label}nic.net"),
                               region=profile.region, hygiene=profile.hygiene)
            self._orgs.add(org)
            infra_zone = self._get_zone(org.domain)
            hostnames = []
            for index in range(profile.registry_ns_count):
                hostname = org.domain.child(f"ns{index + 1}")
                self._create_server(hostname, org, home_zone=infra_zone)
                hostnames.append(hostname)
            infra_zone.set_apex_nameservers(hostnames)
            self._attach_zone(infra_zone, hostnames)
            org.add_hosted_zone(infra_zone.apex)
            if "net" in self._gtld_profiles:
                self._delegate("net", org.domain, hostnames)

            tld_zone = self._get_zone(label)
            tld_zone.set_apex_nameservers(hostnames)
            self._attach_zone(tld_zone, hostnames)
            org.add_hosted_zone(tld_zone.apex)
            self._delegate(ROOT_NAME, label, hostnames, always_glue=True)

    def _build_cctlds(self) -> None:
        """ccTLD registries, each initially self-contained under nic.<cc>."""
        for label, profile in self._cctld_profiles.items():
            org = Organization(name=f"nic-{label}",
                               kind=OperatorKind.CCTLD_REGISTRY,
                               domain=DomainName(f"nic.{label}"),
                               region=profile.region, hygiene=profile.hygiene)
            self._orgs.add(org)
            infra_zone = self._get_zone(org.domain)
            hostnames = []
            for index in range(profile.registry_ns_count):
                hostname = org.domain.child(f"ns{index + 1}")
                self._create_server(hostname, org, home_zone=infra_zone)
                hostnames.append(hostname)
            infra_zone.set_apex_nameservers(hostnames)
            self._attach_zone(infra_zone, hostnames)
            org.add_hosted_zone(infra_zone.apex)

            tld_zone = self._get_zone(label)
            tld_zone.set_apex_nameservers(hostnames)
            self._attach_zone(tld_zone, hostnames)
            org.add_hosted_zone(tld_zone.apex)
            self._delegate(ROOT_NAME, label, hostnames, always_glue=True)
            self._delegate(label, org.domain, hostnames)

    def _build_hosting_providers(self) -> None:
        """Commercial hosting providers under .com (and a few under .net)."""
        for index in range(self.config.hosting_provider_count):
            tld = "com" if index % 5 else "net"
            if tld not in self._gtld_profiles:
                tld = next(iter(self._gtld_profiles))
            domain = DomainName(f"webhost{index + 1}.{tld}")
            org = Organization(name=f"webhost{index + 1}",
                               kind=OperatorKind.HOSTING_PROVIDER,
                               domain=domain, region="us" if index % 3 else "eu",
                               hygiene=0.35 + 0.6 * self._rng.random())
            self._orgs.add(org)
            zone = self._get_zone(domain)
            ns_count = truncated_geometric(self._rng, 0.6, 2, 4)
            hostnames = []
            for ns_index in range(ns_count):
                hostname = domain.child(f"ns{ns_index + 1}")
                self._create_server(hostname, org, home_zone=zone)
                hostnames.append(hostname)
            # A minority of providers outsource part of their own DNS to an
            # earlier provider, creating provider-to-provider chains.
            if self._providers and self._rng.random() < 0.10:
                partner = self._rng.choice(self._providers)
                if partner.nameservers:
                    hostnames.append(partner.nameservers[0])
            self._publish_zone(org, domain, hostnames, parent_apex=tld)
            self._add_web_host(zone, "www", org, category="hosting",
                               popularity=self._popularity_draw(1.2))
            self._providers.append(org)

    def _build_isps(self) -> None:
        """Regional ISPs under ccTLDs, serving local customers."""
        cctld_labels = list(self._cctld_profiles)
        if not cctld_labels:
            return
        weights = [self._cctld_profiles[label].sld_share
                   for label in cctld_labels]
        for index in range(self.config.isp_count):
            label = self._rng.choices(cctld_labels, weights=weights, k=1)[0]
            profile = self._cctld_profiles[label]
            domain = DomainName(f"isp{index + 1}.{label}")
            org = Organization(name=f"isp{index + 1}-{label}",
                               kind=OperatorKind.ISP, domain=domain,
                               region=profile.region,
                               hygiene=0.55 + 0.4 * profile.hygiene)
            self._orgs.add(org)
            zone = self._get_zone(domain)
            hostnames = []
            for ns_index in range(truncated_geometric(self._rng, 0.65, 2, 3)):
                hostname = domain.child(f"ns{ns_index + 1}")
                self._create_server(hostname, org, home_zone=zone)
                hostnames.append(hostname)
            self._publish_zone(org, domain, hostnames, parent_apex=label)
            self._isps.append(org)

    # -- universities -----------------------------------------------------------

    def _build_universities(self) -> None:
        """Universities with mutual-secondary webs and department zones."""
        if not self.config.university_count:
            return
        # Universities are placed under self-contained registries (US .edu or
        # ccTLDs that do not themselves lean on off-site secondaries).  This
        # keeps each secondary-exchange web's closure bounded by the web
        # itself: if universities also sat under heavily-dependent ccTLDs,
        # every web would transitively absorb every other web through the
        # TLD zones and the whole survey would collapse into one giant
        # component, which the 2004 measurements do not show.
        foreign_cctlds = [label for label, profile in
                          self._cctld_profiles.items()
                          if profile.offsite_dependency_level <= 2]
        foreign_weights = [0.3 + 0.7 * self._cctld_profiles[label].hygiene
                          for label in foreign_cctlds]
        for index in range(self.config.university_count):
            is_us = self._rng.random() < self.config.us_university_fraction \
                and "edu" in self._gtld_profiles
            if is_us:
                tld = "edu"
                profile = self._gtld_profiles["edu"]
                domain = DomainName(f"univ{index + 1}.edu")
            else:
                tld = self._rng.choices(foreign_cctlds,
                                        weights=foreign_weights, k=1)[0] \
                    if foreign_cctlds else "com"
                profile = self._tld_profile(tld)
                domain = DomainName(f"univ{index + 1}.{tld}")
            org = Organization(name=f"univ{index + 1}",
                               kind=OperatorKind.UNIVERSITY, domain=domain,
                               region=profile.region if profile else "us",
                               hygiene=0.45 + 0.45 * self._rng.random())
            self._orgs.add(org)
            zone = self._get_zone(domain)
            for ns_index in range(truncated_geometric(self._rng, 0.55, 2, 4)):
                hostname = domain.child(f"dns{ns_index + 1}")
                self._create_server(hostname, org, home_zone=zone)
            self._universities.append(org)

        self._form_university_groups()
        self._wire_university_zones()

    def _form_university_groups(self) -> None:
        """Partition universities into secondary-exchange groups."""
        shuffled = list(self._universities)
        self._rng.shuffle(shuffled)
        groups: List[List[Organization]] = []
        index = 0
        while index < len(shuffled):
            size = self._rng.choices(self.config.university_group_sizes,
                                     weights=self.config.university_group_weights,
                                     k=1)[0]
            group = shuffled[index:index + size]
            if group:
                groups.append(group)
            index += size
        self._university_groups = groups

    def _wire_university_zones(self) -> None:
        """Publish each university zone with in-house and partner NS."""
        for group in self._university_groups:
            for position, org in enumerate(group):
                partners: List[Organization] = []
                if len(group) > 1:
                    partners.append(group[(position + 1) % len(group)])
                    if len(group) > 2 and self._rng.random() < 0.5:
                        extra = self._rng.choice(group)
                        if extra is not org and extra not in partners:
                            partners.append(extra)
                # Rare cross-group link (a particularly well-connected admin).
                if self._university_groups and self._rng.random() < 0.015:
                    other_group = self._rng.choice(self._university_groups)
                    candidate = self._rng.choice(other_group)
                    if candidate is not org and candidate not in partners:
                        partners.append(candidate)
                nameservers = list(org.nameservers)
                for partner in partners:
                    if not partner.nameservers:
                        continue
                    if self._rng.random() < self.config.offsite_secondary_prob:
                        nameservers.append(partner.nameservers[0])
                tld = org.domain.tld or "edu"
                zone = self._publish_zone(org, org.domain, nameservers,
                                          parent_apex=tld)
                self._add_web_host(zone, "www", org, category="university",
                                   popularity=self._popularity_draw(2.2))
                if self._rng.random() < self.config.department_subzone_prob:
                    self._build_department_zone(org, partners)

    def _build_department_zone(self, org: Organization,
                               partners: List[Organization]) -> None:
        """A cs.<university> sub-zone, as in the paper's Figure 1."""
        department = org.domain.child("cs")
        zone = self._get_zone(department)
        dept_ns = department.child("dns")
        self._create_server(dept_ns, org, home_zone=zone)
        nameservers: List[DomainName] = [dept_ns]
        if org.nameservers:
            nameservers.append(org.nameservers[0])
        if partners and partners[0].nameservers and \
                self._rng.random() < self.config.offsite_secondary_prob:
            nameservers.append(partners[0].nameservers[0])
        zone.set_apex_nameservers(nameservers)
        self._attach_zone(zone, nameservers)
        org.add_hosted_zone(department)
        self._delegate(org.domain, department, nameservers)
        self._add_web_host(zone, "www", org, category="university",
                           popularity=self._popularity_draw(1.2))

    # -- TLD off-site augmentation -------------------------------------------------

    def _augment_tlds_with_offsite_servers(self) -> None:
        """Add off-site NS (universities, ISPs) to TLD zones that use them.

        This is the mechanism behind the paper's Figure 4: a ccTLD that
        recruits secondaries from universities around the globe drags every
        name under it into those universities' dependency webs.
        """
        profiles = list(self._gtld_profiles.items()) + \
            list(self._cctld_profiles.items())
        for label, profile in profiles:
            if profile.offsite_dependency_level <= 0:
                continue
            partners = self._pick_offsite_partners(
                profile, profile.offsite_dependency_level)
            if not partners:
                continue
            tld_zone = self._get_zone(label)
            extra_ns = []
            for partner in partners:
                if not partner.nameservers:
                    continue
                hostname = partner.nameservers[0]
                extra_ns.append(hostname)
            if not extra_ns:
                continue
            tld_zone.set_apex_nameservers(extra_ns)
            self._attach_zone(tld_zone, extra_ns)
            root_zone = self._get_zone(ROOT_NAME)
            delegation = root_zone.get_delegation(label)
            if delegation is not None:
                for hostname in extra_ns:
                    delegation.add_nameserver(hostname)

    def _pick_offsite_partners(self, profile: TLDProfile,
                               count: int) -> List[Organization]:
        """Choose the external organisations backing a TLD's off-site NS.

        Low dependency levels draw from ISPs and hosting providers (compact
        closures); higher levels recruit universities, preferring exchange
        groups whose size scales with the level so that the worst TLDs
        inherit the largest dependency webs.
        """
        partners: List[Organization] = []
        if count <= 2:
            # Low dependency levels stay compact: hosting providers live
            # under com/net, whose registry closure is small and safe.
            candidates = list(self._providers)
            self._rng.shuffle(candidates)
            return candidates[:count]

        def clean_tld(org: Organization) -> bool:
            # Prefer secondaries whose own TLD is self-contained (US .edu,
            # well-run ccTLDs); otherwise the dependency webs of different
            # TLDs merge into one giant component, which the real topology
            # does not exhibit to that degree.
            tld_profile = self._tld_profile(org.tld)
            return tld_profile is None or \
                tld_profile.offsite_dependency_level <= 2 or org.tld == "edu"

        groups = sorted(self._university_groups, key=len)
        if groups:
            # The very worst TLDs (ua, by, ...) recruit from the largest
            # exchange webs; mid-level TLDs land in mid-sized groups.
            if count >= 10:
                chosen_groups = groups[-3:]
            else:
                target_size = count * 3
                chosen_groups = [min(groups,
                                     key=lambda g: abs(len(g) - target_size))]
            members = [org for group in chosen_groups for org in group]
            preferred = [org for org in members if clean_tld(org)]
            fallback = [org for org in members if not clean_tld(org)]
            self._rng.shuffle(preferred)
            self._rng.shuffle(fallback)
            partners.extend((preferred + fallback)[:max(1, count - 2)])
        remaining = count - len(partners)
        if remaining > 0 and self._providers:
            extras = list(self._providers)
            self._rng.shuffle(extras)
            partners.extend(extras[:remaining])
        return partners

    # -- generic second-level domains ------------------------------------------------

    def _build_generic_slds(self) -> None:
        """Enterprises, government, non-profits, and provider-hosted SLDs."""
        tld_labels = list(self._gtld_profiles) + list(self._cctld_profiles)
        # .edu is populated by the university builder, not the generic pool.
        tld_labels = [label for label in tld_labels if label != "edu"]
        weights = [self._tld_profile(label).sld_share for label in tld_labels]
        names_per_sld = max(1.0, self.config.directory_name_count /
                            max(1, self.config.sld_count))

        for index in range(self.config.sld_count):
            roll = self._rng.random()
            if roll < self.config.government_fraction and \
                    "gov" in self._gtld_profiles:
                self._build_government_sld(index)
            elif roll < self.config.government_fraction + \
                    self.config.nonprofit_fraction and \
                    "org" in self._gtld_profiles:
                self._build_nonprofit_sld(index)
            else:
                tld = self._rng.choices(tld_labels, weights=weights, k=1)[0]
                is_enterprise = self._rng.random() < self.config.enterprise_fraction
                if is_enterprise:
                    self._build_enterprise_sld(index, tld, names_per_sld)
                else:
                    self._build_hosted_sld(index, tld, names_per_sld)

    def _choose_provider(self, region: Optional[str] = None) -> Organization:
        """Pick a hosting provider, Zipf-biased toward the big ones.

        The exponent is kept moderate so the market has clear leaders (whose
        servers become the high-value targets of Figure 8) without a single
        provider's hygiene dominating every survey-wide statistic.
        """
        if self._provider_sampler is None or \
                self._provider_sampler.n != len(self._providers):
            self._provider_sampler = ZipfSampler(len(self._providers),
                                                 exponent=0.6)
        return self._providers[self._provider_sampler.sample_index(self._rng)]

    def _choose_isp(self, tld: str) -> Optional[Organization]:
        """Pick an ISP in the same ccTLD, if one exists."""
        local = [isp for isp in self._isps if isp.domain.tld == tld]
        if not local:
            return None
        return self._rng.choice(local)

    def _build_hosted_sld(self, index: int, tld: str,
                          names_per_sld: float) -> None:
        """A small organisation: DNS at a provider/ISP, or run in-house.

        Roughly :attr:`GeneratorConfig.self_hosted_small_fraction` of these
        sites run their own two nameservers (the dominant 2004 pattern for
        small sites), optionally with one provider secondary; the rest are
        fully hosted.  Self-hosted sites are the population whose entire
        bottleneck is a single, often sloppy, organisation.
        """
        domain = DomainName(f"site{index + 1}.{tld}")
        profile = self._tld_profile(tld)
        host_org: Optional[Organization] = None
        if profile and profile.kind == "cctld" and self._rng.random() < 0.6:
            host_org = self._choose_isp(tld)
        if host_org is None:
            host_org = self._choose_provider()
        owner = Organization(name=f"site{index + 1}",
                             kind=OperatorKind.SMALL_BUSINESS, domain=domain,
                             region=profile.region if profile else "us",
                             hygiene=0.45 + 0.4 * self._rng.random())
        self._orgs.add(owner)

        self_hosted = self._rng.random() < self.config.self_hosted_small_fraction
        if profile is not None and profile.hygiene <= 0.1:
            # The .ws-style communities run everything themselves.
            self_hosted = True
        if self_hosted:
            zone = self._get_zone(domain)
            nameservers = []
            for ns_index in range(2):
                hostname = domain.child(f"ns{ns_index + 1}")
                self._create_server(hostname, owner, home_zone=zone)
                nameservers.append(hostname)
            if self._rng.random() < 0.4 and host_org.nameservers:
                nameservers.append(host_org.nameservers[0])
            zone = self._publish_zone(owner, domain, nameservers,
                                      parent_apex=tld)
        else:
            nameservers = list(host_org.nameservers[:2]) or host_org.nameservers
            zone = self._publish_zone(host_org, domain, nameservers,
                                      parent_apex=tld)

        boost = 1.0
        if profile and profile.kind == "cctld" and self._rng.random() < 0.15:
            # A minority of foreign sites are genuinely popular worldwide,
            # which is how large-TCB names enter the Alexa-style cohort.
            boost = 5.0
        popularity = self._popularity_draw(boost)
        self._add_web_host(zone, "www", owner, category="small-business",
                           popularity=popularity)
        self._maybe_add_extra_hosts(zone, owner, "small-business",
                                    names_per_sld, popularity)

    def _build_enterprise_sld(self, index: int, tld: str,
                              names_per_sld: float) -> None:
        """A self-hosting enterprise, possibly spread over two providers."""
        domain = DomainName(f"corp{index + 1}.{tld}")
        profile = self._tld_profile(tld)
        org = Organization(name=f"corp{index + 1}",
                           kind=OperatorKind.ENTERPRISE, domain=domain,
                           region=profile.region if profile else "us",
                           hygiene=0.6 + 0.35 * self._rng.random())
        # Larger enterprises keep their BIND fleets more current.
        org.hygiene = min(1.0, org.hygiene + 0.1)
        self._orgs.add(org)
        zone = self._get_zone(domain)
        nameservers: List[DomainName] = []
        for ns_index in range(truncated_geometric(self._rng, 0.5, 2, 4)):
            hostname = domain.child(f"ns{ns_index + 1}")
            self._create_server(hostname, org, home_zone=zone)
            nameservers.append(hostname)
        provider = self._choose_provider()
        nameservers.append(provider.nameservers[0])
        multi_provider = self._rng.random() < self.config.multi_provider_prob
        if multi_provider:
            # Popular enterprises spread their delegation across additional
            # independent providers for resilience — the behaviour the paper
            # identifies as the reason the Alexa cohort has *larger* TCBs.
            extra_providers = 0
            for _ in range(2):
                second = self._choose_provider()
                if second is not provider and second.nameservers and \
                        second.nameservers[0] not in nameservers:
                    nameservers.append(second.nameservers[0])
                    extra_providers += 1
        self._publish_zone(org, domain, nameservers, parent_apex=tld)
        boost = 3.5 if multi_provider else 1.6
        popularity = self._popularity_draw(boost)
        self._add_web_host(zone, "www", org, category="enterprise",
                           popularity=popularity)
        self._maybe_add_extra_hosts(zone, org, "enterprise",
                                    names_per_sld + 1, popularity)

    def _build_government_sld(self, index: int) -> None:
        """A .gov agency; many outsource DNS to commercial providers."""
        domain = DomainName(f"agency{index + 1}.gov")
        org = Organization(name=f"agency{index + 1}",
                           kind=OperatorKind.GOVERNMENT, domain=domain,
                           region="us", hygiene=0.75)
        self._orgs.add(org)
        zone = self._get_zone(domain)
        nameservers: List[DomainName] = []
        if self._rng.random() < 0.5:
            for ns_index in range(2):
                hostname = domain.child(f"ns{ns_index + 1}")
                self._create_server(hostname, org, home_zone=zone)
                nameservers.append(hostname)
        provider = self._choose_provider()
        nameservers.extend(provider.nameservers[:2])
        self._publish_zone(org, domain, nameservers, parent_apex="gov")
        self._add_web_host(zone, "www", org, category="government",
                           popularity=self._popularity_draw(1.8))

    def _build_nonprofit_sld(self, index: int) -> None:
        """A .org non-profit; some are served by friendly universities."""
        domain = DomainName(f"nonprofit{index + 1}.org")
        org = Organization(name=f"nonprofit{index + 1}",
                           kind=OperatorKind.NONPROFIT, domain=domain,
                           region="us", hygiene=0.6)
        self._orgs.add(org)
        zone = self._get_zone(domain)
        nameservers: List[DomainName] = []
        if self._universities and self._rng.random() < 0.4:
            host = self._rng.choice(self._universities)
            nameservers.extend(host.nameservers[:2])
        else:
            provider = self._choose_provider()
            nameservers.extend(provider.nameservers[:2])
        if self._rng.random() < 0.3:
            hostname = domain.child("ns1")
            self._create_server(hostname, org, home_zone=zone)
            nameservers.append(hostname)
        self._publish_zone(org, domain, nameservers, parent_apex="org")
        self._add_web_host(zone, "www", org, category="nonprofit",
                           popularity=self._popularity_draw(1.0))

    def _maybe_add_extra_hosts(self, zone: Zone, org: Organization,
                               category: str, names_per_sld: float,
                               base_popularity: float) -> None:
        """Popular organisations publish more than one externally-visible host."""
        extra_labels = ("mail", "shop", "news", "login", "static", "images")
        expected_extra = max(0.0, names_per_sld - 1.0)
        probability = min(0.9, expected_extra / len(extra_labels))
        for label in extra_labels:
            if self._rng.random() < probability:
                self._add_web_host(zone, label, org, category=category,
                                   popularity=base_popularity *
                                   self._rng.uniform(0.3, 0.8))
