"""REPRO-SNAP v1: the columnar, memory-mapped snapshot & timeline store.

JSON snapshots re-hydrate every :class:`~repro.dns.name.DomainName` and
frozenset before the first query can run; at bench scale that parse
dominates a delta re-survey by an order of magnitude, and a longitudinal
run pays it per epoch.  This module is the binary codec that removes the
ceiling: snapshots ride the integer-interned core
(:mod:`repro.core.graphcore`) directly, so opening one is O(1) — a header
read plus an ``mmap`` — and every column is a typed array addressed
zero-copy through :class:`memoryview` casts.

On-disk layout (all integers little-endian)::

    magic "RSNP1\\r\\n\\x00"                       8 bytes
    header  <HBBIQII                               version, file kind,
                                                   flags, payload crc32,
                                                   TOC offset, TOC length,
                                                   header crc32
    sections ...                                   raw bytes, 8-aligned
    TOC     json {"sections": {name: [off, len]}}

Three file kinds share the container:

* **results** (:func:`save_results_snapshot` / :func:`open_results`) — a
  full :class:`~repro.core.survey.SurveyResults`: one string pool, a
  content-addressed *set store* (CSR offsets + members; equal server sets
  are stored once and shared), per-record typed columns (ints as ``q``,
  floats as ``d``, flags as ``B``, strings/sets as pool/store ids), typed
  pass-``extras`` columns with presence bytes, and the aggregate maps;
* **delta** (:class:`EpochStore`) — only the rows whose records changed
  since the previous epoch (keyed off the delta engine's dirty set), plus
  aggregate-map patches, with a file-local pool/set-store;
* **universe** (:func:`save_universe` / :func:`load_universe`) — a
  :class:`~repro.core.graphcore.DependencyUniverse`: the
  :class:`~repro.core.graphcore.NameTable` string pool plus the CSR
  adjacency arrays, for warm-starting a serving daemon.

:func:`open_results` returns a :class:`LazySurveyResults` — a drop-in
:class:`~repro.core.survey.SurveyResults` whose record list materialises
:class:`~repro.core.survey.NameRecord` objects on demand (and counts how
many it did, so tests can assert laziness).  Frozensets are
content-addressed exactly as in the closure index: one set id materialises
one shared frozenset, at the API boundary only.

Byte-identity contract: ``results_to_dict(open_results(save(results)))``
equals ``results_to_dict(results)`` — the binary round trip is
indistinguishable from the JSON one (floats are stored at the same 3-dp
rounding the JSON codec applies), across all four execution backends.
"""

from __future__ import annotations

import dataclasses
import io
import json
import mmap
import os
import pathlib
import re
import struct
import sys
import zlib
from array import array
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.dns.name import DomainName, NameLike
from repro.core.atomic import AtomicFile, fsync_directory, temp_debris
from repro.core.graphcore import DependencyUniverse, NameTable
from repro.core.survey import NameRecord, SurveyResults
from repro.vulns.bindversion import BindVersion
from repro.vulns.fingerprint import FingerprintResult

PathLike = Union[str, pathlib.Path]

#: File magic: sniffable, never valid JSON or a zlib stream header.
MAGIC = b"RSNP1\r\n\x00"

#: Container format version.
SNAPSTORE_VERSION = 1

#: File kinds sharing the container.
KIND_RESULTS = 1
KIND_DELTA = 2
KIND_UNIVERSE = 3
KIND_SHARD = 4
KIND_ORDER = 5

_KIND_NAMES = {KIND_RESULTS: "results snapshot", KIND_DELTA: "epoch delta",
               KIND_UNIVERSE: "universe", KIND_SHARD: "shard results",
               KIND_ORDER: "shard work order"}

#: Header struct after the magic: version, kind, flags, payload crc32,
#: TOC offset, TOC length, header crc32.
_HEADER = struct.Struct("<HBBIQII")
_HEADER_SIZE = len(MAGIC) + _HEADER.size

_FLAG_LITTLE_ENDIAN = 1

#: Built-in integer record columns, in write order.
_INT_COLUMNS = ("tcb_size", "in_bailiwick", "vulnerable_in_tcb",
                "compromisable_in_tcb", "mincut_size", "mincut_safe",
                "mincut_vulnerable")

_FLAG_POPULAR = 1
_FLAG_RESOLVED = 2

#: Extras column kinds (the ``json`` fallback preserves anything a JSON
#: snapshot could carry, mixed numeric types included).
_EXTRA_KINDS = ("bool", "int", "float", "str", "json")


class SnapshotFormatError(ValueError):
    """A snapshot file is not what it claims to be (bad magic, truncated,
    checksum mismatch, unsupported version, wrong kind)."""


# -- low-level container ----------------------------------------------------------------


class _SectionWriter:
    """Streams named byte sections into the REPRO-SNAP container.

    ``path=None`` targets an in-memory buffer instead of a file — the wire
    protocol frames shard payloads with exactly this container, so workers
    and the coordinator reuse the column codec byte-for-byte without
    touching disk (:meth:`close_to_bytes`).

    File targets commit through :class:`repro.core.atomic.AtomicFile`:
    the container streams into a same-directory temp file and only an
    fsynced ``os.replace`` publishes it, so no reader (or crash) can ever
    observe a half-written snapshot under the final name.
    """

    def __init__(self, path: Optional[PathLike], kind: int):
        if path is None:
            self.path: Optional[pathlib.Path] = None
            self._atomic: Optional[AtomicFile] = None
            self._handle = io.BytesIO()
        else:
            self.path = pathlib.Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._atomic = AtomicFile(self.path)
            self._handle = self._atomic.handle
        self._kind = kind
        self._handle.write(b"\x00" * _HEADER_SIZE)
        self._sections: Dict[str, Tuple[int, int]] = {}
        self._offset = _HEADER_SIZE
        self._crc = 0

    def add(self, name: str, data) -> None:
        """Append one section (bytes, bytearray, array, or memoryview)."""
        if name in self._sections:
            raise ValueError(f"duplicate section {name!r}")
        payload = bytes(data) if not isinstance(data, (bytes, bytearray)) \
            else data
        # 8-align every section so memoryview casts to q/d never fault.
        padding = (-self._offset) % 8
        if padding:
            pad = b"\x00" * padding
            self._handle.write(pad)
            self._crc = zlib.crc32(pad, self._crc)
            self._offset += padding
        self._sections[name] = (self._offset, len(payload))
        self._handle.write(payload)
        self._crc = zlib.crc32(payload, self._crc)
        self._offset += len(payload)

    def add_json(self, name: str, payload) -> None:
        """Append a JSON section (sorted keys, compact)."""
        self.add(name, json.dumps(payload, sort_keys=True,
                                  separators=(",", ":")).encode("utf-8"))

    def _finalise(self) -> None:
        """Write the TOC and patch the header in place."""
        toc = json.dumps(
            {"sections": {name: list(span)
                          for name, span in sorted(self._sections.items())}},
            sort_keys=True, separators=(",", ":")).encode("utf-8")
        toc_offset = self._offset
        self._handle.write(toc)
        self._crc = zlib.crc32(toc, self._crc)
        flags = _FLAG_LITTLE_ENDIAN if sys.byteorder == "little" else 0
        header = _HEADER.pack(SNAPSTORE_VERSION, self._kind, flags,
                              self._crc, toc_offset, len(toc), 0)
        header_crc = zlib.crc32(MAGIC + header[:-4])
        header = _HEADER.pack(SNAPSTORE_VERSION, self._kind, flags,
                              self._crc, toc_offset, len(toc), header_crc)
        self._handle.seek(0)
        self._handle.write(MAGIC + header)

    def close(self) -> pathlib.Path:
        """Finalise and atomically commit the container; returns the path."""
        if self.path is None:
            raise ValueError("in-memory container: use close_to_bytes()")
        self._finalise()
        self._atomic.commit()
        return self.path

    def abort(self) -> None:
        """Discard an unfinished container (the destination is untouched)."""
        if self._atomic is not None:
            self._atomic.abort()
        else:
            self._handle.close()

    def close_to_bytes(self) -> bytes:
        """Finalise an in-memory container and return its bytes."""
        self._finalise()
        data = self._handle.getvalue()
        self._handle.close()
        return data


class _SectionReader:
    """Memory-maps a REPRO-SNAP container and hands out section views.

    Opening validates the magic, version, endianness, and the header
    checksum (which covers the TOC location), and bounds-checks every
    section extent against the file size — so truncation fails loudly at
    open — but does *not* stream the payload: open cost is independent of
    snapshot size.  :meth:`verify` walks the payload crc32 on demand.

    ``source`` may also be ``bytes``/``bytearray``/``memoryview`` — an
    in-memory container such as a wire-frame payload — in which case
    ``label`` names it in error messages in place of a path.
    """

    def __init__(self, source: Union[PathLike, bytes, bytearray, memoryview],
                 expected_kind: Optional[int] = None,
                 label: Optional[str] = None):
        if isinstance(source, (bytes, bytearray, memoryview)):
            self.path = label or "<wire payload>"
            self._handle = None
            self._mmap = None
            data = bytes(source)
            size = len(data)
            self._view = memoryview(data)
            head = data[:_HEADER_SIZE]
        else:
            self.path = pathlib.Path(source)
            try:
                self._handle = self.path.open("rb")
            except OSError as error:
                raise SnapshotFormatError(
                    f"cannot open snapshot {self.path}: {error}") from error
            head = self._handle.read(_HEADER_SIZE)
        if len(head) < _HEADER_SIZE or not head.startswith(MAGIC):
            self._fail(f"not a REPRO-SNAP snapshot (expected magic "
                       f"{MAGIC!r}, got {bytes(head[:len(MAGIC)])!r})")
        (version, kind, flags, payload_crc, toc_offset, toc_length,
         header_crc) = _HEADER.unpack(head[len(MAGIC):])
        if zlib.crc32(head[:-4]) != header_crc:
            self._fail("header checksum mismatch (corrupt or truncated "
                       "header)")
        if version != SNAPSTORE_VERSION:
            self._fail(f"unsupported REPRO-SNAP version {version} "
                       f"(this build reads version {SNAPSTORE_VERSION})")
        little = bool(flags & _FLAG_LITTLE_ENDIAN)
        if little != (sys.byteorder == "little"):
            self._fail(f"snapshot byte order does not match this machine "
                       f"({sys.byteorder}-endian)")
        if expected_kind is not None and kind != expected_kind:
            self._fail(f"expected a {_KIND_NAMES[expected_kind]} file, "
                       f"got a {_KIND_NAMES.get(kind, f'kind-{kind}')} file")
        self.kind = kind
        self._payload_crc = payload_crc
        if self._handle is not None:
            size = self.path.stat().st_size
            if toc_offset + toc_length > size:
                self._fail(f"truncated snapshot (TOC at "
                           f"{toc_offset}+{toc_length} exceeds file size "
                           f"{size})")
            self._mmap = mmap.mmap(self._handle.fileno(), 0,
                                   access=mmap.ACCESS_READ)
            self._view = memoryview(self._mmap)
        elif toc_offset + toc_length > size:
            self._fail(f"truncated snapshot (TOC at "
                       f"{toc_offset}+{toc_length} exceeds payload size "
                       f"{size})")
        self._toc_end = toc_offset + toc_length
        try:
            toc = json.loads(
                bytes(self._view[toc_offset:self._toc_end]).decode("utf-8"))
            self._sections = {name: (int(span[0]), int(span[1]))
                              for name, span in toc["sections"].items()}
        except (ValueError, KeyError, TypeError) as error:
            raise SnapshotFormatError(
                f"{self.path}: corrupt section table: {error}") from error
        for name, (offset, length) in self._sections.items():
            if offset + length > size:
                raise SnapshotFormatError(
                    f"{self.path}: truncated snapshot (section {name!r} at "
                    f"{offset}+{length} exceeds file size {size})")

    def _fail(self, message: str) -> None:
        if self._handle is not None:
            self._handle.close()
        raise SnapshotFormatError(f"{self.path}: {message}")

    def has(self, name: str) -> bool:
        return name in self._sections

    def raw(self, name: str) -> memoryview:
        """The section's bytes as a zero-copy memoryview."""
        offset, length = self._sections[name]
        return self._view[offset:offset + length]

    def q(self, name: str) -> memoryview:
        """The section as a typed int64 view."""
        return self.raw(name).cast("q")

    def d(self, name: str) -> memoryview:
        """The section as a typed float64 view."""
        return self.raw(name).cast("d")

    def bytes_view(self, name: str) -> memoryview:
        return self.raw(name).cast("B")

    def json(self, name: str):
        return json.loads(bytes(self.raw(name)).decode("utf-8"))

    def verify(self) -> None:
        """Re-walk the payload crc32; raises on checksum mismatch."""
        crc = zlib.crc32(self._view[_HEADER_SIZE:self._toc_end])
        if crc != self._payload_crc:
            raise SnapshotFormatError(
                f"{self.path}: payload checksum mismatch (expected "
                f"{self._payload_crc:#010x}, got {crc:#010x})")


def verify_snapshot_file(path: PathLike) -> int:
    """Fully verify one REPRO-SNAP container; returns its kind.

    Opens the file (magic, version, header checksum, TOC bounds) and
    re-walks the payload crc32 — O(file size), the fsck path rather than
    the open path.  Raises :class:`SnapshotFormatError` with a precise
    message on any corruption.
    """
    reader = _SectionReader(pathlib.Path(path))
    reader.verify()
    return reader.kind


def sniff_kind(path: PathLike) -> Optional[int]:
    """The REPRO-SNAP file kind at ``path``, or ``None`` if not REPRO-SNAP."""
    path = pathlib.Path(path)
    with path.open("rb") as handle:
        head = handle.read(_HEADER_SIZE)
    if len(head) < _HEADER_SIZE or not head.startswith(MAGIC):
        return None
    return _HEADER.unpack(head[len(MAGIC):])[1]


# -- pools and set stores ---------------------------------------------------------------


class _PoolWriter:
    """Interns strings into a blob + offsets pool (dense first-seen ids).

    With ``base_index`` (text -> id in a base file's pool), strings the
    base already stores intern to *negative* ids — ``-(base_id + 1)`` —
    instead of re-entering the local blob.  Delta files use this to share
    the epoch-0 pool: churned records mostly re-mention names and hosts
    the base interned long ago.
    """

    def __init__(self, base_index: Optional[Dict[str, int]] = None) -> None:
        self._ids: Dict[str, int] = {}
        self._base = base_index or {}
        self._blob = bytearray()
        self._offsets = array("q", [0])
        self._local = 0

    def intern(self, text: str) -> int:
        found = self._ids.get(text)
        if found is None:
            base_id = self._base.get(text)
            if base_id is not None:
                found = -base_id - 1
            else:
                found = self._local
                self._local += 1
                self._blob.extend(text.encode("utf-8"))
                self._offsets.append(len(self._blob))
            self._ids[text] = found
        return found

    def intern_name(self, name: DomainName) -> int:
        return self.intern(str(name))

    def write(self, writer: _SectionWriter, prefix: str) -> None:
        writer.add(prefix + ".off", self._offsets)
        writer.add(prefix + ".blob", bytes(self._blob))


class _SetWriter:
    """Content-addresses sets of pool ids into a CSR (offsets + members).

    ``base_index`` maps membership keys (tuples of *this* pool's ids) to
    set ids in a base file's set store; matching sets encode as negative
    references the same way the pool does.  A churned record's TCB usually
    keeps its membership (verdicts change, topology doesn't), so delta
    files shed their heaviest section almost entirely.
    """

    def __init__(self, pool: _PoolWriter,
                 base_index: Optional[Dict[Tuple[int, ...], int]] = None
                 ) -> None:
        self._pool = pool
        self._ids: Dict[Tuple[int, ...], int] = {}
        self._base = base_index or {}
        self._offsets = array("q", [0])
        self._members = array("q")
        self._local = 0

    def intern(self, hosts) -> int:
        # Intern in canonical (string-sorted) order: iterating the set
        # directly would assign first-seen pool ids in hash order, making
        # the file's bytes vary with PYTHONHASHSEED across processes.
        key = tuple(sorted(self._pool.intern_name(host)
                           for host in sorted(hosts, key=str)))
        found = self._ids.get(key)
        if found is None:
            base_id = self._base.get(key)
            if base_id is not None:
                found = -base_id - 1
            else:
                found = self._local
                self._local += 1
                self._members.extend(key)
                self._offsets.append(len(self._members))
            self._ids[key] = found
        return found

    def write(self, writer: _SectionWriter, prefix: str) -> None:
        writer.add(prefix + ".off", self._offsets)
        writer.add(prefix + ".mem", self._members)


class _Pool:
    """Lazy reader-side string pool: decode + DomainName caches per id.

    Negative ids are references into ``base`` (the epoch-0 pool a delta
    file was written against) and delegate there — landing in the base's
    caches, which every overlay of the same store shares.
    """

    __slots__ = ("_offsets", "_blob", "_texts", "_names", "_base")

    def __init__(self, reader: _SectionReader, prefix: str,
                 base: Optional["_Pool"] = None):
        self._offsets = reader.q(prefix + ".off")
        self._blob = reader.raw(prefix + ".blob")
        self._texts: Dict[int, str] = {}
        self._names: Dict[int, DomainName] = {}
        self._base = base

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def text(self, index: int) -> str:
        if index < 0:
            return self._base.text(-index - 1)
        found = self._texts.get(index)
        if found is None:
            found = bytes(
                self._blob[self._offsets[index]:self._offsets[index + 1]]
            ).decode("utf-8")
            self._texts[index] = found
        return found

    def name(self, index: int) -> DomainName:
        if index < 0:
            return self._base.name(-index - 1)
        found = self._names.get(index)
        if found is None:
            found = DomainName._from_text(self.text(index))
            self._names[index] = found
        return found


class _SetStore:
    """Lazy reader-side set store: one shared frozenset per set id.

    Negative ids delegate to ``base`` exactly as :class:`_Pool` does, so
    an overlaid record whose TCB membership never changed hands back the
    very frozenset the base row would.
    """

    __slots__ = ("_offsets", "_members", "_pool", "_frozen", "_base")

    def __init__(self, reader: _SectionReader, prefix: str, pool: _Pool,
                 base: Optional["_SetStore"] = None):
        self._offsets = reader.q(prefix + ".off")
        self._members = reader.q(prefix + ".mem")
        self._pool = pool
        self._frozen: Dict[int, frozenset] = {}
        self._base = base

    def frozen(self, set_id: int) -> frozenset:
        if set_id < 0:
            return self._base.frozen(-set_id - 1)
        found = self._frozen.get(set_id)
        if found is None:
            name = self._pool.name
            found = frozenset(
                name(member) for member in
                self._members[self._offsets[set_id]:
                              self._offsets[set_id + 1]])
            self._frozen[set_id] = found
        return found


# -- record column writing --------------------------------------------------------------


def _extra_kind(values: List[object]) -> str:
    """The narrowest typed column that stores ``values`` exactly."""
    if all(isinstance(value, bool) for value in values):
        return "bool"
    if all(isinstance(value, int) and not isinstance(value, bool)
           and -(2 ** 63) <= value < 2 ** 63 for value in values):
        return "int"
    if all(isinstance(value, float) for value in values):
        return "float"
    if all(isinstance(value, str) for value in values):
        return "str"
    return "json"


def _write_record_sections(writer: _SectionWriter,
                           records: Sequence[NameRecord],
                           pool: _PoolWriter, sets: _SetWriter) -> None:
    """Write the per-record typed columns (including extras columns)."""
    count = len(records)
    names = array("q", bytes(8 * count))
    tlds = array("q", bytes(8 * count))
    categories = array("q", bytes(8 * count))
    classifications = array("q", bytes(8 * count))
    flags = bytearray(count)
    ints = {column: array("q", bytes(8 * count)) for column in _INT_COLUMNS}
    safety = array("d", bytes(8 * count))
    tcb_sets = array("q", bytes(8 * count))
    cut_sets = array("q", bytes(8 * count))
    extras_values: Dict[str, Dict[int, object]] = {}

    for row, record in enumerate(records):
        names[row] = pool.intern_name(record.name)
        tlds[row] = pool.intern(record.tld)
        categories[row] = pool.intern(record.category)
        classifications[row] = pool.intern(record.classification)
        flags[row] = ((_FLAG_POPULAR if record.is_popular else 0) |
                      (_FLAG_RESOLVED if record.resolved else 0))
        for column in _INT_COLUMNS:
            ints[column][row] = getattr(record, column)
        # The JSON codec rounds to 3 dp on write; store the same value so
        # both round trips hydrate identical records.
        safety[row] = round(record.safety_percentage, 3)
        tcb_sets[row] = sets.intern(record.tcb_servers)
        cut_sets[row] = sets.intern(record.mincut_servers)
        for column, value in record.extras.items():
            extras_values.setdefault(column, {})[row] = value

    writer.add("rec.name", names)
    writer.add("rec.tld", tlds)
    writer.add("rec.category", categories)
    writer.add("rec.classification", classifications)
    writer.add("rec.flags", bytes(flags))
    for column in _INT_COLUMNS:
        writer.add(f"rec.{column}", ints[column])
    writer.add("rec.safety", safety)
    writer.add("rec.tcbset", tcb_sets)
    writer.add("rec.cutset", cut_sets)

    _write_extras_sections(writer, count, extras_values, pool)


def _write_extras_sections(writer: _SectionWriter, count: int,
                           extras_values: Dict[str, Dict[int, object]],
                           pool: _PoolWriter) -> None:
    """Write the typed extras columns (shared by records write + merge)."""
    directory = []
    for position, column in enumerate(sorted(extras_values)):
        present = extras_values[column]
        kind = _extra_kind(list(present.values()))
        directory.append({"column": column, "kind": kind})
        presence = bytearray(count)
        for row in present:
            presence[row] = 1
        writer.add(f"ex.{position}.pres", bytes(presence))
        if kind == "bool":
            cells = bytearray(count)
            for row, value in present.items():
                cells[row] = 1 if value else 0
            writer.add(f"ex.{position}.val", bytes(cells))
        elif kind == "int":
            cells = array("q", bytes(8 * count))
            for row, value in present.items():
                cells[row] = value
            writer.add(f"ex.{position}.val", cells)
        elif kind == "float":
            cells = array("d", bytes(8 * count))
            for row, value in present.items():
                cells[row] = value
            writer.add(f"ex.{position}.val", cells)
        else:  # str / json ride the string pool
            cells = array("q", bytes(8 * count))
            for row, value in present.items():
                text = value if kind == "str" else \
                    json.dumps(value, sort_keys=True)
                cells[row] = pool.intern(text)
            writer.add(f"ex.{position}.val", cells)
    writer.add_json("ex.dir", directory)


def _intern_sorted(pool: _PoolWriter, hosts) -> List[int]:
    """Intern ``hosts`` in canonical (string-sorted) order; sorted ids.

    Interning while iterating a set would assign first-seen pool ids in
    hash order, so two processes with different PYTHONHASHSEEDs would
    write byte-different files for identical results — breaking the
    byte-identity contract resume and the crash-matrix tests rely on.
    """
    return sorted(pool.intern_name(host) for host in sorted(hosts, key=str))


def _write_aggregate_sections(writer: _SectionWriter, results: SurveyResults,
                              pool: _PoolWriter) -> None:
    """Write the aggregate maps (counts, vuln/comp sets, fingerprints)."""
    counts = sorted(results.server_names_controlled.items(),
                    key=lambda item: str(item[0]))
    writer.add("agg.counts.host",
               array("q", [pool.intern_name(host) for host, _ in counts]))
    writer.add("agg.counts.n", array("q", [count for _, count in counts]))
    for section, hosts in (("agg.vuln", results.vulnerable_servers),
                           ("agg.comp", results.compromisable_servers),
                           ("agg.pop", results.popular_names)):
        writer.add(section, array("q", _intern_sorted(pool, hosts)))
    _write_fingerprint_sections(writer, "fp", results.fingerprints, pool)
    writer.add("meta", json.dumps(results.metadata,
                                  sort_keys=True).encode("utf-8"))


#: Banner column sentinel for "no banner" — far outside both the local
#: (non-negative) and base-reference (small negative) pool id ranges.
_NO_BANNER = -(2 ** 62)


def _write_fingerprint_sections(writer: _SectionWriter, prefix: str,
                                fingerprints: Dict[DomainName,
                                                   FingerprintResult],
                                pool: _PoolWriter) -> None:
    ordered = sorted(fingerprints.items(), key=lambda item: str(item[0]))
    hosts = array("q", [pool.intern_name(host) for host, _ in ordered])
    banners = array("q", [_NO_BANNER if result.banner is None
                          else pool.intern(result.banner)
                          for _, result in ordered])
    reachable = bytes(1 if result.reachable else 0 for _, result in ordered)
    vuln_offsets = array("q", [0])
    vuln_members = array("q")
    for _, result in ordered:
        vuln_members.extend(pool.intern(item)
                            for item in result.vulnerabilities)
        vuln_offsets.append(len(vuln_members))
    writer.add(prefix + ".host", hosts)
    writer.add(prefix + ".banner", banners)
    writer.add(prefix + ".reach", reachable)
    writer.add(prefix + ".vuln.off", vuln_offsets)
    writer.add(prefix + ".vuln.mem", vuln_members)


def _read_fingerprints(reader: _SectionReader, prefix: str, pool: _Pool
                       ) -> Dict[DomainName, FingerprintResult]:
    hosts = reader.q(prefix + ".host")
    banners = reader.q(prefix + ".banner")
    reachable = reader.bytes_view(prefix + ".reach")
    offsets = reader.q(prefix + ".vuln.off")
    members = reader.q(prefix + ".vuln.mem")
    out: Dict[DomainName, FingerprintResult] = {}
    for position in range(len(hosts)):
        hostname = pool.name(hosts[position])
        banner = None if banners[position] == _NO_BANNER else pool.text(
            banners[position])
        out[hostname] = FingerprintResult(
            hostname=hostname, banner=banner,
            version=BindVersion.parse(banner),
            reachable=bool(reachable[position]),
            vulnerabilities=[pool.text(member) for member in
                             members[offsets[position]:
                                     offsets[position + 1]]])
    return out


# -- results snapshot write path --------------------------------------------------------


def save_results_snapshot(results: SurveyResults,
                          path: PathLike) -> pathlib.Path:
    """Write ``results`` as a REPRO-SNAP v1 binary snapshot."""
    writer = _SectionWriter(path, KIND_RESULTS)
    try:
        pool = _PoolWriter()
        sets = _SetWriter(pool)
        _write_record_sections(writer, results.records, pool, sets)
        _write_aggregate_sections(writer, results, pool)
        # The pool and set store go last: record/aggregate writing is what
        # populates them.
        sets.write(writer, "sets")
        pool.write(writer, "strs")
    except BaseException:
        writer.abort()
        raise
    return writer.close()


# -- reader-side record access ----------------------------------------------------------


class _RecordReader:
    """Column access + on-demand record hydration for one container."""

    def __init__(self, reader: _SectionReader,
                 base: Optional["_RecordReader"] = None):
        self.reader = reader
        self.pool = _Pool(reader, "strs",
                          base.pool if base is not None else None)
        self.sets = _SetStore(reader, "sets", self.pool,
                              base.sets if base is not None else None)
        self._names = reader.q("rec.name")
        self._tlds = reader.q("rec.tld")
        self._categories = reader.q("rec.category")
        self._classifications = reader.q("rec.classification")
        self._flags = reader.bytes_view("rec.flags")
        self._ints = {column: reader.q(f"rec.{column}")
                      for column in _INT_COLUMNS}
        self._safety = reader.d("rec.safety")
        self._tcb_sets = reader.q("rec.tcbset")
        self._cut_sets = reader.q("rec.cutset")
        self.extras_dir: List[Dict[str, str]] = reader.json("ex.dir")
        self._extras_index = {entry["column"]: position for position, entry
                              in enumerate(self.extras_dir)}

    def __len__(self) -> int:
        return len(self._names)

    def name(self, row: int) -> DomainName:
        return self.pool.name(self._names[row])

    def name_text(self, row: int) -> str:
        return self.pool.text(self._names[row])

    def resolved(self, row: int) -> bool:
        return bool(self._flags[row] & _FLAG_RESOLVED)

    def tcb_frozen(self, row: int) -> frozenset:
        return self.sets.frozen(self._tcb_sets[row])

    def extra_present(self, column: str, row: int) -> bool:
        """Whether the record at ``row`` carries the extras column."""
        position = self._extras_index.get(column)
        if position is None:
            return False
        return bool(self.reader.bytes_view(f"ex.{position}.pres")[row])

    def extra_value(self, column: str, row: int):
        """One extras cell (``None`` when the record lacks the column)."""
        position = self._extras_index.get(column)
        if position is None:
            return None
        return self._extra_cell(position, self.extras_dir[position]["kind"],
                                row)

    def _extra_cell(self, position: int, kind: str, row: int):
        if not self.reader.bytes_view(f"ex.{position}.pres")[row]:
            return None
        if kind == "bool":
            return bool(self.reader.bytes_view(f"ex.{position}.val")[row])
        if kind == "int":
            return self.reader.q(f"ex.{position}.val")[row]
        if kind == "float":
            return self.reader.d(f"ex.{position}.val")[row]
        text = self.pool.text(self.reader.q(f"ex.{position}.val")[row])
        return text if kind == "str" else json.loads(text)

    def field_value(self, field: str, row: int):
        """One built-in-or-extras field value (diff fast path cell access).

        Extras win over the built-in attribute of the same name, matching
        the hydrated path's ``record.extras``-first lookup.
        """
        if self.extra_present(field, row):
            return self.extra_value(field, row)
        if field in self._ints:
            return self._ints[field][row]
        if field == "classification":
            return self.pool.text(self._classifications[row])
        if field == "safety_percentage":
            return self._safety[row]
        return None

    def extras_for(self, row: int) -> Dict[str, object]:
        extras: Dict[str, object] = {}
        for position, entry in enumerate(self.extras_dir):
            value = self._extra_cell(position, entry["kind"], row)
            if value is not None or \
                    self.reader.bytes_view(f"ex.{position}.pres")[row]:
                extras[entry["column"]] = value
        return extras

    def hydrate(self, row: int) -> NameRecord:
        """Materialise one :class:`NameRecord` from the columns."""
        flags = self._flags[row]
        ints = self._ints
        return NameRecord(
            name=self.name(row),
            tld=self.pool.text(self._tlds[row]),
            category=self.pool.text(self._categories[row]),
            is_popular=bool(flags & _FLAG_POPULAR),
            resolved=bool(flags & _FLAG_RESOLVED),
            tcb_size=ints["tcb_size"][row],
            in_bailiwick=ints["in_bailiwick"][row],
            vulnerable_in_tcb=ints["vulnerable_in_tcb"][row],
            compromisable_in_tcb=ints["compromisable_in_tcb"][row],
            safety_percentage=self._safety[row],
            mincut_size=ints["mincut_size"][row],
            mincut_safe=ints["mincut_safe"][row],
            mincut_vulnerable=ints["mincut_vulnerable"][row],
            classification=self.pool.text(self._classifications[row]),
            tcb_servers=set(self.sets.frozen(self._tcb_sets[row])),
            mincut_servers=set(self.sets.frozen(self._cut_sets[row])),
            extras=self.extras_for(row))

    def aggregates(self) -> Dict[str, object]:
        """Materialise the aggregate maps (counts, sets, fingerprints)."""
        reader, pool = self.reader, self.pool
        hosts = reader.q("agg.counts.host")
        counts = reader.q("agg.counts.n")
        return {
            "counts": {pool.name(hosts[i]): counts[i]
                       for i in range(len(hosts))},
            "vulnerable": {pool.name(i) for i in reader.q("agg.vuln")},
            "compromisable": {pool.name(i) for i in reader.q("agg.comp")},
            "popular": {pool.name(i) for i in reader.q("agg.pop")},
            "fingerprints": _read_fingerprints(reader, "fp", pool),
        }

    def metadata(self) -> Dict[str, object]:
        return self.reader.json("meta")


# -- the lazy SurveyResults view --------------------------------------------------------


class _RowSource:
    """Row addressing for a lazy view: base columns plus epoch overlays.

    Every row resolves to ``(record_reader, local_row)`` — the base file
    for rows untouched since epoch 0, the newest delta file containing the
    row otherwise.
    """

    def __init__(self, base: _RecordReader,
                 overlays: Optional[Dict[int, Tuple[_RecordReader,
                                                    int]]] = None,
                 aggregates: Optional[Callable[[], Dict[str, object]]] = None,
                 metadata: Optional[Callable[[], Dict[str, object]]] = None):
        self.base = base
        self.overlays = overlays or {}
        self._aggregates = aggregates or base.aggregates
        self._metadata = metadata or base.metadata

    def __len__(self) -> int:
        return len(self.base)

    def locate(self, row: int) -> Tuple[_RecordReader, int]:
        return self.overlays.get(row, (self.base, row))

    def hydrate(self, row: int) -> NameRecord:
        reader, local = self.locate(row)
        return reader.hydrate(local)

    def name(self, row: int) -> DomainName:
        # Record names never change across epochs; read from the base so
        # the name cache stays shared.
        return self.base.name(row)

    def name_text(self, row: int) -> str:
        return self.base.name_text(row)

    def field_value(self, field: str, row: int):
        reader, local = self.locate(row)
        return reader.field_value(field, local)

    def extra_present(self, column: str, row: int) -> bool:
        reader, local = self.locate(row)
        return reader.extra_present(column, local)

    def extra_value(self, column: str, row: int):
        reader, local = self.locate(row)
        return reader.extra_value(column, local)

    def resolved(self, row: int) -> bool:
        reader, local = self.locate(row)
        return reader.resolved(local)

    def tcb_frozen(self, row: int) -> frozenset:
        reader, local = self.locate(row)
        return reader.tcb_frozen(local)

    def extras_columns(self) -> List[str]:
        columns: Set[str] = {entry["column"]
                             for entry in self.base.extras_dir}
        for reader, _ in self.overlays.values():
            columns.update(entry["column"] for entry in reader.extras_dir)
        return sorted(columns)

    def aggregates(self) -> Dict[str, object]:
        return self._aggregates()

    def metadata(self) -> Dict[str, object]:
        return self._metadata()


class _LazyRecords:
    """A ``records`` sequence hydrating one :class:`NameRecord` per access.

    Hydrated records are cached (one object per row, shared with
    ``record_for``) and counted — :attr:`hydrated` is what the laziness
    tests assert on.
    """

    __slots__ = ("_source", "_cache", "hydrated")

    def __init__(self, source: _RowSource):
        self._source = source
        self._cache: Dict[int, NameRecord] = {}
        self.hydrated = 0

    def __len__(self) -> int:
        return len(self._source)

    def _get(self, row: int) -> NameRecord:
        found = self._cache.get(row)
        if found is None:
            found = self._source.hydrate(row)
            self._cache[row] = found
            self.hydrated += 1
        return found

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._get(row)
                    for row in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("record index out of range")
        return self._get(index)

    def __iter__(self) -> Iterator[NameRecord]:
        for row in range(len(self)):
            yield self._get(row)

    def __bool__(self) -> bool:
        return len(self) > 0


class _ColumnDiffView:
    """The columnar diff protocol over one lazy snapshot.

    :func:`repro.core.snapshot.diff_results` drives this instead of the
    record index when both sides are lazy: ``names`` maps every surveyed
    name to its row handle, and :meth:`value` answers per-field cell reads
    straight from the columns — no :class:`NameRecord` is ever built.
    """

    def __init__(self, source: _RowSource):
        self._source = source
        self.names: Dict[DomainName, int] = {
            source.name(row): row for row in range(len(source))}

    def value(self, row: int, field: str):
        return self._source.field_value(field, row)


class LazySurveyResults(SurveyResults):
    """A column-backed :class:`SurveyResults` over an open snapshot.

    Construction is O(1): no record, aggregate map, or frozenset exists
    until something asks for it.  ``records`` hydrates row by row (cached);
    the aggregate maps materialise once on first touch; ``record_for``
    goes through a name→row index built from the string pool without
    hydrating any record.  Everything else — ``headline``, the figure
    reducers, ``extras_summary`` — is inherited and works on the lazy
    sequence unchanged.
    """

    def __init__(self, source: _RowSource):
        # Deliberately no dataclass __init__: every parent field is served
        # by a property below, off the columns.
        self._source = source
        self._lazy_records = _LazyRecords(source)
        self._aggregates: Optional[Dict[str, object]] = None
        self._metadata: Optional[Dict[str, object]] = None
        self._row_index: Optional[Dict[str, int]] = None

    # -- lazy field surface ---------------------------------------------------------

    @property
    def records(self) -> _LazyRecords:  # type: ignore[override]
        return self._lazy_records

    def _aggregate(self, key: str):
        if self._aggregates is None:
            self._aggregates = self._source.aggregates()
        return self._aggregates[key]

    @property
    def server_names_controlled(self):  # type: ignore[override]
        return self._aggregate("counts")

    @property
    def vulnerable_servers(self):  # type: ignore[override]
        return self._aggregate("vulnerable")

    @property
    def compromisable_servers(self):  # type: ignore[override]
        return self._aggregate("compromisable")

    @property
    def popular_names(self):  # type: ignore[override]
        return self._aggregate("popular")

    @property
    def fingerprints(self):  # type: ignore[override]
        return self._aggregate("fingerprints")

    @property
    def metadata(self):  # type: ignore[override]
        if self._metadata is None:
            self._metadata = self._source.metadata()
        return self._metadata

    # -- laziness probes ------------------------------------------------------------

    @property
    def hydrated_record_count(self) -> int:
        """How many records have been materialised so far (test probe)."""
        return self._lazy_records.hydrated

    # -- overridden accessors (hydration-free) ---------------------------------------

    def record_for(self, name: NameLike) -> Optional[NameRecord]:
        """One record by name, hydrating only that row."""
        if self._row_index is None:
            source = self._source
            self._row_index = {source.name_text(row): row
                               for row in range(len(source))}
        row = self._row_index.get(str(DomainName(name)))
        return None if row is None else self._lazy_records[row]

    def tcb_index_rows(self):
        """(name, resolved, tcb_servers) rows without record hydration.

        The :class:`~repro.core.delta.DirtyIndex` feed: the inverted
        host→names index needs exactly these three columns, and the
        frozensets come shared from the content-addressed set store.
        """
        source = self._source
        for row in range(len(source)):
            yield (source.name(row), source.resolved(row),
                   source.tcb_frozen(row))

    def extras_columns(self) -> List[str]:
        return self._source.extras_columns()

    def extra_values(self, column: str,
                     resolved_only: bool = True) -> List[object]:
        source = self._source
        return [source.extra_value(column, row)
                for row in range(len(source))
                if (not resolved_only or source.resolved(row))
                and source.extra_present(column, row)]

    def column_diff_view(self) -> _ColumnDiffView:
        """The diff protocol object ``diff_results`` fast-paths through."""
        return _ColumnDiffView(self._source)

    def verify(self) -> None:
        """Checksum the backing file(s) payload (O(size), explicit)."""
        self._source.base.reader.verify()
        for patch in {reader for reader, _ in
                      self._source.overlays.values()}:
            patch.reader.verify()


def open_results(path: PathLike) -> LazySurveyResults:
    """Open a binary results snapshot as a lazy view; O(1) in snapshot size."""
    return LazySurveyResults(_RowSource(_RecordReader(
        _SectionReader(path, KIND_RESULTS))))


# -- shard payloads ----------------------------------------------------------------------


def _write_flag_map(writer: _SectionWriter, prefix: str,
                    mapping: Dict[DomainName, bool],
                    pool: _PoolWriter) -> None:
    ordered = sorted(mapping.items(), key=lambda item: str(item[0]))
    writer.add(prefix + ".host",
               array("q", [pool.intern_name(host) for host, _ in ordered]))
    writer.add(prefix + ".flag",
               bytes(1 if value else 0 for _, value in ordered))


def _read_flag_map(reader: _SectionReader, prefix: str,
                   pool: _Pool) -> Dict[DomainName, bool]:
    hosts = reader.q(prefix + ".host")
    flags = reader.bytes_view(prefix + ".flag")
    return {pool.name(hosts[position]): bool(flags[position])
            for position in range(len(hosts))}


class ShardPayload(NamedTuple):
    """One shard's decoded survey output (the coordinator's fold input)."""

    rows: List[int]
    records: List[NameRecord]
    fingerprints: Dict[DomainName, FingerprintResult]
    vulnerability_map: Dict[DomainName, bool]
    compromisable_map: Dict[DomainName, bool]
    popular: Set[DomainName]
    meta: Dict[str, object]


def pack_shard_result(rows: Sequence[int], records: Sequence[NameRecord],
                      fingerprints: Dict[DomainName, FingerprintResult],
                      vulnerability_map: Dict[DomainName, bool],
                      compromisable_map: Dict[DomainName, bool],
                      popular: Iterable[DomainName] = (),
                      meta: Optional[Dict[str, object]] = None,
                      path: Optional[PathLike] = None):
    """Encode one shard's survey output as a REPRO-SNAP shard container.

    ``rows`` holds the *global* directory index of each record, exactly as
    epoch deltas do, so a merge can place every column slice without
    hydrating a record.  With ``path=None`` the container is returned as
    bytes (the worker's wire payload); with a path it lands on disk (the
    ``repro-dns survey --shard i/n`` output that ``repro-dns merge``
    unions).
    """
    if len(rows) != len(records):
        raise ValueError(f"{len(rows)} rows for {len(records)} records")
    writer = _SectionWriter(path, KIND_SHARD)
    try:
        return _stream_shard_result(writer, rows, records, fingerprints,
                                    vulnerability_map, compromisable_map,
                                    popular, meta, path)
    except BaseException:
        writer.abort()
        raise


def _stream_shard_result(writer, rows, records, fingerprints,
                         vulnerability_map, compromisable_map, popular,
                         meta, path):
    pool = _PoolWriter()
    sets = _SetWriter(pool)
    _write_record_sections(writer, list(records), pool, sets)
    writer.add("rows", array("q", rows))
    _write_fingerprint_sections(writer, "fp", fingerprints, pool)
    _write_flag_map(writer, "vm", vulnerability_map, pool)
    _write_flag_map(writer, "cm", compromisable_map, pool)
    # The full popular set (not just this shard's slice): a shard file
    # must let `repro-dns merge` reconstruct popular_names exactly even
    # when a truncated survey leaves popular names unsurveyed.
    writer.add("pop", array("q", _intern_sorted(pool, popular)))
    writer.add("meta", json.dumps(meta or {},
                                  sort_keys=True).encode("utf-8"))
    sets.write(writer, "sets")
    pool.write(writer, "strs")
    return writer.close() if path is not None else writer.close_to_bytes()


def unpack_shard_result(source: Union[PathLike, bytes, bytearray, memoryview],
                        label: Optional[str] = None) -> ShardPayload:
    """Decode a shard container (bytes or file) into hydrated parts."""
    reader = _SectionReader(source, KIND_SHARD, label=label)
    rec = _RecordReader(reader)
    rows = list(reader.q("rows"))
    if len(rows) != len(rec):
        raise SnapshotFormatError(
            f"{reader.path}: shard row index covers {len(rows)} rows for "
            f"{len(rec)} records")
    return ShardPayload(
        rows=rows,
        records=[rec.hydrate(row) for row in range(len(rec))],
        fingerprints=_read_fingerprints(reader, "fp", rec.pool),
        vulnerability_map=_read_flag_map(reader, "vm", rec.pool),
        compromisable_map=_read_flag_map(reader, "cm", rec.pool),
        popular={rec.pool.name(name_id) for name_id in reader.q("pop")},
        meta=reader.json("meta"))


# -- the delta-sharing timeline store ----------------------------------------------------


def _base_ref_indexes(base: _RecordReader
                      ) -> Tuple[Dict[str, int], Dict[Tuple[int, ...], int]]:
    """Reference indexes a delta writer needs to share a base file's pool.

    The set index is keyed in *delta* id space: a base set's members are
    base pool ids, and a host already pooled by the base interns into a
    delta as ``-(base_id + 1)`` — so re-keying the base memberships the
    same way makes unchanged sets hit the index exactly.
    """
    pool = base.pool
    text_index = {pool.text(index): index for index in range(len(pool))}
    offsets, members = base.sets._offsets, base.sets._members
    set_index = {
        tuple(sorted(-member - 1
                     for member in members[offsets[set_id]:
                                           offsets[set_id + 1]])): set_id
        for set_id in range(len(offsets) - 1)}
    return text_index, set_index


def _write_delta_snapshot(path: PathLike, results: SurveyResults,
                          previous: SurveyResults,
                          changed_rows: List[int],
                          base: Optional[_RecordReader] = None
                          ) -> pathlib.Path:
    """Write one epoch as a column delta against ``previous``.

    The file carries the changed rows' full record columns, the base-row
    index mapping, and aggregate-map patches (set/delete entries) —
    everything :meth:`EpochStore.load_epoch` needs to overlay it on the
    base epoch.  Strings and sets the ``base`` file (epoch 0) already
    stores are written as negative references into its pool instead of
    being duplicated; only genuinely new material enters the local pool.
    """
    writer = _SectionWriter(path, KIND_DELTA)
    try:
        return _stream_delta_snapshot(writer, results, previous,
                                      changed_rows, base)
    except BaseException:
        writer.abort()
        raise


def _stream_delta_snapshot(writer: _SectionWriter, results: SurveyResults,
                           previous: SurveyResults,
                           changed_rows: List[int],
                           base: Optional[_RecordReader]) -> pathlib.Path:
    if base is not None:
        text_index, set_index = _base_ref_indexes(base)
        pool = _PoolWriter(text_index)
        sets = _SetWriter(pool, set_index)
    else:
        pool = _PoolWriter()
        sets = _SetWriter(pool)
    records = results.records
    _write_record_sections(writer, [records[row] for row in changed_rows],
                           pool, sets)
    writer.add("rows", array("q", changed_rows))

    counts, prev_counts = (results.server_names_controlled,
                           previous.server_names_controlled)
    upserts = sorted(
        ((host, count) for host, count in counts.items()
         if prev_counts.get(host) != count), key=lambda item: str(item[0]))
    writer.add("aggd.counts.set.host",
               array("q", [pool.intern_name(host) for host, _ in upserts]))
    writer.add("aggd.counts.set.n",
               array("q", [count for _, count in upserts]))
    writer.add("aggd.counts.del", array("q", _intern_sorted(
        pool, (host for host in prev_counts if host not in counts))))

    for section, now, before in (
            ("vuln", results.vulnerable_servers,
             previous.vulnerable_servers),
            ("comp", results.compromisable_servers,
             previous.compromisable_servers),
            ("pop", results.popular_names, previous.popular_names)):
        writer.add(f"aggd.{section}.add",
                   array("q", _intern_sorted(pool, now - before)))
        writer.add(f"aggd.{section}.del",
                   array("q", _intern_sorted(pool, before - now)))

    fingerprints, prev_fingerprints = (results.fingerprints,
                                       previous.fingerprints)
    changed_fp = {host: result for host, result in fingerprints.items()
                  if prev_fingerprints.get(host) != result}
    _write_fingerprint_sections(writer, "fpd", changed_fp, pool)
    writer.add("fpd.del", array("q", _intern_sorted(
        pool, (host for host in prev_fingerprints
               if host not in fingerprints))))

    writer.add("meta", json.dumps(results.metadata,
                                  sort_keys=True).encode("utf-8"))
    sets.write(writer, "sets")
    pool.write(writer, "strs")
    return writer.close()


def _apply_aggregate_patch(aggregates: Dict[str, object],
                           patch: _RecordReader) -> None:
    """Fold one delta file's aggregate-map patches into ``aggregates``."""
    reader, pool = patch.reader, patch.pool
    counts: Dict[DomainName, int] = aggregates["counts"]
    hosts = reader.q("aggd.counts.set.host")
    values = reader.q("aggd.counts.set.n")
    for position in range(len(hosts)):
        counts[pool.name(hosts[position])] = values[position]
    for host_id in reader.q("aggd.counts.del"):
        counts.pop(pool.name(host_id), None)
    for section, key in (("vuln", "vulnerable"), ("comp", "compromisable"),
                         ("pop", "popular")):
        members: Set[DomainName] = aggregates[key]
        for host_id in reader.q(f"aggd.{section}.add"):
            members.add(pool.name(host_id))
        for host_id in reader.q(f"aggd.{section}.del"):
            members.discard(pool.name(host_id))
    fingerprints: Dict[DomainName, FingerprintResult] = \
        aggregates["fingerprints"]
    fingerprints.update(_read_fingerprints(reader, "fpd", pool))
    for host_id in reader.q("fpd.del"):
        fingerprints.pop(pool.name(host_id), None)


#: An epoch file name (temp debris is dot-prefixed and never matches).
_EPOCH_FILE = re.compile(r"^epoch_(\d{4,})\.rsnap$")


@dataclasses.dataclass(frozen=True)
class StoreProblem:
    """One integrity failure fsck found: where, and precisely what."""

    path: pathlib.Path
    epoch: Optional[int]
    error: str

    def __str__(self) -> str:
        where = self.path.name if self.epoch is None \
            else f"epoch {self.epoch} ({self.path.name})"
        return f"{where}: {self.error}"


@dataclasses.dataclass(frozen=True)
class StoreIntegrityReport:
    """What :meth:`EpochStore.verify` found.

    ``valid_epochs`` is the length of the longest loadable prefix —
    contiguous from epoch 0, every file's header, TOC, and payload CRC
    intact, epoch 0 a full results snapshot.  Everything past it is in
    ``problems``; uncommitted temp files are in ``debris``.
    """

    root: pathlib.Path
    valid_epochs: int
    present: Tuple[int, ...]
    problems: Tuple[StoreProblem, ...]
    debris: Tuple[pathlib.Path, ...]

    @property
    def classification(self) -> str:
        """``clean`` / ``salvageable`` / ``corrupt-base``."""
        if self.problems:
            return "salvageable" if self.valid_epochs else "corrupt-base"
        return "salvageable" if self.debris else "clean"

    @property
    def ok(self) -> bool:
        return self.classification == "clean"


class EpochStore:
    """A directory of epochs: keyframe snapshots plus column deltas.

    Epoch 0 is a complete REPRO-SNAP results file; every later epoch
    stores only the rows whose records actually changed (callers pass the
    delta engine's dirty set to bound the comparison) plus aggregate-map
    patches — so a longitudinal run's storage scales with churn, not with
    ``epochs × universe``.  :meth:`load_epoch` opens any epoch as a
    :class:`LazySurveyResults` whose row source overlays the deltas on the
    nearest keyframe's columns; unchanged rows keep reading from that
    keyframe's mmap.

    ``keyframe_every=K`` writes a *full* snapshot every K epochs instead
    of a delta, so a 1000-epoch store never builds overlay chains longer
    than K.  Readers never need the writer's cadence: which epochs are
    keyframes is sniffed from the file kinds, so any mixing of cadences
    across appends reads correctly.
    """

    def __init__(self, root: PathLike,
                 keyframe_every: Optional[int] = None):
        self.root = pathlib.Path(root)
        if keyframe_every is not None and keyframe_every < 1:
            raise ValueError(
                f"keyframe_every must be >= 1, got {keyframe_every}")
        self.keyframe_every = keyframe_every

    def _keyframe_for(self, epoch: int) -> int:
        """The newest keyframe epoch at or below ``epoch`` (sniffed)."""
        for step in range(epoch, -1, -1):
            if sniff_kind(self.epoch_path(step)) == KIND_RESULTS:
                return step
        raise SnapshotFormatError(
            f"{self.root}: no keyframe at or below epoch {epoch}")

    def epoch_path(self, epoch: int) -> pathlib.Path:
        return self.root / f"epoch_{epoch:04d}.rsnap"

    def epoch_numbers(self) -> List[int]:
        """The epoch numbers present on disk, sorted (gaps and all)."""
        if not self.root.is_dir():
            return []
        return sorted(int(match.group(1)) for match in
                      (_EPOCH_FILE.match(path.name)
                       for path in self.root.iterdir())
                      if match is not None)

    @property
    def epochs(self) -> int:
        """How many epochs the store holds (0 when empty).

        A *gap* — ``epoch_0007.rsnap`` present while ``epoch_0006.rsnap``
        is not — raises naming the missing epoch rather than silently
        reporting a shorter store: deltas past the gap would overlay onto
        the wrong predecessor state.
        """
        numbers = self.epoch_numbers()
        for position, number in enumerate(numbers):
            if number != position:
                raise SnapshotFormatError(
                    f"{self.root}: epoch store has a gap: "
                    f"{self.epoch_path(position).name} is missing but "
                    f"{self.epoch_path(number).name} exists "
                    f"(run `repro-dns fsck` to inspect or salvage)")
        return len(numbers)

    def total_bytes(self) -> int:
        """Bytes on disk across every epoch file."""
        return sum(self.epoch_path(epoch).stat().st_size
                   for epoch in range(self.epochs))

    # -- integrity: fsck / salvage -------------------------------------------------------

    def _check_epoch_file(self, epoch: int) -> Optional[str]:
        """Why the epoch file is invalid, or None if it checks out fully.

        Walks everything open() skips for O(1) cost: the payload crc32
        and the kind discipline (epoch 0 must be a full results snapshot;
        later epochs a delta or a keyframe).
        """
        try:
            reader = _SectionReader(self.epoch_path(epoch))
            if epoch == 0 and reader.kind != KIND_RESULTS:
                return (f"epoch 0 must be a full results snapshot, found "
                        f"a {_KIND_NAMES.get(reader.kind, 'unknown')} file")
            if epoch > 0 and reader.kind not in (KIND_RESULTS, KIND_DELTA):
                return (f"expected a keyframe or epoch delta, found a "
                        f"{_KIND_NAMES.get(reader.kind, 'unknown')} file")
            reader.verify()
        except SnapshotFormatError as error:
            # Strip the path prefix _SectionReader bakes in; the report
            # names the file itself.
            message = str(error)
            prefix = f"{self.epoch_path(epoch)}: "
            return message[len(prefix):] if message.startswith(prefix) \
                else message
        return None

    def verify(self) -> StoreIntegrityReport:
        """Full integrity walk: CRCs, kinds, contiguity, temp debris.

        O(store size) by design — this is fsck, not open.  Never raises
        on a corrupt store; the report carries the findings.
        """
        present = self.epoch_numbers()
        problems: List[StoreProblem] = []
        valid = 0
        prefix_intact = True
        top = present[-1] + 1 if present else 0
        for epoch in range(top):
            path = self.epoch_path(epoch)
            if not path.exists():
                problems.append(StoreProblem(
                    path, epoch, "missing (gap in the epoch sequence)"))
                prefix_intact = False
                continue
            error = self._check_epoch_file(epoch)
            if error is not None:
                problems.append(StoreProblem(path, epoch, error))
                prefix_intact = False
            elif prefix_intact:
                valid = epoch + 1
        return StoreIntegrityReport(
            root=self.root, valid_epochs=valid, present=tuple(present),
            problems=tuple(problems),
            debris=tuple(temp_debris(self.root)))

    def salvage(self) -> Tuple[StoreIntegrityReport, List[pathlib.Path]]:
        """Truncate to the longest valid prefix; quarantine the bad tail.

        Invalid or past-the-prefix epoch files move (never delete — they
        are evidence) into ``<root>/quarantine/``; uncommitted temp
        debris is removed.  Refuses a corrupt base: with no valid epoch 0
        there is no prefix to keep, and emptying the store is a decision
        for a human, not fsck.  Returns the pre-salvage report and the
        paths acted on.
        """
        report = self.verify()
        if report.classification == "corrupt-base":
            raise SnapshotFormatError(
                f"{self.root}: epoch 0 is missing or corrupt — no valid "
                f"prefix to salvage (remove the store manually to start "
                f"over)")
        moved: List[pathlib.Path] = []
        quarantine = self.root / "quarantine"
        for epoch in report.present:
            if epoch < report.valid_epochs:
                continue
            path = self.epoch_path(epoch)
            quarantine.mkdir(parents=True, exist_ok=True)
            target = quarantine / path.name
            os.replace(path, target)
            moved.append(target)
        for debris in report.debris:
            debris.unlink()
            moved.append(debris)
        if moved:
            fsync_directory(self.root)
        return report, moved

    def append(self, results: SurveyResults,
               previous: Optional[SurveyResults] = None,
               dirty: Optional[Iterable[DomainName]] = None) -> pathlib.Path:
        """Persist the next epoch; full for epoch 0, a delta afterwards.

        ``previous`` must be the results the store's latest epoch holds
        (the timeline loop always has them in hand).  ``dirty``, when
        given, bounds the changed-row scan to the names the delta engine
        re-surveyed — every other record is unchanged by the delta
        contract, so it is never compared (or hydrated, for lazy views).
        """
        epoch = self.epochs
        if epoch == 0 or (self.keyframe_every is not None
                          and epoch % self.keyframe_every == 0):
            self.root.mkdir(parents=True, exist_ok=True)
            return save_results_snapshot(results, self.epoch_path(epoch))
        if previous is None:
            previous = self.load_epoch(epoch - 1)
        records = results.records
        if len(records) != len(previous.records):
            raise ValueError(
                f"epoch {epoch} surveys {len(records)} names, the store "
                f"holds {len(previous.records)} — every epoch must survey "
                f"the same directory")
        dirty_set = None if dirty is None else \
            {DomainName(name) for name in dirty}
        changed_rows: List[int] = []
        for row in range(len(records)):
            record = records[row]
            if dirty_set is not None and record.name not in dirty_set:
                continue
            if record != previous.record_for(record.name):
                changed_rows.append(row)
        base = _RecordReader(_SectionReader(
            self.epoch_path(self._keyframe_for(epoch - 1)), KIND_RESULTS))
        return _write_delta_snapshot(self.epoch_path(epoch), results,
                                     previous, changed_rows, base=base)

    def load_epoch(self, epoch: int) -> LazySurveyResults:
        """Open epoch ``epoch`` as a lazy view (deltas overlaid on base)."""
        if not 0 <= epoch < self.epochs:
            raise SnapshotFormatError(
                f"{self.root}: epoch {epoch} not in store "
                f"(holds {self.epochs})")
        keyframe = self._keyframe_for(epoch)
        base = _RecordReader(_SectionReader(self.epoch_path(keyframe),
                                            KIND_RESULTS))
        overlays: Dict[int, Tuple[_RecordReader, int]] = {}
        patches: List[_RecordReader] = []
        for step in range(keyframe + 1, epoch + 1):
            patch = _RecordReader(_SectionReader(self.epoch_path(step),
                                                 KIND_DELTA), base=base)
            patches.append(patch)
            rows = patch.reader.q("rows")
            for local in range(len(rows)):
                overlays[rows[local]] = (patch, local)

        def aggregates() -> Dict[str, object]:
            folded = base.aggregates()
            for patch in patches:
                _apply_aggregate_patch(folded, patch)
            return folded

        metadata = patches[-1].metadata if patches else base.metadata
        return LazySurveyResults(_RowSource(base, overlays,
                                            aggregates, metadata))


# -- universe persistence ----------------------------------------------------------------


def save_universe(universe: DependencyUniverse,
                  path: PathLike) -> pathlib.Path:
    """Write a :class:`DependencyUniverse` as a REPRO-SNAP universe file.

    The :class:`NameTable` rides the string pool verbatim — table ids are
    dense first-seen order, exactly how the pool assigns its ids — and the
    adjacency goes out as the CSR snapshot, so a serving daemon can warm-
    start from disk instead of re-crawling.
    """
    writer = _SectionWriter(path, KIND_UNIVERSE)
    try:
        pool = _PoolWriter()
        for name_id in range(len(universe.names)):
            pool.intern_name(universe.names.name_of(name_id))
        writer.add("uni.kinds", bytes(bytearray(universe.kinds)))
        writer.add("uni.nameid", array("q", universe.name_ids))
        offsets, targets = universe.csr()
        writer.add("uni.csr.off", array("q", offsets))
        writer.add("uni.csr.tgt", array("q", targets))
        pool.write(writer, "strs")
    except BaseException:
        writer.abort()
        raise
    return writer.close()


def load_universe(path: PathLike) -> DependencyUniverse:
    """Rebuild a :class:`DependencyUniverse` from :func:`save_universe`.

    Node ids, NS slot assignments, and adjacency orders reproduce the
    saved universe exactly: nodes are re-created in id order and edges in
    CSR row order, which is the original insertion order.
    """
    reader = _SectionReader(path, KIND_UNIVERSE)
    pool = _Pool(reader, "strs")
    table = NameTable()
    for name_id in range(len(pool)):
        table.intern(pool.name(name_id))
    universe = DependencyUniverse(table)
    kinds = reader.bytes_view("uni.kinds")
    name_ids = reader.q("uni.nameid")
    for node_id in range(len(kinds)):
        universe.ensure_id(kinds[node_id], table.name_of(name_ids[node_id]))
    offsets = reader.q("uni.csr.off")
    targets = reader.q("uni.csr.tgt")
    for source in range(len(kinds)):
        for position in range(offsets[source], offsets[source + 1]):
            universe.add_edge_ids(source, targets[position])
    return universe
