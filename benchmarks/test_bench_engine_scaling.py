"""Old-path vs. engine-path throughput (closure memoization at scale).

The pre-engine pipeline materialised every name's delegation graph with
``nx.descendants`` plus a full ``subgraph(...).copy()`` against the shared
universe; the engine reads the same TCB from the builder's memoized closure
index as a zero-copy view.  These benchmarks pin down that difference at
BENCH_CONFIG scale and assert the acceptance floor: the closure path must be
at least 3x faster than the legacy materialisation path.
"""

import time

from repro.core.delegation import DelegationGraphBuilder
from repro.core.engine import EngineConfig, SurveyEngine

from conftest import BENCH_CONFIG

#: Names timed by the closure-vs-legacy comparison.
SAMPLE = 400

#: Acceptance floor on the per-name TCB extraction speedup.
MIN_SPEEDUP = 3.0


def _warm_builder(internet, names):
    builder = DelegationGraphBuilder(internet.make_resolver())
    for name in names:
        builder.tcb_view(name)
    return builder


def test_bench_legacy_tcb_extraction(benchmark, bench_internet, paper_survey):
    """Per-name TCB via nx.descendants + subgraph copy (the old hot path)."""
    names = [record.name for record in
             paper_survey.resolved_records()[:SAMPLE]]
    builder = _warm_builder(bench_internet, names)

    def legacy():
        return [builder.build(name).tcb_size() for name in names]

    sizes = benchmark(legacy)
    assert all(size > 0 for size in sizes)


def test_bench_engine_tcb_extraction(benchmark, bench_internet, paper_survey):
    """Per-name TCB via the memoized closure index (the engine hot path)."""
    names = [record.name for record in
             paper_survey.resolved_records()[:SAMPLE]]
    builder = _warm_builder(bench_internet, names)

    def closure_path():
        return [builder.tcb_view(name).tcb_size() for name in names]

    sizes = benchmark(closure_path)
    assert all(size > 0 for size in sizes)


def test_bench_closure_memoization_speedup(bench_internet, paper_survey,
                                           figure_writer):
    """Closure memoization alone must beat graph materialisation >= 3x."""
    names = [record.name for record in
             paper_survey.resolved_records()[:SAMPLE]]
    builder = _warm_builder(bench_internet, names)
    legacy_sizes = []
    closure_sizes = []

    start = time.perf_counter()
    for name in names:
        legacy_sizes.append(builder.build(name).tcb_size())
    legacy_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    for name in names:
        closure_sizes.append(builder.tcb_view(name).tcb_size())
    closure_elapsed = time.perf_counter() - start

    assert closure_sizes == legacy_sizes
    speedup = legacy_elapsed / closure_elapsed
    figure_writer.write(
        "engine_scaling", "Closure memoization vs. legacy graph copies",
        [f"names timed                 {len(names)}",
         f"legacy (descendants+copy)   {legacy_elapsed:.3f}s "
         f"({len(names) / legacy_elapsed:.0f} names/s)",
         f"closure (memoized view)     {closure_elapsed:.3f}s "
         f"({len(names) / closure_elapsed:.0f} names/s)",
         f"speedup                     {speedup:.1f}x"])
    assert speedup >= MIN_SPEEDUP, (
        f"closure path only {speedup:.1f}x faster than legacy path")


def test_bench_engine_survey_throughput(bench_internet, figure_writer,
                                        bench_metrics):
    """End-to-end engine survey throughput at BENCH_CONFIG scale.

    Documents names-surveyed/sec through the full staged pipeline (serial
    backend) so regressions in any stage show up in benchmark runs.
    """
    engine = SurveyEngine(
        bench_internet,
        config=EngineConfig(popular_count=BENCH_CONFIG.alexa_count))
    start = time.perf_counter()
    results = engine.run()
    elapsed = time.perf_counter() - start
    throughput = len(results) / elapsed
    figure_writer.write(
        "engine_throughput", "Engine survey throughput (serial backend)",
        [f"names surveyed              {len(results)}",
         f"elapsed                     {elapsed:.2f}s",
         f"throughput                  {throughput:.0f} names/s"])
    bench_metrics.record("engine_survey_throughput", names=len(results),
                         elapsed_s=round(elapsed, 4),
                         names_per_s=round(throughput, 1))
    assert results.headline()["names_resolved"] > 0
    assert throughput > 50, "engine should sustain >50 names/s at bench scale"
