"""Integer-interned graph core: the name table and the CSR dependency universe.

The survey is fundamentally a transitive-closure computation over hundreds of
thousands of names, and the engine's hot loops (closure unions, the min-cut
and availability recursions, Monte-Carlo trials) used to round-trip through
``(kind, DomainName)`` tuples, Python ``set``s, and a ``networkx.DiGraph``.
Every membership test hashed a label tuple; every closure union copied a
``frozenset``.

This module provides the compact core those loops now run on:

* :class:`NameTable` — interns every :class:`~repro.dns.name.DomainName`
  seen during discovery into a dense integer id (and back);
* :class:`DependencyUniverse` — the shared dependency graph over integer
  node ids, with per-kind node typing, insertion-ordered adjacency (so
  iteration order matches what a ``networkx.DiGraph`` built by the same
  edge sequence would produce), reverse edges for ancestor invalidation,
  a dense *nameserver slot* per NS node (the bit position used by bitset
  closures, TCB masks, and Monte-Carlo masks), and a CSR
  (offsets/targets) snapshot rebuilt lazily when the graph has grown;
* :class:`KeyGraph` — a tiny insertion-ordered digraph over ``(kind,
  DomainName)`` node keys, used for materialised per-name subgraph copies
  (:meth:`~repro.core.delegation.DelegationGraphBuilder.build`) so that
  ``core.delegation`` no longer needs ``networkx`` at all.

Node keys versus node ids
-------------------------

Integer ids are *process-local and builder-local*: two worker shards
discovering the same universe assign different ids to the same node, and the
``process`` backend must therefore never ship raw ids over the pipe.  The
NodeKey tuple API (``add_edge``, ``successors``, ``nodes``, ``edges``, ...)
remains the stable, name-based boundary — ids live only inside one builder's
closure index, analyzers, and memos, and are translated back to
:class:`~repro.dns.name.DomainName` at the record/snapshot boundary.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dns.name import DomainName

#: Node kinds (string constants shared with :mod:`repro.core.delegation`).
NAME_KIND = "name"
ZONE_KIND = "zone"
NS_KIND = "ns"

#: Integer codes for the three node kinds.
NAME_CODE = 0
ZONE_CODE = 1
NS_CODE = 2

KIND_CODES: Dict[str, int] = {NAME_KIND: NAME_CODE, ZONE_KIND: ZONE_CODE,
                              NS_KIND: NS_CODE}
KIND_STRINGS: Tuple[str, str, str] = (NAME_KIND, ZONE_KIND, NS_KIND)

NodeKey = Tuple[str, DomainName]


class NameTable:
    """Interns :class:`DomainName` instances into dense integer ids.

    Ids are assigned in first-seen order and never reused; the table is
    append-only, so an id handed out once stays valid for the lifetime of
    the table.
    """

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: Dict[DomainName, int] = {}
        self._names: List[DomainName] = []

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: DomainName) -> bool:
        return name in self._ids

    def intern(self, name: DomainName) -> int:
        """The id for ``name``, assigning the next dense id if unseen."""
        ids = self._ids
        found = ids.get(name)
        if found is None:
            found = len(self._names)
            ids[name] = found
            self._names.append(name)
        return found

    def id_of(self, name: DomainName) -> Optional[int]:
        """The id for ``name``, or ``None`` if it was never interned."""
        return self._ids.get(name)

    def name_of(self, name_id: int) -> DomainName:
        """The :class:`DomainName` interned under ``name_id``."""
        return self._names[name_id]


class DependencyUniverse:
    """The shared dependency graph over integer-interned nodes.

    Nodes are ``(kind, DomainName)`` pairs interned to dense integer ids;
    edges are stored twice (forward adjacency for closure/analysis walks,
    reverse adjacency for ancestor invalidation), both insertion-ordered.
    Every NS node additionally receives a dense *slot* — the bit position
    that represents the server in closure bitsets, TCB masks, vulnerability
    masks, and Monte-Carlo sample masks.

    The class speaks two dialects:

    * the **integer API** (``ensure_id`` / ``find_id`` / ``out_ids`` /
      ``csr`` / ...) used by the hot paths, and
    * a **NodeKey duck API** (``add_edge`` / ``successors`` / ``nodes`` /
      ``edges`` / ``__contains__`` / ...) mirroring the subset of the
      ``networkx.DiGraph`` surface the rest of the code base and the test
      suite use, so hand-built universes keep working without networkx.
    """

    __slots__ = ("names", "_ids", "kinds", "name_ids", "out", "inn",
                 "ns_slots", "slot_hosts", "slot_nodes", "_edge_count",
                 "mutations", "_csr", "_csr_mutations")

    def __init__(self, names: Optional[NameTable] = None) -> None:
        self.names = names if names is not None else NameTable()
        #: (name_id * 3 + kind_code) -> node id; packed-int keys hash as
        #: themselves, so lookups never touch DomainName.__hash__.
        self._ids: Dict[int, int] = {}
        self.kinds = array("b")          #: kind code per node id
        self.name_ids = array("l")       #: name-table id per node id
        self.out: List[List[int]] = []   #: forward adjacency (insertion order)
        self.inn: List[List[int]] = []   #: reverse adjacency
        self.ns_slots = array("l")       #: NS slot per node id (-1 otherwise)
        self.slot_hosts: List[DomainName] = []   #: slot -> hostname
        self.slot_nodes = array("l")     #: slot -> node id
        self._edge_count = 0
        #: Bumped on every node or edge addition; derived caches (CSR
        #: snapshot, closure splits) key on it.
        self.mutations = 0
        self._csr: Optional[Tuple[array, array]] = None
        self._csr_mutations = -1

    # -- integer API ----------------------------------------------------------------

    def ensure_id(self, kind_code: int, name: DomainName) -> int:
        """The node id for ``(kind, name)``, creating the node if needed."""
        packed = self.names.intern(name) * 3 + kind_code
        ids = self._ids
        found = ids.get(packed)
        if found is None:
            found = len(self.kinds)
            ids[packed] = found
            self.kinds.append(kind_code)
            self.name_ids.append(packed // 3)
            self.out.append([])
            self.inn.append([])
            if kind_code == NS_CODE:
                slot = len(self.slot_hosts)
                self.ns_slots.append(slot)
                self.slot_hosts.append(name)
                self.slot_nodes.append(found)
            else:
                self.ns_slots.append(-1)
            self.mutations += 1
        return found

    def find_id(self, kind_code: int, name: DomainName) -> Optional[int]:
        """The node id for ``(kind, name)``, or ``None`` if absent."""
        name_id = self.names.id_of(name)
        if name_id is None:
            return None
        return self._ids.get(name_id * 3 + kind_code)

    def add_edge_ids(self, source: int, target: int) -> bool:
        """Add ``source -> target``; returns False if it already existed."""
        row = self.out[source]
        if target in row:
            return False
        row.append(target)
        self.inn[target].append(source)
        self._edge_count += 1
        self.mutations += 1
        return True

    def clear_out_edges(self, source: int) -> int:
        """Remove every ``source -> *`` edge; returns how many were removed.

        The delta-survey surgery path: when a journal records that a node's
        dependency set changed, the node's forward adjacency is rebuilt from
        scratch (:meth:`set_out_edges` or a fresh discovery walk) so the row
        ends up in the exact order a cold discovery would have produced —
        successor order feeds the min-cut recursion and the chain keys, so
        it must match the cold run byte for byte.
        """
        row = self.out[source]
        if not row:
            return 0
        removed = len(row)
        inn = self.inn
        for target in row:
            inn[target].remove(source)
        self.out[source] = []
        self._edge_count -= removed
        self.mutations += 1
        return removed

    def set_out_edges(self, source: int, targets: List[int]) -> None:
        """Replace ``source``'s forward adjacency with ``targets`` (in order).

        Duplicate targets are collapsed to their first occurrence, matching
        what repeated :meth:`add_edge_ids` calls would build.
        """
        self.clear_out_edges(source)
        for target in targets:
            self.add_edge_ids(source, target)

    def node_name(self, node_id: int) -> DomainName:
        """The :class:`DomainName` of ``node_id``."""
        return self.names.name_of(self.name_ids[node_id])

    def key_of(self, node_id: int) -> NodeKey:
        """The ``(kind, DomainName)`` key of ``node_id``."""
        return (KIND_STRINGS[self.kinds[node_id]],
                self.names.name_of(self.name_ids[node_id]))

    def slot_count(self) -> int:
        """How many NS slots (bit positions) have been assigned."""
        return len(self.slot_hosts)

    def mask_to_hosts(self, mask: int) -> List[DomainName]:
        """Materialise a slot bitset into its hostnames (slot order)."""
        hosts = self.slot_hosts
        out: List[DomainName] = []
        slot = 0
        while mask:
            chunk = mask & 0xFFFFFFFF
            while chunk:
                low = chunk & -chunk
                out.append(hosts[slot + low.bit_length() - 1])
                chunk ^= low
            mask >>= 32
            slot += 32
        return out

    def csr(self) -> Tuple[array, array]:
        """The forward adjacency as CSR ``(offsets, targets)`` arrays.

        Rebuilt lazily whenever the universe has grown since the last
        snapshot (one linear pass).  During discovery the graph grows
        between closure queries, so the hot loops iterate the growable
        ``out`` rows and only pick the frozen arrays up via
        :meth:`csr_if_fresh`; once the universe stops changing (post-run
        inspection, sharded-merge recomputation, equivalence tooling) the
        snapshot stays valid and the closure Tarjan walks it instead.
        """
        if self._csr is None or self._csr_mutations != self.mutations:
            offsets = array("l")
            targets = array("l")
            total = 0
            offsets.append(0)
            for row in self.out:
                total += len(row)
                offsets.append(total)
                targets.extend(row)
            self._csr = (offsets, targets)
            self._csr_mutations = self.mutations
        return self._csr

    def csr_if_fresh(self) -> Optional[Tuple[array, array]]:
        """The CSR snapshot if it still matches the graph, else ``None``.

        Never triggers a rebuild — the cheap staleness probe hot loops use
        to pick the frozen arrays up opportunistically.
        """
        if self._csr is not None and self._csr_mutations == self.mutations:
            return self._csr
        return None

    # -- NodeKey duck API (networkx.DiGraph subset) ----------------------------------

    def ensure_key(self, key: NodeKey) -> int:
        """Node id for a ``(kind, DomainName)`` key, creating if needed."""
        return self.ensure_id(KIND_CODES[key[0]], key[1])

    def find_key(self, key: NodeKey) -> Optional[int]:
        """Node id for a key, or ``None`` if absent."""
        kind_code = KIND_CODES.get(key[0])
        if kind_code is None:
            return None
        return self.find_id(kind_code, key[1])

    def add_node(self, key: NodeKey) -> None:
        self.ensure_key(key)

    def add_edge(self, source: NodeKey, target: NodeKey) -> None:
        self.add_edge_ids(self.ensure_key(source), self.ensure_key(target))

    def has_edge(self, source: NodeKey, target: NodeKey) -> bool:
        source_id = self.find_key(source)
        if source_id is None:
            return False
        target_id = self.find_key(target)
        if target_id is None:
            return False
        return target_id in self.out[source_id]

    def __contains__(self, key) -> bool:
        try:
            return self.find_key(key) is not None
        except (TypeError, IndexError):
            return False

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def nodes(self) -> Iterator[NodeKey]:
        """Node keys in insertion (id) order."""
        return (self.key_of(node_id) for node_id in range(len(self.kinds)))

    @property
    def edges(self) -> Iterator[Tuple[NodeKey, NodeKey]]:
        """Edge keys, grouped by source node in insertion order."""
        return ((self.key_of(source), self.key_of(target))
                for source in range(len(self.kinds))
                for target in self.out[source])

    def successors(self, key: NodeKey) -> Iterator[NodeKey]:
        node_id = self.find_key(key)
        if node_id is None:
            raise KeyError(f"node {key!r} not in universe")
        return (self.key_of(target) for target in self.out[node_id])

    def predecessors(self, key: NodeKey) -> Iterator[NodeKey]:
        node_id = self.find_key(key)
        if node_id is None:
            raise KeyError(f"node {key!r} not in universe")
        return (self.key_of(source) for source in self.inn[node_id])

    def number_of_nodes(self) -> int:
        return len(self.kinds)

    def number_of_edges(self) -> int:
        return self._edge_count

    # -- projections -----------------------------------------------------------------

    def reachable_ids(self, source: int) -> List[int]:
        """Every node reachable from ``source`` (source included), DFS order."""
        seen = {source}
        stack = [source]
        out = self.out
        order = [source]
        while stack:
            for target in out[stack.pop()]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
                    order.append(target)
        return order

    def subgraph_copy(self, source: int) -> "KeyGraph":
        """A materialised :class:`KeyGraph` of everything ``source`` reaches."""
        members = self.reachable_ids(source)
        members.sort()  # insertion (discovery) order, matching the universe
        keep = set(members)
        graph = KeyGraph()
        for node_id in members:
            graph.add_node(self.key_of(node_id))
        for node_id in members:
            source_key = self.key_of(node_id)
            for target in self.out[node_id]:
                if target in keep:
                    graph.add_edge(source_key, self.key_of(target))
        return graph

    def merge(self, other: "DependencyUniverse") -> None:
        """Adopt every node and edge of ``other`` (ids are re-interned)."""
        translation = array("l", bytes(8 * len(other.kinds)))
        for node_id in range(len(other.kinds)):
            translation[node_id] = self.ensure_id(
                other.kinds[node_id],
                other.names.name_of(other.name_ids[node_id]))
        for source in range(len(other.kinds)):
            mapped = translation[source]
            for target in other.out[source]:
                self.add_edge_ids(mapped, translation[target])


class KeyGraph:
    """A minimal insertion-ordered digraph over ``(kind, DomainName)`` keys.

    Implements the same ``networkx.DiGraph`` surface subset as
    :class:`DependencyUniverse` — enough for :class:`DelegationGraph`, the
    exporters, and the generic (non-integer) analysis recursions — without
    importing networkx.  Materialised per-name subgraph copies are built on
    this class.
    """

    __slots__ = ("_succ", "_pred")

    def __init__(self) -> None:
        self._succ: Dict[NodeKey, Dict[NodeKey, None]] = {}
        self._pred: Dict[NodeKey, Dict[NodeKey, None]] = {}

    def add_node(self, key: NodeKey) -> None:
        if key not in self._succ:
            self._succ[key] = {}
            self._pred[key] = {}

    def add_edge(self, source: NodeKey, target: NodeKey) -> None:
        self.add_node(source)
        self.add_node(target)
        self._succ[source][target] = None
        self._pred[target][source] = None

    def has_edge(self, source: NodeKey, target: NodeKey) -> bool:
        return target in self._succ.get(source, ())

    def __contains__(self, key) -> bool:
        return key in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def nodes(self):
        return self._succ.keys()

    @property
    def edges(self) -> Iterator[Tuple[NodeKey, NodeKey]]:
        return ((source, target) for source, targets in self._succ.items()
                for target in targets)

    def successors(self, key: NodeKey) -> Iterator[NodeKey]:
        return iter(self._succ[key])

    def predecessors(self, key: NodeKey) -> Iterator[NodeKey]:
        return iter(self._pred[key])

    def number_of_nodes(self) -> int:
        return len(self._succ)

    def number_of_edges(self) -> int:
        return sum(len(targets) for targets in self._succ.values())
