"""Delegation graphs: the transitive closure of nameserver dependencies.

Section 2 of the paper defines the delegation graph of a domain name as the
transitive closure of all nameservers that could be involved in its
resolution: the name depends on every zone on its delegation path; each zone
depends on each of its nameservers; and each nameserver's own hostname must
in turn be resolved, which drags in the zones (and nameservers) on *its*
delegation path, and so on.

:class:`DelegationGraphBuilder` discovers this structure by issuing real
queries through an :class:`~repro.dns.resolver.IterativeResolver` — exactly
what the survey did against the live Internet — and accumulates everything it
learns in a shared *universe* graph so that work is never repeated across the
hundreds of thousands of names in a survey.  Two projections of the universe
are offered:

* :meth:`DelegationGraphBuilder.build` materialises a full
  :class:`DelegationGraph` (a copied subgraph) for interactive inspection
  and hijack-path extraction;
* :meth:`DelegationGraphBuilder.tcb_view` returns a zero-copy
  :class:`TCBView` whose TCB comes from a memoized per-node closure index
  (:class:`ClosureIndex`) — the fast path the survey engine uses, which
  never copies a graph and never recomputes a closure that is already
  known.

Graph encoding
--------------

Nodes are ``(kind, DomainName)`` tuples where ``kind`` is ``"name"``,
``"zone"``, or ``"ns"``.  Edges point from the dependent entity to the
entity it depends on:

* ``(name, X) -> (zone, Z)`` for every zone ``Z`` on ``X``'s delegation path;
* ``(zone, Z) -> (ns, H)`` for every nameserver ``H`` delegated to serve ``Z``;
* ``(ns, H) -> (zone, Z')`` for every zone ``Z'`` on the delegation path of
  the hostname ``H``.

Root servers (and the root zone) are excluded, matching the paper's
accounting.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx

from repro.dns.errors import ResolutionError
from repro.dns.name import DomainName, NameLike
from repro.dns.resolver import IterativeResolver, ZoneCut

#: Node kinds used in the delegation graph.
NAME_KIND = "name"
ZONE_KIND = "zone"
NS_KIND = "ns"

NodeKey = Tuple[str, DomainName]

#: Hostname suffixes excluded from TCBs by default (the root servers).
DEFAULT_EXCLUDED_SUFFIXES: Tuple[str, ...] = ("root-servers.net",)


def name_node(name: NameLike) -> NodeKey:
    """Node key for a surveyed domain name."""
    return (NAME_KIND, DomainName(name))


def zone_node(name: NameLike) -> NodeKey:
    """Node key for a zone apex."""
    return (ZONE_KIND, DomainName(name))


def ns_node(name: NameLike) -> NodeKey:
    """Node key for a nameserver hostname."""
    return (NS_KIND, DomainName(name))


class ClosureIndex:
    """Memoized nameserver closures over a (possibly cyclic) universe graph.

    For every node the index answers "which non-excluded nameserver hostnames
    are reachable from here?" with a shared :class:`frozenset`.  Closures are
    computed with an iterative Tarjan SCC pass — mutually dependent zones
    (mutual secondaries) collapse into one component sharing one closure —
    and memoized per node, so surveying name *N+1* only ever explores the
    part of the universe that no earlier name reached.

    The builder keeps the memo correct as the universe grows: whenever a node
    that already existed gains a new out-edge, the memo entries of that node
    and of everything that can reach it are dropped (see :meth:`invalidate`).
    Companion memos (e.g. the survey engine's shared bottleneck memo) can be
    registered to be purged on the same events.
    """

    def __init__(self, graph: nx.DiGraph,
                 excluded_suffixes: Sequence[DomainName] = ()):
        self._graph = graph
        self._excluded = tuple(DomainName(s) for s in excluded_suffixes)
        self._memo: Dict[NodeKey, FrozenSet[DomainName]] = {}
        self._adjacency: Dict[NodeKey,
                              Tuple[List[NodeKey], List[NodeKey]]] = {}
        self._companions: List[MutableMapping[NodeKey, object]] = []
        self.computations = 0
        self.invalidations = 0
        #: Bumped whenever memoized state is actually dropped; callers that
        #: key derived caches on graph structure can compare versions
        #: instead of registering a per-node companion.
        self.version = 0

    def __len__(self) -> int:
        return len(self._memo)

    def register_companion(self,
                           memo: MutableMapping[NodeKey, object]) -> None:
        """Purge ``memo``'s entries alongside this index's on invalidation."""
        self._companions.append(memo)

    def _own_contribution(self, node: NodeKey) -> Set[DomainName]:
        kind, name = node
        if kind == NS_KIND and not any(
                name.is_subdomain_of(suffix) for suffix in self._excluded):
            return {name}
        return set()

    def closure(self, node: NodeKey) -> FrozenSet[DomainName]:
        """The set of non-excluded nameservers reachable from ``node``."""
        memo = self._memo
        cached = memo.get(node)
        if cached is not None:
            return cached
        graph = self._graph
        if node not in graph:
            return frozenset()

        # Iterative Tarjan: SCCs are closed in reverse topological order, so
        # when a component is popped every successor outside it is already
        # memoized and the component's closure is the union of its members'
        # own contributions and those successor closures.
        index: Dict[NodeKey, int] = {}
        low: Dict[NodeKey, int] = {}
        on_stack: Set[NodeKey] = set()
        scc_stack: List[NodeKey] = []
        partial: Dict[NodeKey, Set[DomainName]] = {}
        work: List[Tuple[NodeKey, Iterator[NodeKey]]] = []
        counter = 0

        def open_node(n: NodeKey) -> None:
            nonlocal counter
            index[n] = low[n] = counter
            counter += 1
            scc_stack.append(n)
            on_stack.add(n)
            partial[n] = self._own_contribution(n)
            work.append((n, iter(graph.successors(n))))

        open_node(node)
        while work:
            current, successors = work[-1]
            descended = False
            for succ in successors:
                done = memo.get(succ)
                if done is not None:
                    partial[current] |= done
                elif succ not in index:
                    open_node(succ)
                    descended = True
                    break
                elif succ in on_stack:
                    if index[succ] < low[current]:
                        low[current] = index[succ]
            if descended:
                continue
            work.pop()
            if low[current] == index[current]:
                members: List[NodeKey] = []
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    if member == current:
                        break
                union: Set[DomainName] = set()
                for member in members:
                    union |= partial.pop(member)
                shared = frozenset(union)
                for member in members:
                    memo[member] = shared
                self.computations += len(members)
            if work:
                parent = work[-1][0]
                if low[current] < low[parent]:
                    low[parent] = low[current]
                finished = memo.get(current)
                if finished is not None:
                    partial[parent] |= finished
        return memo[node]

    def successors_split(self, node: NodeKey
                         ) -> Tuple[List[NodeKey], List[NodeKey]]:
        """The node's successors split into (zones, nameservers).

        Successor order is preserved.  The split lists are cached (the
        bottleneck recursion reads them millions of times per survey) and
        dropped by the same invalidation pass as the closures; callers must
        not mutate them.
        """
        cached = self._adjacency.get(node)
        if cached is not None:
            return cached
        zones: List[NodeKey] = []
        nameservers: List[NodeKey] = []
        if node not in self._graph:
            # Not cached: the node may be added (with edges) later, which
            # would not trigger invalidation for a first-ever edge.
            return (zones, nameservers)
        for succ in self._graph.successors(node):
            if succ[0] == ZONE_KIND:
                zones.append(succ)
            elif succ[0] == NS_KIND:
                nameservers.append(succ)
        split = (zones, nameservers)
        self._adjacency[node] = split
        return split

    def clear(self) -> None:
        """Drop every memoized closure (companion memos included)."""
        self._memo.clear()
        self._adjacency.clear()
        for companion in self._companions:
            companion.clear()
        self.version += 1

    def invalidate(self, node: NodeKey) -> None:
        """Drop memoized closures for ``node`` and everything reaching it."""
        if not self._memo and not self._adjacency \
                and not any(self._companions):
            return
        if node not in self._graph:
            return
        seen = {node}
        stack = [node]
        dropped = 0
        predecessors = self._graph.predecessors
        while stack:
            current = stack.pop()
            if self._memo.pop(current, None) is not None:
                self.invalidations += 1
                dropped += 1
            if self._adjacency.pop(current, None) is not None:
                dropped += 1
            for companion in self._companions:
                if companion.pop(current, None) is not None:
                    dropped += 1
            for pred in predecessors(current):
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        if dropped:
            self.version += 1


class DelegationView:
    """Read-only accessors shared by :class:`DelegationGraph` / :class:`TCBView`.

    Subclasses provide ``target`` (the surveyed name), ``graph`` (a DiGraph
    in the module's node encoding that contains at least everything reachable
    from the target), ``excluded_suffixes``, and an implementation of
    :meth:`tcb`.  All structure accessors follow successor edges from the
    target, so they observe exactly the nodes a per-name subgraph copy would
    contain even when ``graph`` is the whole shared universe.
    """

    target: DomainName
    graph: nx.DiGraph
    excluded_suffixes: Tuple[DomainName, ...]

    # -- TCB ------------------------------------------------------------------

    def tcb(self) -> Set[DomainName]:
        """The trusted computing base: nameservers the target depends on."""
        raise NotImplementedError

    def tcb_size(self) -> int:
        """Number of nameservers in the TCB."""
        return len(self.tcb())

    def _is_excluded(self, hostname: DomainName) -> bool:
        return any(hostname.is_subdomain_of(suffix)
                   for suffix in self.excluded_suffixes)

    # -- structure accessors used by the bottleneck analysis -----------------------

    def zones_of(self, node: NodeKey) -> List[NodeKey]:
        """Zone successors of a name or nameserver node."""
        return [succ for succ in self.graph.successors(node)
                if succ[0] == ZONE_KIND]

    def nameservers_of_zone(self, zone: NodeKey) -> List[NodeKey]:
        """Nameserver successors of a zone node."""
        return [succ for succ in self.graph.successors(zone)
                if succ[0] == NS_KIND]

    def direct_zones(self) -> List[DomainName]:
        """Zones on the target's own delegation path (its direct chain)."""
        return [key[1] for key in self.zones_of(name_node(self.target))]

    def authoritative_zone(self) -> Optional[DomainName]:
        """The deepest zone on the target's direct chain (its own zone)."""
        zones = self.direct_zones()
        if not zones:
            return None
        return max(zones, key=lambda z: z.depth)

    def in_bailiwick_servers(self) -> Set[DomainName]:
        """TCB members whose hostname lies inside the target's own zone.

        These are the servers "administered by the nameowner" in the paper's
        terminology (2.2 on average, versus a TCB of 46).
        """
        zone = self.authoritative_zone()
        if zone is None:
            return set()
        return {host for host in self.tcb() if host.is_subdomain_of(zone)}

    def dependency_path(self, hostname: NameLike) -> List[NodeKey]:
        """A shortest dependency path from the target to ``hostname``.

        Returns an empty list if the server is not in the graph.  The path
        alternates name/zone/nameserver nodes and reads like the fbi.gov
        anecdote: *name depends on zone, served by host, whose own zone
        depends on ...*.
        """
        source = name_node(self.target)
        destination = ns_node(hostname)
        if destination not in self.graph:
            return []
        try:
            return nx.shortest_path(self.graph, source, destination)
        except nx.NetworkXNoPath:
            return []


class DelegationGraph(DelegationView):
    """The delegation graph of a single domain name.

    Wraps a :class:`networkx.DiGraph` whose nodes follow the encoding
    described in the module docstring, and provides the accessors the
    analyses need (TCB extraction, zone/nameserver views, dependency paths).
    """

    def __init__(self, target: NameLike, graph: nx.DiGraph,
                 excluded_suffixes: Sequence[str] = DEFAULT_EXCLUDED_SUFFIXES):
        self.target = DomainName(target)
        self.graph = graph
        self.excluded_suffixes = tuple(DomainName(s) for s in excluded_suffixes)
        if name_node(self.target) not in graph:
            graph.add_node(name_node(self.target))

    # -- basic views -----------------------------------------------------------

    def nameservers(self, include_excluded: bool = False) -> List[DomainName]:
        """All nameserver hostnames in the graph."""
        hosts = [key[1] for key in self.graph.nodes if key[0] == NS_KIND]
        if not include_excluded:
            hosts = [h for h in hosts if not self._is_excluded(h)]
        return sorted(hosts)

    def zones(self) -> List[DomainName]:
        """All zone apexes in the graph."""
        return sorted(key[1] for key in self.graph.nodes if key[0] == ZONE_KIND)

    def tcb(self) -> Set[DomainName]:
        """The trusted computing base: nameservers the target depends on.

        Root servers are excluded, matching the paper's TCB accounting.
        """
        return {key[1] for key in self.graph.nodes
                if key[0] == NS_KIND and not self._is_excluded(key[1])}

    def node_count(self) -> int:
        """Total nodes (names + zones + nameservers) in the graph."""
        return self.graph.number_of_nodes()

    def edge_count(self) -> int:
        """Total dependency edges in the graph."""
        return self.graph.number_of_edges()

    def __repr__(self) -> str:
        return (f"DelegationGraph({self.target!s}, "
                f"{self.tcb_size()} nameservers, "
                f"{len(self.zones())} zones)")


class TCBView(DelegationView):
    """A zero-copy per-name view backed by the shared universe graph.

    Provides everything the TCB report and the bottleneck analysis need —
    :meth:`tcb` / :meth:`tcb_size` / :meth:`in_bailiwick_servers` /
    :meth:`zones_of` / :meth:`nameservers_of_zone` — without materialising a
    copied subgraph.  The TCB itself comes from the builder's
    :class:`ClosureIndex` and is fixed at construction time; ask the builder
    for a fresh view (or a full :class:`DelegationGraph`) after the universe
    has grown.
    """

    def __init__(self, target: NameLike, universe: nx.DiGraph,
                 closure: FrozenSet[DomainName],
                 excluded_suffixes: Sequence[str] = DEFAULT_EXCLUDED_SUFFIXES,
                 structure: Optional[ClosureIndex] = None):
        self.target = DomainName(target)
        self.graph = universe
        self.excluded_suffixes = tuple(DomainName(s) for s in excluded_suffixes)
        self._closure = closure
        self._structure = structure

    def zones_of(self, node: NodeKey) -> List[NodeKey]:
        if self._structure is None:
            return super().zones_of(node)
        return self._structure.successors_split(node)[0]

    def nameservers_of_zone(self, zone: NodeKey) -> List[NodeKey]:
        if self._structure is None:
            return super().nameservers_of_zone(zone)
        return self._structure.successors_split(zone)[1]

    def tcb(self) -> Set[DomainName]:
        return set(self._closure)

    def tcb_size(self) -> int:
        return len(self._closure)

    def tcb_frozen(self) -> FrozenSet[DomainName]:
        """The TCB as the shared (do-not-mutate) frozenset."""
        return self._closure

    def in_bailiwick_servers(self) -> Set[DomainName]:
        zone = self.authoritative_zone()
        if zone is None:
            return set()
        return {host for host in self._closure if host.is_subdomain_of(zone)}

    def __repr__(self) -> str:
        return f"TCBView({self.target!s}, {self.tcb_size()} nameservers)"


class DelegationGraphBuilder:
    """Builds delegation graphs by querying the (simulated) DNS.

    Parameters
    ----------
    resolver:
        The iterative resolver used to enumerate zone cuts.  Its cache is
        shared across all names in a survey.
    excluded_suffixes:
        Hostname suffixes never added to the graph (default: root servers).
    max_depth:
        Safety bound on the recursion depth through nameserver hostnames.
    """

    def __init__(self, resolver: IterativeResolver,
                 excluded_suffixes: Sequence[str] = DEFAULT_EXCLUDED_SUFFIXES,
                 max_depth: int = 150):
        self.resolver = resolver
        self.excluded_suffixes = tuple(DomainName(s) for s in excluded_suffixes)
        self.max_depth = max_depth
        self._universe = nx.DiGraph()
        self._closures = ClosureIndex(self._universe, self.excluded_suffixes)
        self._chain_cache: Dict[DomainName, List[ZoneCut]] = {}
        self._expanded_hosts: Set[DomainName] = set()
        self._expanded_names: Set[DomainName] = set()
        self.queries_saved_by_cache = 0

    # -- public ---------------------------------------------------------------------

    @property
    def universe(self) -> nx.DiGraph:
        """The shared dependency graph accumulated across all builds."""
        return self._universe

    @property
    def closures(self) -> ClosureIndex:
        """The memoized closure index over the universe."""
        return self._closures

    def build(self, name: NameLike) -> DelegationGraph:
        """Build (or retrieve from the universe) the graph for ``name``.

        Materialises a copied per-name subgraph — use :meth:`tcb_view` when
        only the TCB / bottleneck accessors are needed.
        """
        target = DomainName(name)
        self._ensure_name(target)
        source = name_node(target)
        reachable = nx.descendants(self._universe, source) | {source}
        subgraph = self._universe.subgraph(reachable).copy()
        return DelegationGraph(target, subgraph,
                               excluded_suffixes=self.excluded_suffixes)

    def tcb_view(self, name: NameLike) -> TCBView:
        """Discover ``name`` and return a zero-copy view of its closure."""
        target = DomainName(name)
        self._ensure_name(target)
        closure = self._closures.closure(name_node(target))
        return TCBView(target, self._universe, closure,
                       excluded_suffixes=self.excluded_suffixes,
                       structure=self._closures)

    def closure_of(self, name: NameLike) -> FrozenSet[DomainName]:
        """The memoized TCB of ``name`` (discovering it if needed)."""
        target = DomainName(name)
        self._ensure_name(target)
        return self._closures.closure(name_node(target))

    def absorb(self, other: "DelegationGraphBuilder") -> None:
        """Fold another builder's discovered universe into this one.

        Used by the sharded survey backends to merge per-shard universes
        back into the primary builder: nodes, edges, chain caches, and
        expansion markers are adopted, and the closure memo is reset because
        merged edges may extend existing closures.
        """
        self._universe.update(other._universe)
        self._chain_cache.update(other._chain_cache)
        self._expanded_hosts |= other._expanded_hosts
        self._expanded_names |= other._expanded_names
        self._closures.clear()

    def build_many(self, names: Iterable[NameLike]) -> Dict[DomainName, DelegationGraph]:
        """Build graphs for many names, sharing every intermediate result."""
        graphs: Dict[DomainName, DelegationGraph] = {}
        for name in names:
            graph = self.build(name)
            graphs[graph.target] = graph
        return graphs

    def chain(self, name: NameLike) -> List[ZoneCut]:
        """The (cached) zone-cut chain for a name or hostname."""
        key = DomainName(name)
        cached = self._chain_cache.get(key)
        if cached is not None:
            self.queries_saved_by_cache += 1
            return cached
        try:
            cuts = self.resolver.zone_cut_chain(key)
        except ResolutionError:
            cuts = []
        self._chain_cache[key] = cuts
        return cuts

    def discovered_nameservers(self) -> Set[DomainName]:
        """Every nameserver hostname discovered so far (survey-wide)."""
        return {key[1] for key in self._universe.nodes if key[0] == NS_KIND}

    # -- internals --------------------------------------------------------------------

    def _is_excluded(self, hostname: DomainName) -> bool:
        return any(hostname.is_subdomain_of(suffix)
                   for suffix in self.excluded_suffixes)

    def _add_edge(self, dependent: NodeKey, dependency: NodeKey) -> None:
        """Add a dependency edge, invalidating stale closures if needed."""
        universe = self._universe
        if universe.has_edge(dependent, dependency):
            return
        known = dependent in universe
        universe.add_edge(dependent, dependency)
        if known:
            # The dependent (and everything that reaches it) may have a
            # memoized closure that no longer covers this new dependency.
            self._closures.invalidate(dependent)

    def _ensure_name(self, target: DomainName) -> None:
        """Add the target name's chain (and its closure) to the universe."""
        if target in self._expanded_names:
            return
        self._expanded_names.add(target)
        source = name_node(target)
        self._universe.add_node(source)
        for cut in self.chain(target):
            self._add_zone_cut(source, cut, depth=0)

    def _add_zone_cut(self, dependent: NodeKey, cut: ZoneCut,
                      depth: int) -> None:
        """Record ``dependent -> zone -> nameservers`` and expand hostnames."""
        znode = zone_node(cut.zone)
        self._add_edge(dependent, znode)
        for hostname in cut.nameservers:
            if self._is_excluded(hostname):
                continue
            hnode = ns_node(hostname)
            self._add_edge(znode, hnode)
            self._expand_host(hostname, depth + 1)

    def _expand_host(self, hostname: DomainName, depth: int) -> None:
        """Add a nameserver hostname's own dependency chain to the universe."""
        if hostname in self._expanded_hosts:
            return
        if depth > self.max_depth:
            return
        self._expanded_hosts.add(hostname)
        hnode = ns_node(hostname)
        self._universe.add_node(hnode)
        for cut in self.chain(hostname):
            self._add_zone_cut(hnode, cut, depth)
