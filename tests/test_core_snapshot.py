"""Tests for :mod:`repro.core.snapshot`."""

import json

import pytest

from repro.core.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    load_results,
    results_from_dict,
    results_to_dict,
    save_results,
)


def test_roundtrip_through_dict(small_survey):
    payload = results_to_dict(small_survey)
    assert payload["format_version"] == SNAPSHOT_FORMAT_VERSION
    restored = results_from_dict(payload)
    assert len(restored) == len(small_survey)
    assert restored.vulnerable_servers == small_survey.vulnerable_servers
    assert restored.popular_names == small_survey.popular_names
    assert restored.server_names_controlled == \
        small_survey.server_names_controlled


def test_roundtrip_preserves_headline(small_survey):
    restored = results_from_dict(results_to_dict(small_survey))
    original = small_survey.headline()
    recovered = restored.headline()
    for key, value in original.items():
        assert recovered[key] == pytest.approx(value), key


def test_roundtrip_preserves_record_fields(small_survey):
    restored = results_from_dict(results_to_dict(small_survey))
    original = {str(r.name): r for r in small_survey.records}
    for record in restored.records:
        source = original[str(record.name)]
        assert record.tcb_size == source.tcb_size
        assert record.classification == source.classification
        assert record.tcb_servers == source.tcb_servers
        assert record.mincut_servers == source.mincut_servers


def test_roundtrip_preserves_fingerprints(small_survey):
    restored = results_from_dict(results_to_dict(small_survey))
    assert set(restored.fingerprints) == set(small_survey.fingerprints)
    for hostname, result in list(small_survey.fingerprints.items())[:20]:
        recovered = restored.fingerprints[hostname]
        assert recovered.banner == result.banner
        assert recovered.vulnerabilities == result.vulnerabilities


def test_save_and_load_file(small_survey, tmp_path):
    path = save_results(small_survey, tmp_path / "nested" / "snapshot.json",
                        indent=1)
    assert path.exists()
    with path.open() as handle:
        raw = json.load(handle)
    assert raw["format_version"] == SNAPSHOT_FORMAT_VERSION
    restored = load_results(path)
    assert len(restored) == len(small_survey)
    assert restored.metadata == small_survey.metadata


def test_unsupported_version_rejected(small_survey):
    payload = results_to_dict(small_survey)
    payload["format_version"] = 999
    with pytest.raises(ValueError):
        results_from_dict(payload)
