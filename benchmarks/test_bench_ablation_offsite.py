"""Ablations: the design choices DESIGN.md calls out.

* **Off-site secondaries** — the paper attributes large TCBs to
  administrators delegating to remote secondaries for availability.  The
  ablation sweeps ``offsite_secondary_prob`` and shows TCBs shrinking when
  universities stop slaving each other's zones.
* **Glue records** — glue short-circuits lookups but is not authoritative;
  resolution with and without glue must agree on answers while differing in
  query count.
* **Hygiene scale** — sensitivity of the "names affected" fraction to the
  underlying vulnerable-server fraction.
"""

import pytest

from repro.core.survey import Survey
from repro.topology.generator import GeneratorConfig, InternetGenerator

#: Small configuration shared by the ablation sweeps (each point regenerates
#: the Internet, so they must stay cheap).
ABLATION_BASE = dict(
    seed=20040722, sld_count=260, directory_name_count=420,
    university_count=60, hosting_provider_count=14, isp_count=10,
    alexa_count=60)


def _survey_with(**overrides):
    config = GeneratorConfig(**{**ABLATION_BASE, **overrides})
    internet = InternetGenerator(config).generate()
    return Survey(internet, popular_count=60).run()


def test_ablation_offsite_secondaries(benchmark, figure_writer):
    """Sweep the probability that universities use off-site secondaries."""
    def sweep():
        results = {}
        for probability in (0.0, 0.5, 1.0):
            survey = _survey_with(offsite_secondary_prob=probability)
            results[probability] = survey.headline()["mean_tcb_size"]
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    lines = ["offsite_secondary_prob -> mean TCB size"]
    for probability, mean in sorted(results.items()):
        lines.append(f"  {probability:.1f} -> {mean:7.1f}")
    lines.append("")
    lines.append("(the paper's availability-vs-security dilemma: more "
                 "off-site secondaries = larger TCBs)")
    figure_writer.write("ablation_offsite_secondaries",
                        "Ablation: off-site secondary probability", lines)

    assert results[1.0] > results[0.0], \
        "off-site secondaries must inflate TCBs"
    assert results[0.5] >= results[0.0]


def test_ablation_glue_semantics(benchmark, bench_internet, paper_survey):
    """Glue changes the number of queries, never the answers or the TCB."""
    names = [record.name for record in paper_survey.resolved_records()[:25]]

    def resolve_both_ways():
        with_glue = bench_internet.make_resolver(use_glue=True)
        without_glue = bench_internet.make_resolver(use_glue=False)
        pairs = []
        for name in names:
            a = with_glue.resolve(name)
            b = without_glue.resolve(name)
            pairs.append((a, b))
        return pairs

    pairs = benchmark.pedantic(resolve_both_ways, iterations=1, rounds=1)
    extra_queries = 0
    for with_glue, without_glue in pairs:
        assert sorted(with_glue.addresses) == sorted(without_glue.addresses)
        assert without_glue.query_count >= with_glue.query_count
        extra_queries += without_glue.query_count - with_glue.query_count
    assert extra_queries > 0, \
        "disabling glue must force extra nameserver-address lookups"


@pytest.mark.parametrize("scale,expectation", [(0.85, "more"), (1.15, "fewer")])
def test_ablation_hygiene_scale(scale, expectation, figure_writer):
    """The 45 %-of-names result tracks the underlying hygiene level."""
    baseline = _survey_with()
    adjusted = _survey_with(hygiene_scale=scale)
    base_fraction = baseline.fraction_with_vulnerable_dependency()
    new_fraction = adjusted.fraction_with_vulnerable_dependency()
    figure_writer.write(
        f"ablation_hygiene_{scale}",
        f"Ablation: hygiene scale {scale}",
        [f"baseline affected fraction: {base_fraction:.3f}",
         f"scaled   affected fraction: {new_fraction:.3f}"])
    if expectation == "more":
        assert new_fraction >= base_fraction
    else:
        assert new_fraction <= base_fraction
