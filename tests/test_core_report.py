"""Tests for :mod:`repro.core.report`."""

import pytest
from hypothesis import given, strategies as st

from repro.core.report import (
    CDFSeries,
    average_by_group,
    format_table,
    histogram,
    rank_series,
    sort_groups_descending,
    summary_stats,
)


# -- CDF ---------------------------------------------------------------------------

def test_cdf_from_values_basic():
    cdf = CDFSeries.from_values([1, 2, 3, 4])
    assert len(cdf) == 4
    assert cdf.points[0] == (1.0, 25.0)
    assert cdf.points[-1] == (4.0, 100.0)


def test_cdf_percentile_at_and_value_at():
    cdf = CDFSeries.from_values([10, 20, 30, 40, 50])
    assert cdf.percentile_at(30) == 60.0
    assert cdf.percentile_at(5) == 0.0
    assert cdf.percentile_at(100) == 100.0
    assert cdf.value_at_percentile(50) == 30
    assert cdf.value_at_percentile(100) == 50
    assert cdf.value_at_percentile(0) == 10


def test_cdf_fraction_above():
    cdf = CDFSeries.from_values([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
    assert cdf.fraction_above(8) == pytest.approx(0.2)
    assert cdf.fraction_above(10) == pytest.approx(0.0)
    assert cdf.fraction_above(0) == pytest.approx(1.0)


def test_cdf_empty():
    cdf = CDFSeries.from_values([])
    assert len(cdf) == 0
    assert cdf.percentile_at(1) == 0.0
    assert cdf.value_at_percentile(50) == 0.0


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                max_size=200))
def test_cdf_is_monotonic(values):
    cdf = CDFSeries.from_values(values)
    previous_value, previous_pct = cdf.points[0]
    for value, pct in cdf.points[1:]:
        assert value >= previous_value
        assert pct >= previous_pct
        previous_value, previous_pct = value, pct
    assert cdf.points[-1][1] == pytest.approx(100.0)


# -- summary statistics ---------------------------------------------------------------------

def test_summary_stats_known_values():
    stats = summary_stats([1, 2, 3, 4, 5])
    assert stats["count"] == 5
    assert stats["mean"] == 3
    assert stats["median"] == 3
    assert stats["min"] == 1
    assert stats["max"] == 5
    assert stats["p90"] == pytest.approx(4.6)


def test_summary_stats_empty():
    stats = summary_stats([])
    assert stats["count"] == 0
    assert stats["mean"] == 0


def test_summary_stats_single_value():
    stats = summary_stats([7.0])
    assert stats["median"] == 7.0
    assert stats["stddev"] == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=100))
def test_summary_stats_bounds_property(values):
    stats = summary_stats(values)
    assert stats["min"] <= stats["median"] <= stats["max"]
    assert stats["min"] <= stats["mean"] <= stats["max"]


# -- grouping and ranking -----------------------------------------------------------------------

def test_average_by_group_and_minimum_samples():
    data = {"com": [10, 20, 30], "ua": [200], "edu": [50, 70]}
    averages = average_by_group(data, minimum_samples=2)
    assert averages == {"com": 20.0, "edu": 60.0}
    all_groups = average_by_group(data, minimum_samples=1)
    assert all_groups["ua"] == 200.0


def test_sort_groups_descending():
    ordered = sort_groups_descending({"com": 20.0, "ua": 200.0, "edu": 60.0})
    assert [label for label, _mean in ordered] == ["ua", "edu", "com"]


def test_rank_series():
    series = rank_series({"a": 5, "b": 100, "c": 20})
    assert series == [(1, 100), (2, 20), (3, 5)]


@given(st.dictionaries(st.text(min_size=1, max_size=5),
                       st.integers(min_value=0, max_value=10 ** 6),
                       min_size=1, max_size=50))
def test_rank_series_is_non_increasing(counts):
    series = rank_series(counts)
    values = [count for _rank, count in series]
    assert values == sorted(values, reverse=True)
    assert [rank for rank, _count in series] == list(range(1, len(counts) + 1))


# -- histogram and table formatting -----------------------------------------------------------------

def test_histogram_counts_and_edges():
    bins = histogram([1, 2, 3, 10, 20, 99, 100], [0, 10, 100])
    assert bins[0] == (0, 10, 3)
    assert bins[1] == (10, 100, 4)


def test_histogram_requires_two_edges():
    with pytest.raises(ValueError):
        histogram([1], [5])


def test_format_table_alignment_and_headers():
    text = format_table([["com", 23], ["ua", 214]],
                        headers=("tld", "mean"))
    lines = text.splitlines()
    assert lines[0].startswith("tld")
    assert set(lines[1]) <= {"-", " "}
    assert "214" in lines[-1]


def test_format_table_empty():
    assert format_table([]) == ""
