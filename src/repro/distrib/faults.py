"""Deterministic fault injection for the distributed survey.

Chaos testing the coordinator's recovery machinery needs *real* failures
— a worker process that actually dies mid-order, a RESULT frame that
actually arrives truncated — produced *reproducibly*, so a failing chaos
test replays byte-for-byte.  A :class:`FaultPlan` is a small, seeded
script of faults, each pinned to the Nth wire event at one of three
points inside a worker process:

``send``
    The Nth frame the process sends (counted across connections).  Ops:
    ``kill`` (exit before the bytes leave), ``delay`` (sleep ``arg``
    seconds first), ``truncate`` (put half the frame on the wire, then
    close the socket), ``corrupt`` (flip one seeded payload byte *after*
    the CRC was computed, so the receiver sees a checksum mismatch).
``recv``
    The Nth complete frame the process receives.  Ops: ``kill`` (exit
    immediately after the frame is read — "killed mid-order"), ``delay``.
``accept``
    The Nth connection the worker accepts.  Op: ``refuse`` (close it
    immediately — a refused reconnect).

Beyond the wire, three *io* points fire from the atomic-commit protocol
in :mod:`repro.core.atomic` (every durable write goes through it), so a
plan can kill a process at any step of a snapshot commit:

``write``
    The Nth atomic commit *started* (before the temp file is opened).
    Ops: ``kill`` (die before a byte hits disk), ``truncate`` (write
    half the payload to the temp file at commit time, then die — a torn
    mid-write crash), ``delay``.
``fsync``
    The Nth fsync step.  Each commit fires two: the temp-file fsync
    (odd events) and the directory fsync after the rename (even
    events), so ``kill:fsync:2`` is the classic
    "renamed-but-rename-not-durable" crash.  Ops: ``kill``, ``delay``.
``replace``
    The Nth ``os.replace`` about to run (temp file complete and
    durable, destination untouched).  Ops: ``kill``, ``delay``.

Plans have a compact spec grammar for CLI/env transport::

    seed=7,kill:recv:2,corrupt:send:3,delay:send:1:0.5

A :class:`FaultInjector` executes a plan through the hook points in
:mod:`repro.distrib.wire` (``install_fault_injector``); the ``repro-dns
worker`` command activates one from ``--fault-plan`` or the
``REPRO_FAULT_PLAN`` environment variable, which is how
:class:`~repro.distrib.coordinator.LocalWorkerFleet` arms individual
worker subprocesses.  Every choice the injector makes (which byte to
flip) comes from a ``random.Random`` seeded by the plan, never from
global randomness — same plan, same chaos.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import random
import time
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.distrib.wire import (FRAME_HEADER_SIZE, DistribError, WireError,
                                install_fault_injector)

#: Environment variable carrying a fault-plan spec into a worker process.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Exit status used by ``kill`` faults — mirrors SIGKILL's shell status so
#: a chaos-killed worker is indistinguishable from an OOM-killed one.
KILL_EXIT_STATUS = 137

#: The (op, point) combinations a plan may contain.
VALID_FAULTS: Set[Tuple[str, str]] = {
    ("kill", "send"), ("kill", "recv"),
    ("delay", "send"), ("delay", "recv"),
    ("truncate", "send"), ("corrupt", "send"),
    ("refuse", "accept"),
    ("kill", "write"), ("truncate", "write"), ("delay", "write"),
    ("kill", "fsync"), ("delay", "fsync"),
    ("kill", "replace"), ("delay", "replace"),
}

#: The fault points fired by :mod:`repro.core.atomic` commits (the wire
#: points are ``send``/``recv``/``accept``).
IO_POINTS: Tuple[str, ...] = ("write", "fsync", "replace")


@dataclasses.dataclass(frozen=True)
class FaultAction:
    """One scripted fault: ``op`` at the ``nth`` event of ``point``."""

    op: str
    point: str
    nth: int
    arg: float = 0.0

    def validate(self) -> None:
        if (self.op, self.point) not in VALID_FAULTS:
            raise DistribError(
                f"invalid fault {self.op}:{self.point}: supported faults "
                f"are {sorted(f'{op}:{point}' for op, point in VALID_FAULTS)}")
        if self.nth < 1:
            raise DistribError(
                f"fault {self.op}:{self.point} needs nth >= 1, "
                f"got {self.nth}")
        if self.arg < 0:
            raise DistribError(
                f"fault {self.op}:{self.point}:{self.nth} needs a "
                f"non-negative arg, got {self.arg}")

    def to_spec(self) -> str:
        base = f"{self.op}:{self.point}:{self.nth}"
        return f"{base}:{self.arg:g}" if self.arg else base


class FaultPlan:
    """A seeded, ordered script of :class:`FaultAction` entries."""

    def __init__(self, actions: Sequence[FaultAction] = (), seed: int = 0):
        self.actions: Tuple[FaultAction, ...] = tuple(actions)
        self.seed = int(seed)
        seen: Set[Tuple[str, int]] = set()
        for action in self.actions:
            action.validate()
            slot = (action.point, action.nth)
            if slot in seen:
                raise DistribError(
                    f"fault plan schedules two faults at {action.point} "
                    f"event {action.nth}; each event fires at most one")
            seen.add(slot)

    def __bool__(self) -> bool:
        return bool(self.actions)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``seed=N,op:point:nth[:arg],...`` (raises on bad specs)."""
        seed = 0
        actions = []
        for raw in str(text).split(","):
            part = raw.strip()
            if not part:
                continue
            if part.startswith("seed="):
                try:
                    seed = int(part[len("seed="):])
                except ValueError:
                    raise DistribError(f"invalid fault-plan seed {part!r}")
                continue
            fields = part.split(":")
            if len(fields) not in (3, 4):
                raise DistribError(
                    f"invalid fault spec {part!r}: expected "
                    f"op:point:nth[:arg]")
            try:
                nth = int(fields[2])
                arg = float(fields[3]) if len(fields) == 4 else 0.0
            except ValueError:
                raise DistribError(
                    f"invalid fault spec {part!r}: nth must be an integer "
                    f"and arg a number")
            actions.append(FaultAction(op=fields[0], point=fields[1],
                                       nth=nth, arg=arg))
        return cls(actions, seed=seed)

    def to_spec(self) -> str:
        parts = [f"seed={self.seed}"] if self.seed else []
        parts.extend(action.to_spec() for action in self.actions)
        return ",".join(parts)


class FaultInjector:
    """Executes a :class:`FaultPlan` at the wire hook points.

    Counters are process-wide (one injector per process, installed via
    :func:`repro.distrib.wire.install_fault_injector`), so event numbers
    in a plan count frames across every connection the process handles —
    which is what makes "kill after the 2nd received frame" meaningful
    for a worker that answers one coordinator at a time.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counters: Dict[str, int] = {"send": 0, "recv": 0, "accept": 0}
        self.counters.update({point: 0 for point in IO_POINTS})
        self.fired: Dict[str, int] = {}
        self._rng = random.Random(f"repro-fault-plan:{plan.seed}")

    def _arm(self, point: str) -> Optional[FaultAction]:
        self.counters[point] += 1
        count = self.counters[point]
        for action in self.plan.actions:
            if action.point == point and action.nth == count:
                self.fired[action.to_spec()] = count
                return action
        return None

    # -- wire hook points ----------------------------------------------------------------

    def filter_send(self, sock, frame_type: int, data: bytes) -> bytes:
        """Called with the complete encoded frame before it is sent."""
        action = self._arm("send")
        if action is None:
            return data
        if action.op == "delay":
            time.sleep(action.arg)
            return data
        if action.op == "kill":
            os._exit(KILL_EXIT_STATUS)
        if action.op == "truncate":
            try:
                sock.sendall(data[:max(1, len(data) // 2)])
                sock.close()
            except OSError:
                pass
            raise WireError(
                f"fault injection: frame truncated at send "
                f"event {action.nth}")
        if action.op == "corrupt":
            corrupted = bytearray(data)
            if len(data) > FRAME_HEADER_SIZE:
                # Flip a payload byte: the header's CRC was computed over
                # the clean payload, so the receiver sees a precise
                # checksum mismatch rather than a framing error.
                offset = FRAME_HEADER_SIZE + self._rng.randrange(
                    len(data) - FRAME_HEADER_SIZE)
            else:
                offset = self._rng.randrange(4)  # ruin the magic
            corrupted[offset] ^= 0xFF
            return bytes(corrupted)
        return data

    def frame_received(self, sock, frame_type: int) -> None:
        """Called after each complete, validated frame is received."""
        action = self._arm("recv")
        if action is None:
            return
        if action.op == "kill":
            os._exit(KILL_EXIT_STATUS)
        if action.op == "delay":
            time.sleep(action.arg)

    def refuse_accept(self) -> bool:
        """Called per accepted connection; True means close it unserved."""
        action = self._arm("accept")
        return action is not None and action.op == "refuse"

    # -- io hook points (atomic-commit protocol) -----------------------------------------

    def io_event(self, point: str) -> Optional[FaultAction]:
        """Called from :mod:`repro.core.atomic` at each commit step.

        ``kill`` and ``delay`` execute here; any other action (i.e.
        ``truncate:write``) is returned for the commit machinery to
        stage, since only it knows where "half the payload" is.
        """
        action = self._arm(point)
        if action is None:
            return None
        if action.op == "kill":
            os._exit(KILL_EXIT_STATUS)
        if action.op == "delay":
            time.sleep(action.arg)
            return None
        return action


def activate_from_env(environ=None) -> Optional[FaultInjector]:
    """Install an injector if ``REPRO_FAULT_PLAN`` is set; returns it."""
    environ = os.environ if environ is None else environ
    spec = environ.get(ENV_FAULT_PLAN)
    if not spec:
        return None
    injector = FaultInjector(FaultPlan.parse(spec))
    install_fault_injector(injector)
    return injector


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Temporarily install an injector (in-process tests)."""
    injector = FaultInjector(plan)
    previous = install_fault_injector(injector)
    try:
        yield injector
    finally:
        install_fault_injector(previous)
