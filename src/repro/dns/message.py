"""DNS query and response messages.

The substrate passes :class:`Message` objects between the resolver and
authoritative servers instead of wire-format packets; the message structure
(question / answer / authority / additional sections, header flags, response
codes) follows RFC 1035 so that resolution logic reads like a description of
the real protocol.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Union

from repro.dns.name import DomainName, NameLike
from repro.dns.rdtypes import OpCode, RCode, RRClass, RRType
from repro.dns.records import ResourceRecord

_query_ids = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class Question:
    """The question section of a DNS message (single-question form)."""

    name: DomainName
    rtype: RRType = RRType.A
    rclass: RRClass = RRClass.IN

    @classmethod
    def create(cls, name: NameLike, rtype: Union[RRType, str] = RRType.A,
               rclass: Union[RRClass, str] = RRClass.IN) -> "Question":
        if isinstance(rtype, str):
            rtype = RRType.from_text(rtype)
        if isinstance(rclass, str):
            rclass = RRClass.from_text(rclass)
        return cls(DomainName(name), rtype, rclass)

    def __str__(self) -> str:
        return f"{self.name} {self.rclass} {self.rtype}"


@dataclasses.dataclass
class Message:
    """A DNS message: header fields plus the four record sections."""

    qid: int
    question: Question
    opcode: OpCode = OpCode.QUERY
    rcode: RCode = RCode.NOERROR
    is_response: bool = False
    authoritative: bool = False
    recursion_desired: bool = False
    recursion_available: bool = False
    truncated: bool = False
    answers: List[ResourceRecord] = dataclasses.field(default_factory=list)
    authority: List[ResourceRecord] = dataclasses.field(default_factory=list)
    additional: List[ResourceRecord] = dataclasses.field(default_factory=list)

    # -- convenience accessors -------------------------------------------------

    @property
    def is_referral(self) -> bool:
        """True if this response delegates to another set of nameservers.

        A referral has no answers but carries NS records in the authority
        section — this is the step that creates the transitive dependencies
        the paper analyses.
        """
        return (self.is_response and not self.answers
                and any(r.rtype is RRType.NS for r in self.authority)
                and self.rcode is RCode.NOERROR)

    @property
    def is_nxdomain(self) -> bool:
        """True if the response indicates the name does not exist."""
        return self.is_response and self.rcode is RCode.NXDOMAIN

    def answer_rrset(self, rtype: Optional[RRType] = None) -> List[ResourceRecord]:
        """Answer records, optionally filtered by type."""
        if rtype is None:
            return list(self.answers)
        return [r for r in self.answers if r.rtype is rtype]

    def referral_nameservers(self) -> List[DomainName]:
        """Nameserver names carried by a referral's authority section."""
        return [r.rdata for r in self.authority
                if r.rtype is RRType.NS and isinstance(r.rdata, DomainName)]

    def glue_addresses(self, nameserver: NameLike) -> List[str]:
        """Glue A/AAAA addresses for ``nameserver`` in the additional section."""
        nameserver = DomainName(nameserver)
        return [str(r.rdata) for r in self.additional
                if r.name == nameserver and r.rtype in (RRType.A, RRType.AAAA)]

    def __str__(self) -> str:
        kind = "response" if self.is_response else "query"
        return (f"<{kind} id={self.qid} {self.question} rcode={self.rcode.name} "
                f"ans={len(self.answers)} auth={len(self.authority)} "
                f"add={len(self.additional)}>")


def make_query(name: NameLike, rtype: Union[RRType, str] = RRType.A,
               rclass: Union[RRClass, str] = RRClass.IN,
               recursion_desired: bool = False) -> Message:
    """Construct a query message with a fresh query id."""
    return Message(qid=next(_query_ids),
                   question=Question.create(name, rtype, rclass),
                   recursion_desired=recursion_desired)


def make_response(query: Message, rcode: RCode = RCode.NOERROR,
                  authoritative: bool = False) -> Message:
    """Construct an (initially empty) response to ``query``."""
    return Message(qid=query.qid, question=query.question, rcode=rcode,
                   is_response=True, authoritative=authoritative,
                   recursion_desired=query.recursion_desired)
