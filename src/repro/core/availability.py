"""Availability analysis: the other side of the paper's dilemma.

Section 3.1 and the discussion in Section 5 frame an explicit trade-off:
administrators delegate to geographically and administratively remote
secondaries to survive failures, but every server they (transitively) lean
on is also a place their namespace can be hijacked from.  The security side
is quantified by the TCB and bottleneck analyses; this module quantifies the
availability side so the trade-off can be studied on the same graphs.

Resolution of a name succeeds when, for *every* zone on its delegation path,
at least one of the zone's nameservers is reachable — where "reachable"
itself requires the server to be up and its hostname to be resolvable
(recursively).  Over the delegation graph this is the same AND/OR structure
as the bottleneck analysis, evaluated with probabilities instead of attack
costs::

    avail(name)  = product over zones Z on the chain of avail_zone(Z)
    avail_zone(Z) = 1 - product over nameservers H of (1 - up(H) * avail(H))

Cycles (mutual secondaries) are broken the same way as in the bottleneck
analysis: a dependency loop cannot make a server *more* reachable, so the
looping branch contributes only the server's own up-probability.

The analyzer accepts any :class:`~repro.core.delegation.DelegationView` —
a materialised per-name :class:`~repro.core.delegation.DelegationGraph` or
the survey engine's zero-copy :class:`~repro.core.delegation.TCBView` — and
supports *shared memos* across names, with the same clean/tainted publishing
discipline as :class:`~repro.core.mincut.BottleneckAnalyzer`: only values
computed without truncating a dependency cycle (and without consuming a
truncation-tainted value) are published cross-name, because those are the
only values independent of the path the recursion took to reach the node.

Like the bottleneck analyzer, every evaluation mode has two structurally
identical implementations: an **integer path** over dense node ids and NS
slots (taken automatically for :class:`~repro.core.delegation.TCBView`) and
a **generic path** over ``(kind, DomainName)`` node keys.  Both traverse
successors in the same order with the same arithmetic, so they agree
bit-for-bit; the equivalence suite asserts it.

Three evaluation modes are provided:

* :meth:`AvailabilityAnalyzer.resolution_probability` — analytic evaluation
  of the recursion under independent per-server failure probabilities
  (an approximation: shared dependencies are treated as independent).
* :meth:`AvailabilityAnalyzer.monte_carlo` — simulate failure draws and
  evaluate the same structure exactly per draw; used to sanity-check the
  analytic value and to study correlated (regional) failures.  On the
  integer path the sweep is *bit-parallel*: every server gets one up/down
  bitmask over all samples (one RNG draw array per sample, in the same
  draw order as the scalar loop), and a single AND/OR traversal of the
  graph evaluates every sample at once against the name's TCB masks.
* :meth:`AvailabilityAnalyzer.single_points_of_failure` — the servers whose
  individual loss makes the name unresolvable, computed by a kill-set
  recursion over the same AND/OR structure (a server kills a zone iff it
  kills every nameserver of that zone) instead of one full re-evaluation
  per TCB member.  Kill sets are NS-slot bitsets on the integer path.
"""

from __future__ import annotations

import dataclasses
import random
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Mapping,
    Optional,
    Set,
    Union,
)

from repro.dns.name import DomainName
from repro.core.delegation import DelegationView, NodeKey, TCBView, name_node
from repro.core.graphcore import NS_CODE

#: A per-server up-probability map or a single probability applied to all.
UpModel = Union[float, Mapping[DomainName, float]]


@dataclasses.dataclass
class AvailabilityReport:
    """Availability estimate for one name."""

    name: DomainName
    analytic: float
    monte_carlo: Optional[float] = None
    samples: int = 0
    single_points_of_failure: FrozenSet[DomainName] = frozenset()

    @property
    def has_single_point_of_failure(self) -> bool:
        """True if one server's loss alone makes the name unresolvable."""
        return bool(self.single_points_of_failure)


class AvailabilityAnalyzer:
    """Evaluates resolution availability over delegation views.

    Parameters
    ----------
    up_probability:
        Either a single probability applied to every server, or a mapping
        from hostname to up-probability (servers missing from the mapping
        get ``default_up``).
    default_up:
        Up-probability for servers not listed in the mapping.
    shared_memo:
        Optional cross-name memo for analytic availabilities, keyed by
        integer node id on the fast path (NodeKey on the generic path).
        Only cycle-independent ("clean") values are published.  The survey
        engine registers it with the builder's
        :class:`~repro.core.delegation.ClosureIndex` so universe growth
        purges exactly the entries whose subtree changed.  Valid only while
        the analyzer's up-model is unchanged.  Providing it also enables a
        companion reachability memo (``shared_reach_memo``) used by the
        SPOF analysis, under the same invalidation contract.
    shared_spof_memo:
        Optional cross-name memo for kill sets, same discipline.
    """

    def __init__(self, up_probability: UpModel = 0.99,
                 default_up: float = 0.99,
                 shared_memo: Optional[Dict] = None,
                 shared_spof_memo: Optional[Dict] = None):
        if isinstance(up_probability, float):
            if not 0.0 <= up_probability <= 1.0:
                raise ValueError("up_probability must be within [0, 1]")
            self._per_server: Dict[DomainName, float] = {}
            self.default_up = up_probability
        else:
            self._per_server = {DomainName(host): float(p)
                                for host, p in up_probability.items()}
            self.default_up = default_up
        if not 0.0 <= self.default_up <= 1.0:
            raise ValueError("default_up must be within [0, 1]")
        self.shared_memo = shared_memo
        self.shared_spof_memo = shared_spof_memo
        #: Constant up-probability when no per-server map is configured —
        #: lets the hot loops skip the per-slot lookup entirely.
        self._up_const: Optional[float] = \
            self.default_up if not self._per_server else None
        #: Cross-name memo for "resolvable with every server up" booleans
        #: (integer path only); enabled alongside the other shared memos.
        self.shared_reach_memo: Optional[Dict[int, bool]] = \
            {} if shared_memo is not None or shared_spof_memo is not None \
            else None
        self._slot_up: Dict[int, float] = {}
        self._slot_up_universe: Optional[object] = None
        self._taint_events = 0
        self._tainted: Set = set()
        self._prefix_state: Optional[tuple] = None
        # Per-recursion zone-term replay state, active only while a
        # prefix-resumed evaluation runs (see _prefix_cache): `*_zc` maps a
        # zone id to its (term, taint-event delta) when the term was
        # computed purely from snapshot-resident memo hits — such terms are
        # identical for every chain sharing the snapshot — and `*_base` is
        # the snapshot memo used for that purity test.
        self._avail_zc: Optional[Dict[int, tuple]] = None
        self._avail_base: Optional[Dict[int, float]] = None
        self._reach_zc: Optional[Dict[int, tuple]] = None
        self._reach_base: Optional[Dict[int, bool]] = None
        self._struct_zc: Optional[Dict[int, tuple]] = None
        self._struct_base: Optional[Dict[int, int]] = None

    def _prefix_cache(self, universe, closures, kind: str) -> Dict[int, tuple]:
        """Per-first-zone resume snapshots, valid for one closure version.

        A surveyed name's node has no in-edges, so evaluating its first
        direct zone (the TLD) — the walk, its memo contents, its
        taint-event count — is independent of the name.  Snapshotting that
        state after the first zone and resuming later chains from a copy
        removes the dominant per-chain cost (re-walking the TLD subtree,
        which in-bailiwick NS cycles keep out of the clean-only shared
        memos) without changing a single arithmetic step of the recursion.
        ``kind`` separates the analytic, structural-reachability, and
        kill-set evaluations.
        """
        state = self._prefix_state
        if state is None or state[0] is not universe \
                or state[1] != closures.version:
            state = (universe, closures.version, {})
            self._prefix_state = state
        return state[2].setdefault(kind, {})

    # -- probability model ---------------------------------------------------------

    def up_probability(self, hostname: DomainName) -> float:
        """The probability that ``hostname`` is reachable."""
        return self._per_server.get(hostname, self.default_up)

    def _up_slot(self, universe, slot: int) -> float:
        """Slot-indexed up-probability (the up-model is fixed per analyzer).

        Slots are universe-local, so the cache resets when this analyzer is
        pointed at a different builder's universe.
        """
        if self._slot_up_universe is not universe:
            self._slot_up = {}
            self._slot_up_universe = universe
        cache = self._slot_up
        probability = cache.get(slot)
        if probability is None:
            probability = self._per_server.get(universe.slot_hosts[slot],
                                               self.default_up)
            cache[slot] = probability
        return probability

    @staticmethod
    def _int_core(graph):
        if isinstance(graph, TCBView):
            return graph.int_core()
        return None

    # -- analytic evaluation -----------------------------------------------------------

    def resolution_probability(self, graph: DelegationView) -> float:
        """Probability that the view's target name resolves.

        Shared dependencies are treated as independent, so the value is an
        approximation (generally a slight underestimate for names whose
        zones share servers); :meth:`monte_carlo` evaluates the structure
        without that assumption.
        """
        core = self._int_core(graph)
        if core is not None:
            universe, closures, target_id = core
            zones = closures.split_ids(target_id)[0]
            if not zones:
                # Nothing is known about the name's delegation chain at all.
                return 0.0
            self._taint_events = 0
            self._tainted = set()
            shared = self.shared_memo
            if shared is not None:
                hit = shared.get(target_id)
                if hit is not None:
                    return hit
            split_ids = closures.split_ids
            ns_slots = universe.ns_slots
            prefix = self._prefix_cache(universe, closures, "avail")
            first = zones[0]
            entry = prefix.get(first)
            in_progress = frozenset((target_id,))
            memo: Dict[int, float] = {}
            probability = 1.0
            start = 0
            self._avail_zc = self._avail_base = None
            if entry is not None:
                probability, snap_memo, snap_tainted, snap_events, broke, \
                    zone_cache = entry
                memo = dict(snap_memo)
                self._tainted = set(snap_tainted)
                self._taint_events = snap_events
                self._avail_zc = zone_cache
                self._avail_base = snap_memo
                start = len(zones) if broke else 1
            up_const = self._up_const
            for index in range(start, len(zones)):
                zone = zones[index]
                nameservers = split_ids(zone)[1]
                if not nameservers:
                    probability = 0.0
                    if index == 0:
                        prefix[first] = (probability, dict(memo),
                                         set(self._tainted),
                                         self._taint_events, True, {})
                    break
                all_down = 1.0
                memo_get = memo.get
                tainted = self._tainted
                for ns in nameservers:
                    value = memo_get(ns)
                    if value is None:
                        value = self._avail_int(universe, closures, ns, memo,
                                                in_progress, shared)
                    elif ns in tainted:
                        self._taint_events += 1
                    up = up_const if up_const is not None else \
                        self._up_slot(universe, ns_slots[ns])
                    all_down *= (1.0 - up * value)
                probability *= (1.0 - all_down)
                if index == 0:
                    prefix[first] = (probability, dict(memo),
                                     set(self._tainted), self._taint_events,
                                     False, {})
            memo[target_id] = probability
            if self._taint_events == 0:
                if shared is not None:
                    shared[target_id] = probability
            else:
                self._tainted.add(target_id)
            return probability
        target = name_node(graph.target)
        if not graph.zones_of(target):
            return 0.0
        self._taint_events = 0
        self._tainted = set()
        return self._avail_name(graph, target, {}, frozenset(),
                                lambda hostname: self.up_probability(hostname),
                                self.shared_memo)

    def _avail_int(self, universe, closures, node: int,
                   memo: Dict[int, float], in_progress: FrozenSet[int],
                   shared: Optional[Dict[int, float]]) -> float:
        """Integer-path analytic availability (same traversal, same floats)."""
        cached = memo.get(node)
        if cached is not None:
            if node in self._tainted:
                # The consumer inherits this value's context-dependence.
                self._taint_events += 1
            return cached
        if shared is not None:
            hit = shared.get(node)
            if hit is not None:
                return hit
        if node in in_progress:
            # A dependency loop cannot improve reachability.
            self._taint_events += 1
            return 1.0
        in_progress = in_progress | {node}
        events_before = self._taint_events
        split_ids = closures.split_ids
        zones = split_ids(node)[0]
        if not zones:
            # No recorded chain (e.g. glued hostname inside an already
            # covered zone): treat as reachable so the parent term reduces
            # to the server's own up-probability.
            memo[node] = 1.0
            if shared is not None:
                shared[node] = 1.0
            return 1.0
        ns_slots = universe.ns_slots
        up_const = self._up_const
        tainted = self._tainted
        memo_get = memo.get
        zone_cache = self._avail_zc
        base = self._avail_base
        probability = 1.0
        for zone in zones:
            if zone_cache is not None:
                replay = zone_cache.get(zone)
                if replay is not None:
                    term, delta = replay
                    if delta:
                        self._taint_events += delta
                    probability *= term
                    continue
            nameservers = split_ids(zone)[1]
            if not nameservers:
                probability = 0.0
                break
            all_down = 1.0
            pure = zone_cache is not None
            events_zone = self._taint_events
            for ns in nameservers:
                value = memo_get(ns)
                if value is None:
                    value = self._avail_int(universe, closures, ns, memo,
                                            in_progress, shared)
                    pure = False
                else:
                    if ns in tainted:
                        self._taint_events += 1
                    if pure and ns not in base:
                        pure = False
                up = up_const if up_const is not None else \
                    self._up_slot(universe, ns_slots[ns])
                all_down *= (1.0 - up * value)
            term = 1.0 - all_down
            if pure:
                zone_cache[zone] = (term, self._taint_events - events_zone)
            probability *= term
        memo[node] = probability
        if self._taint_events == events_before:
            if shared is not None:
                shared[node] = probability
        else:
            self._tainted.add(node)
        return probability

    def _avail_name(self, graph: DelegationView, node: NodeKey,
                    memo: Dict[NodeKey, float],
                    in_progress: FrozenSet[NodeKey],
                    up: Callable[[DomainName], float],
                    shared: Optional[Dict[NodeKey, float]] = None) -> float:
        cached = memo.get(node)
        if cached is not None:
            if node in self._tainted:
                # The consumer inherits this value's context-dependence.
                self._taint_events += 1
            return cached
        if shared is not None:
            hit = shared.get(node)
            if hit is not None:
                return hit
        if node in in_progress:
            # A dependency loop cannot improve reachability.
            self._taint_events += 1
            return 1.0
        in_progress = in_progress | {node}
        events_before = self._taint_events
        zones = graph.zones_of(node)
        if not zones:
            # No recorded chain (e.g. glued hostname inside an already
            # covered zone): treat as reachable so the parent term reduces
            # to the server's own up-probability.
            memo[node] = 1.0
            if shared is not None:
                shared[node] = 1.0
            return 1.0
        probability = 1.0
        for zone in zones:
            nameservers = graph.nameservers_of_zone(zone)
            if not nameservers:
                probability = 0.0
                break
            all_down = 1.0
            for ns in nameservers:
                hostname = ns[1]
                reachable = up(hostname) * self._avail_name(
                    graph, ns, memo, in_progress, up, shared)
                all_down *= (1.0 - reachable)
            probability *= (1.0 - all_down)
        memo[node] = probability
        if self._taint_events == events_before:
            if shared is not None:
                shared[node] = probability
        else:
            self._tainted.add(node)
        return probability

    # -- Monte Carlo evaluation ------------------------------------------------------------

    def monte_carlo(self, graph: DelegationView, samples: int = 500,
                    rng: Optional[random.Random] = None) -> float:
        """Estimate availability by sampling failure scenarios.

        The draw order is fixed (per sample, hosts in sorted order), so a
        given seed yields the same estimate on both implementations.
        """
        if samples <= 0:
            raise ValueError("samples must be positive")
        rng = rng or random.Random(0)
        core = self._int_core(graph)
        if core is not None:
            return self._monte_carlo_int(graph, core, samples, rng)
        hosts = sorted(graph.tcb())
        successes = 0
        for _ in range(samples):
            down = {host for host in hosts
                    if rng.random() >= self.up_probability(host)}
            if self.resolvable_with_failures(graph, down):
                successes += 1
        return successes / samples

    def _monte_carlo_int(self, graph: TCBView, core, samples: int,
                         rng: random.Random) -> float:
        """Bit-parallel sweep: one up-mask per server, all samples at once."""
        universe, closures, target_id = core
        hosts = sorted(graph.tcb())
        probabilities = [self.up_probability(host) for host in hosts]
        down_masks = [0] * len(hosts)
        rand = rng.random
        # Same RNG consumption order as the scalar loop: per sample, hosts
        # in sorted order — bit s of a server's mask is sample s's draw.
        for sample in range(samples):
            bit = 1 << sample
            for index, probability in enumerate(probabilities):
                if rand() >= probability:
                    down_masks[index] |= bit
        full = (1 << samples) - 1
        ns_slots = universe.ns_slots
        up_by_slot: Dict[int, int] = {}
        for index, host in enumerate(hosts):
            node_id = universe.find_id(NS_CODE, host)
            if node_id is not None:
                up_by_slot[ns_slots[node_id]] = full & ~down_masks[index]
        if not closures.split_ids(target_id)[0]:
            # No known delegation chain: the name resolves in no sample.
            return 0.0
        # Zone-term replay is only sound for the all-up evaluation.
        self._struct_zc = self._struct_base = None
        value = self._sample_masks(universe, closures, target_id, {},
                                   frozenset(), up_by_slot, full)
        return value.bit_count() / samples

    def _sample_masks(self, universe, closures, node: int,
                      memo: Dict[int, int], in_progress: FrozenSet[int],
                      up_by_slot: Dict[int, int], full: int) -> int:
        """Bitmask over samples in which ``node`` resolves.

        Structurally identical to the scalar availability recursion with
        0/1 up-probabilities, evaluated for every sample bit at once: OR
        across a zone's nameservers, AND across a node's zones, dependency
        loops truncated as "reachable" — so bit *s* equals what
        :meth:`resolvable_with_failures` returns for sample *s*'s down set.
        """
        cached = memo.get(node)
        if cached is not None:
            return cached
        if node in in_progress:
            return full
        in_progress = in_progress | {node}
        split_ids = closures.split_ids
        zones = split_ids(node)[0]
        if not zones:
            memo[node] = full
            return full
        ns_slots = universe.ns_slots
        memo_get = memo.get
        up_get = up_by_slot.get
        zone_cache = self._struct_zc
        base = self._struct_base
        result = full
        for zone in zones:
            if zone_cache is not None:
                replay = zone_cache.get(zone)
                if replay is not None:
                    result &= replay
                    continue
            nameservers = split_ids(zone)[1]
            if not nameservers:
                result = 0
                break
            zone_up = 0
            pure = zone_cache is not None
            for ns in nameservers:
                value = memo_get(ns)
                if value is None:
                    value = self._sample_masks(universe, closures, ns, memo,
                                               in_progress, up_by_slot, full)
                    pure = False
                elif pure and ns not in base:
                    pure = False
                up_mask = up_get(ns_slots[ns], full)
                zone_up |= up_mask & value
            if pure:
                zone_cache[zone] = zone_up
            result &= zone_up
        memo[node] = result
        return result

    def resolvable_with_failures(self, graph: DelegationView,
                                 failed: Set[DomainName]) -> bool:
        """Exact check: does the name resolve when ``failed`` servers are down?"""
        core = self._int_core(graph)
        if core is not None:
            universe, closures, target_id = core
            zones = closures.split_ids(target_id)[0]
            if not zones:
                return False
            if not failed:
                return self._resolvable_structurally(universe, closures,
                                                     target_id, zones)
            full = 1
            up_by_slot: Dict[int, int] = {}
            ns_slots = universe.ns_slots
            for host in failed:
                node_id = universe.find_id(NS_CODE, host)
                if node_id is not None:
                    up_by_slot[ns_slots[node_id]] = 0
            # Zone-term replay is only sound for the all-up evaluation.
            self._struct_zc = self._struct_base = None
            value = self._sample_masks(universe, closures, target_id, {},
                                       frozenset(), up_by_slot, full)
            return bool(value)
        target = name_node(graph.target)
        if not graph.zones_of(target):
            return False
        up = (lambda hostname: 0.0 if hostname in failed else 1.0)
        self._taint_events = 0
        self._tainted = set()
        probability = self._avail_name(graph, target, {}, frozenset(), up)
        return probability > 0.5

    def _resolvable_structurally(self, universe, closures, target_id: int,
                                 zones) -> bool:
        """``resolvable_with_failures(graph, set())`` with prefix resume.

        With no failed servers every up-mask defaults to "up", so the
        evaluation is a pure function of the structure — and, like every
        top-level walk, its first-zone state is name-independent and can be
        snapshotted (the single-bit evaluation carries no taint state).
        """
        prefix = self._prefix_cache(universe, closures, "structure")
        first = zones[0]
        entry = prefix.get(first)
        in_progress = frozenset((target_id,))
        memo: Dict[int, int] = {}
        up_by_slot: Dict[int, int] = {}
        result = 1
        start = 0
        self._struct_zc = self._struct_base = None
        if entry is not None:
            result, snap_memo, zone_cache = entry
            memo = dict(snap_memo)
            self._struct_zc = zone_cache
            self._struct_base = snap_memo
            start = 1
        split_ids = closures.split_ids
        for index in range(start, len(zones)):
            zone = zones[index]
            nameservers = split_ids(zone)[1]
            if not nameservers:
                result = 0
                if index == 0:
                    prefix[first] = (result, dict(memo), {})
                break
            zone_up = 0
            memo_get = memo.get
            for ns in nameservers:
                value = memo_get(ns)
                if value is None:
                    value = self._sample_masks(universe, closures, ns, memo,
                                               in_progress, up_by_slot, 1)
                zone_up |= value
            result &= zone_up
            if index == 0:
                prefix[first] = (result, dict(memo), {})
        return bool(result)

    # -- single points of failure ------------------------------------------------------------

    def single_points_of_failure(self, graph: DelegationView
                                 ) -> FrozenSet[DomainName]:
        """Servers whose individual loss makes the name unresolvable.

        These are exactly the size-one bottlenecks of the availability
        structure: names served by a single machine anywhere on their chain.
        Computed by a kill-set recursion mirroring the availability AND/OR
        structure — a server kills a zone iff it kills every nameserver of
        that zone (by being it, or by killing its hostname's resolution) —
        so the cost is one graph walk instead of one per TCB member.
        """
        core = self._int_core(graph)
        if core is not None:
            universe, closures, target_id = core
            if not self.resolvable_with_failures(graph, set()):
                # The name does not resolve even with every server up: any
                # single failure "also" leaves it unresolvable.
                return graph.tcb_frozen()
            mask = self._kill_top_int(universe, closures, target_id)
            if not mask:
                return frozenset()
            return frozenset(universe.mask_to_hosts(mask))
        if not self.resolvable_with_failures(graph, set()):
            return frozenset(graph.tcb())
        self._taint_events = 0
        self._tainted = set()
        return self._kill_name(graph, name_node(graph.target), {}, {},
                               frozenset(), self.shared_spof_memo)

    def _kill_top_int(self, universe, closures, target_id: int) -> int:
        """Top-level kill-set evaluation with per-first-zone prefix resume.

        Mirrors :meth:`_kill_int` applied to the target node; the snapshot
        captures both the kill memo and the reachability memo (the two
        walks interleave) plus the shared taint state after the first zone.
        """
        self._taint_events = 0
        self._tainted = set()
        shared = self.shared_spof_memo
        if shared is not None:
            hit = shared.get(target_id)
            if hit is not None:
                return hit
        split_ids = closures.split_ids
        zones = split_ids(target_id)[0]
        memo: Dict[int, int] = {}
        reach_memo: Dict[int, bool] = {}
        if not zones:
            memo[target_id] = 0
            if shared is not None:
                shared[target_id] = 0
            return 0
        prefix = self._prefix_cache(universe, closures, "kill")
        first = zones[0]
        entry = prefix.get(first)
        in_progress = frozenset((target_id,))
        kills = 0
        start = 0
        self._reach_zc = self._reach_base = None
        if entry is not None:
            kills, snap_memo, snap_reach, snap_tainted, snap_events, \
                reach_zc = entry
            memo = dict(snap_memo)
            reach_memo = dict(snap_reach)
            self._tainted = set(snap_tainted)
            self._taint_events = snap_events
            self._reach_zc = reach_zc
            self._reach_base = snap_reach
            start = 1
        for index in range(start, len(zones)):
            zone_kill = self._kill_zone_int(universe, closures, zones[index],
                                            memo, reach_memo, in_progress,
                                            shared)
            if zone_kill:
                kills |= zone_kill
            if index == 0:
                prefix[first] = (kills, dict(memo), dict(reach_memo),
                                 set(self._tainted), self._taint_events, {})
        memo[target_id] = kills
        if self._taint_events == 0:
            if shared is not None:
                shared[target_id] = kills
        else:
            self._tainted.add(target_id)
        return kills

    def _kill_int(self, universe, closures, node: int,
                  memo: Dict[int, int], reach_memo: Dict[int, bool],
                  in_progress: FrozenSet[int],
                  shared: Optional[Dict[int, int]]) -> int:
        """Slot bitset of hostnames whose failure makes ``node`` unresolvable."""
        cached = memo.get(node)
        if cached is not None:
            if node in self._tainted:
                self._taint_events += 1
            return cached
        if shared is not None:
            hit = shared.get(node)
            if hit is not None:
                return hit
        if node in in_progress:
            # The looping branch is treated as reachable by the availability
            # recursion, so nothing kills it from inside the loop.
            self._taint_events += 1
            return 0
        in_progress = in_progress | {node}
        events_before = self._taint_events
        split_ids = closures.split_ids
        zones = split_ids(node)[0]
        if not zones:
            memo[node] = 0
            if shared is not None:
                shared[node] = 0
            return 0
        kills = 0
        for zone in zones:
            zone_kill = self._kill_zone_int(universe, closures, zone, memo,
                                            reach_memo, in_progress, shared)
            if zone_kill:
                kills |= zone_kill
        memo[node] = kills
        if self._taint_events == events_before:
            if shared is not None:
                shared[node] = kills
        else:
            self._tainted.add(node)
        return kills

    def _kill_zone_int(self, universe, closures, zone: int,
                       memo: Dict[int, int], reach_memo: Dict[int, bool],
                       in_progress: FrozenSet[int],
                       shared: Optional[Dict[int, int]]) -> Optional[int]:
        """One zone's kill intersection (shared by top-level and recursion)."""
        nameservers = closures.split_ids(zone)[1]
        zone_kill: Optional[int] = None
        reach_get = reach_memo.get
        memo_get = memo.get
        tainted = self._tainted
        ns_slots = universe.ns_slots
        for ns in nameservers:
            # A nameserver that cannot resolve even with every server up
            # (its own chain crosses a dead zone) is no alternative: it
            # imposes no constraint on the zone's kill intersection.
            reach = reach_get(ns)
            if reach is None:
                reach = self._reach_int(universe, closures, ns, reach_memo,
                                        in_progress)
            elif ns in tainted:
                self._taint_events += 1
            if not reach:
                continue
            term = memo_get(ns)
            if term is None:
                term = self._kill_int(universe, closures, ns, memo,
                                      reach_memo, in_progress, shared)
            elif ns in tainted:
                self._taint_events += 1
            term |= 1 << ns_slots[ns]
            zone_kill = term if zone_kill is None else (zone_kill & term)
            if not zone_kill:
                break
        return zone_kill

    def _reach_int(self, universe, closures, node: int,
                   memo: Dict[int, bool],
                   in_progress: FrozenSet[int]) -> bool:
        """Is ``node`` resolvable with every server up? (taint-tracked).

        Mirrors the scalar all-up availability evaluation (values are
        exactly 0.0 or 1.0 there); clean results are additionally published
        to :attr:`shared_reach_memo` so the SPOF pass explores each
        universe region once per worker instead of once per name.
        """
        cached = memo.get(node)
        if cached is not None:
            if node in self._tainted:
                self._taint_events += 1
            return cached
        shared = self.shared_reach_memo
        if shared is not None:
            hit = shared.get(node)
            if hit is not None:
                return hit
        if node in in_progress:
            # A dependency loop cannot improve reachability.
            self._taint_events += 1
            return True
        in_progress = in_progress | {node}
        events_before = self._taint_events
        split_ids = closures.split_ids
        zones = split_ids(node)[0]
        if not zones:
            memo[node] = True
            if shared is not None:
                shared[node] = True
            return True
        reachable = True
        memo_get = memo.get
        tainted = self._tainted
        zone_cache = self._reach_zc
        base = self._reach_base
        for zone in zones:
            if zone_cache is not None:
                replay = zone_cache.get(zone)
                if replay is not None:
                    any_up, delta = replay
                    if delta:
                        self._taint_events += delta
                    if not any_up:
                        reachable = False
                    continue
            nameservers = split_ids(zone)[1]
            if not nameservers:
                reachable = False
                break
            any_up = False
            pure = zone_cache is not None
            events_zone = self._taint_events
            for ns in nameservers:
                value = memo_get(ns)
                if value is None:
                    value = self._reach_int(universe, closures, ns, memo,
                                            in_progress)
                    pure = False
                else:
                    if ns in tainted:
                        self._taint_events += 1
                    if pure and ns not in base:
                        pure = False
                if value:
                    any_up = True
            if pure:
                zone_cache[zone] = (any_up, self._taint_events - events_zone)
            if not any_up:
                reachable = False
        memo[node] = reachable
        if self._taint_events == events_before:
            if shared is not None:
                shared[node] = reachable
        else:
            self._tainted.add(node)
        return reachable

    def _kill_name(self, graph: DelegationView, node: NodeKey,
                   memo: Dict[NodeKey, FrozenSet[DomainName]],
                   reach_memo: Dict[NodeKey, float],
                   in_progress: FrozenSet[NodeKey],
                   shared: Optional[Dict[NodeKey, FrozenSet[DomainName]]]
                   ) -> FrozenSet[DomainName]:
        """Hostnames whose individual failure makes ``node`` unresolvable."""
        cached = memo.get(node)
        if cached is not None:
            if node in self._tainted:
                self._taint_events += 1
            return cached
        if shared is not None:
            hit = shared.get(node)
            if hit is not None:
                return hit
        if node in in_progress:
            # The looping branch is treated as reachable by the availability
            # recursion, so nothing kills it from inside the loop.
            self._taint_events += 1
            return frozenset()
        in_progress = in_progress | {node}
        events_before = self._taint_events
        zones = graph.zones_of(node)
        if not zones:
            memo[node] = frozenset()
            if shared is not None:
                shared[node] = frozenset()
            return frozenset()
        kills: Set[DomainName] = set()
        all_up = (lambda _hostname: 1.0)
        for zone in zones:
            nameservers = graph.nameservers_of_zone(zone)
            zone_kill: Optional[FrozenSet[DomainName]] = None
            for ns in nameservers:
                # A nameserver that cannot resolve even with every server up
                # (its own chain crosses a dead zone) is no alternative: it
                # imposes no constraint on the zone's kill intersection.
                reachable = self._avail_name(graph, ns, reach_memo,
                                             in_progress, all_up)
                if reachable <= 0.5:
                    continue
                hostname = ns[1]
                term = frozenset({hostname}) | self._kill_name(
                    graph, ns, memo, reach_memo, in_progress, shared)
                zone_kill = term if zone_kill is None else (zone_kill & term)
                if not zone_kill:
                    break
            if zone_kill:
                kills |= zone_kill
        result = frozenset(kills)
        memo[node] = result
        if self._taint_events == events_before:
            if shared is not None:
                shared[node] = result
        else:
            self._tainted.add(node)
        return result

    def single_points_of_failure_exhaustive(self, graph: DelegationView
                                            ) -> FrozenSet[DomainName]:
        """Reference implementation: re-evaluate resolution per TCB member.

        One full availability evaluation per server — O(TCB × graph) versus
        the kill-set recursion's single walk.  Kept as the ground truth the
        tests compare :meth:`single_points_of_failure` against.
        """
        culprits = set()
        for hostname in graph.tcb():
            if not self.resolvable_with_failures(graph, {hostname}):
                culprits.add(hostname)
        return frozenset(culprits)

    def report(self, graph: DelegationView, samples: int = 0,
               rng: Optional[random.Random] = None) -> AvailabilityReport:
        """Full availability report (analytic, optional Monte Carlo, SPOFs)."""
        analytic = self.resolution_probability(graph)
        monte_carlo = None
        if samples:
            monte_carlo = self.monte_carlo(graph, samples=samples, rng=rng)
        return AvailabilityReport(
            name=graph.target, analytic=analytic, monte_carlo=monte_carlo,
            samples=samples,
            single_points_of_failure=self.single_points_of_failure(graph))


def availability_security_tradeoff(graphs, up_probability: float = 0.95,
                                   vulnerability_map: Optional[Mapping] = None
                                   ) -> Dict[str, float]:
    """Summarise the paper's dilemma over a collection of delegation views.

    Returns the mean TCB size (the security cost), the mean analytic
    availability under independent failures (the availability benefit), and
    the fraction of names with at least one single point of failure.
    """
    analyzer = AvailabilityAnalyzer(up_probability)
    sizes = []
    availabilities = []
    spof_names = 0
    for graph in graphs:
        sizes.append(graph.tcb_size())
        availabilities.append(analyzer.resolution_probability(graph))
        if analyzer.single_points_of_failure(graph):
            spof_names += 1
    count = max(1, len(sizes))
    return {
        "names": float(len(sizes)),
        "mean_tcb_size": sum(sizes) / count,
        "mean_availability": sum(availabilities) / count,
        "fraction_with_spof": spof_names / count,
    }
