"""Cross-module integration tests: paper-level claims on the small survey.

These tests assert the *qualitative* findings of the paper hold on the
generated topology (with loose numeric bands appropriate for the scaled-down
fixture), plus consistency properties that tie the survey, delegation
graphs, vulnerability database, and hijack analysis together.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.delegation import DelegationGraphBuilder
from repro.core.mincut import BottleneckAnalyzer
from repro.core.report import CDFSeries
from repro.core.survey import Survey
from repro.netsim.failures import FailureInjector
from repro.topology.generator import GeneratorConfig, InternetGenerator
from repro.vulns.database import default_database


# -- paper-level qualitative claims -------------------------------------------------------

def test_tcb_is_much_larger_than_in_bailiwick_control(small_survey):
    """Claim: a name depends on dozens of servers but administers only ~2."""
    headline = small_survey.headline()
    assert headline["mean_tcb_size"] >= 10
    assert headline["mean_in_bailiwick"] <= 5
    assert headline["mean_tcb_size"] > 5 * headline["mean_in_bailiwick"]


def test_tcb_distribution_is_heavy_tailed(small_survey):
    sizes = small_survey.tcb_sizes()
    cdf = CDFSeries.from_values(sizes)
    mean = sum(sizes) / len(sizes)
    median = cdf.value_at_percentile(50)
    assert mean > median, "heavy tail: mean should exceed median"
    assert max(sizes) > 3 * median


def test_vulnerability_amplification(small_survey):
    """Claim: x % vulnerable servers affect far more than x % of names."""
    server_fraction = small_survey.vulnerable_server_fraction()
    name_fraction = small_survey.fraction_with_vulnerable_dependency()
    assert 0.05 < server_fraction < 0.40
    assert name_fraction > 1.5 * server_fraction


def test_a_substantial_fraction_is_completely_hijackable(small_survey):
    fraction = small_survey.fraction_completely_hijackable()
    assert 0.10 <= fraction <= 0.55


def test_mincuts_are_small(small_survey):
    assert 1.0 <= small_survey.mean_mincut_size() <= 5.0


def test_cctlds_depend_on_more_servers_than_gtlds(small_survey):
    gtld = small_survey.mean_tcb_by_tld("gtld", minimum_samples=1)
    cctld = small_survey.mean_tcb_by_tld("cctld", minimum_samples=1)
    worst_cctld = max(cctld.values())
    assert worst_cctld > gtld["com"]
    assert worst_cctld > 2 * gtld["com"]


def test_a_few_servers_control_a_large_share_of_names(small_survey):
    analyzer = small_survey.value_analyzer()
    high = analyzer.high_leverage_servers(fraction=0.10)
    assert high, "some servers should control >10% of names"
    assert len(high) < 0.2 * analyzer.server_count
    assert analyzer.mean_names_controlled() > \
        2 * analyzer.median_names_controlled()


def test_edu_servers_appear_among_high_value_servers(small_survey):
    edu_ranking = small_survey.server_value_ranking(tld_filter=("edu",))
    assert edu_ranking
    total = len(small_survey.resolved_records())
    assert edu_ranking[0].names_controlled > 0.02 * total


# -- cross-module consistency ------------------------------------------------------------------

def test_survey_vulnerable_servers_match_database(small_internet, small_survey):
    database = default_database()
    for hostname in list(small_survey.server_names_controlled)[:200]:
        server = small_internet.server(hostname)
        if server is None:
            continue
        expected = database.is_vulnerable(server.software)
        assert (hostname in small_survey.vulnerable_servers) == expected


def test_tcb_servers_exist_on_network(small_internet, small_survey):
    for record in small_survey.resolved_records()[:100]:
        for hostname in record.tcb_servers:
            assert small_internet.network.find_server(hostname) is not None


def test_rebuilding_graph_reproduces_record(small_internet, small_survey):
    survey = Survey(small_internet, popular_count=10)
    sample = random.Random(0).sample(small_survey.resolved_records(), 10)
    for record in sample:
        fresh = survey.builder.build(record.name)
        assert fresh.tcb() == record.tcb_servers


def test_bottleneck_recomputation_matches_record(small_internet, small_survey):
    survey = Survey(small_internet, popular_count=10)
    resolved = [r for r in small_survey.resolved_records() if r.mincut_size]
    sample = random.Random(1).sample(resolved, min(10, len(resolved)))
    for record in sample:
        graph = survey.builder.build(record.name)
        compromisable = {host: host in small_survey.compromisable_servers
                         for host in graph.tcb()}
        result = BottleneckAnalyzer(compromisable).analyze(graph)
        assert result.size == record.mincut_size
        assert result.safe_in_cut == record.mincut_safe


# -- what-if experiments across substrates ----------------------------------------------------------

def test_failing_bottleneck_servers_breaks_resolution(small_internet,
                                                      small_survey):
    """Removing every server in a name's min-cut must make it unresolvable:
    the min-cut really is a cut."""
    records = [r for r in small_survey.resolved_records()
               if 0 < r.mincut_size <= 3 and not r.is_popular]
    record = records[0]
    injector = FailureInjector(small_internet.network)
    injector.fail_servers(record.mincut_servers)
    try:
        resolver = small_internet.make_resolver()
        trace = resolver.resolve(record.name)
        assert not trace.succeeded
    finally:
        injector.revert()
    # After reverting, resolution works again.
    assert small_internet.make_resolver().resolve(record.name).succeeded


def test_failing_non_cut_server_does_not_break_resolution(small_internet,
                                                          small_survey):
    records = [r for r in small_survey.resolved_records()
               if r.tcb_size - r.mincut_size > 5]
    record = records[0]
    non_cut = sorted(record.tcb_servers - record.mincut_servers)[:1]
    injector = FailureInjector(small_internet.network)
    injector.fail_servers(non_cut)
    try:
        trace = small_internet.make_resolver().resolve(record.name)
        assert trace.succeeded
    finally:
        injector.revert()


# -- property-based end-to-end checks -----------------------------------------------------------------

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_tiny_internet_always_resolvable(seed):
    """Any seed must produce an Internet whose directory names resolve."""
    config = GeneratorConfig(seed=seed, sld_count=15, directory_name_count=25,
                             university_count=6, hosting_provider_count=3,
                             isp_count=2, plant_anecdotes=False)
    internet = InternetGenerator(config).generate()
    resolver = internet.make_resolver()
    entries = internet.directory.entries()[:10]
    assert entries
    for entry in entries:
        assert resolver.resolve(entry.name).succeeded, str(entry.name)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_tiny_survey_invariants(seed):
    config = GeneratorConfig(seed=seed, sld_count=12, directory_name_count=20,
                             university_count=5, hosting_provider_count=3,
                             isp_count=2, plant_anecdotes=False)
    internet = InternetGenerator(config).generate()
    results = Survey(internet, popular_count=5).run(max_names=15)
    for record in results.resolved_records():
        assert record.mincut_size <= record.tcb_size
        assert record.vulnerable_in_tcb <= record.tcb_size
        assert record.mincut_servers <= record.tcb_servers
        if record.classification == "complete":
            assert record.vulnerable_in_tcb > 0
