"""Snapshot persistence: format dispatch, sniffing load, and diffing.

The paper kept an active web site with the raw results of its July 2004
snapshot.  :func:`save_results` / :func:`load_results` play the same role
for this reproduction, over two interchangeable codecs:

* **binary** — the columnar REPRO-SNAP store (:mod:`repro.core.snapstore`):
  mmap-backed, O(1) open, lazy records.  The performance path.
* **json** — the original self-describing document, now an export/interop
  codec living in :mod:`repro.core.export` (optionally zlib-compressed).
  The golden format the byte-identity tests compare everything against.

:func:`load_results` never trusts extensions: it sniffs the first bytes —
REPRO-SNAP magic, zlib header, or JSON — and dispatches, raising
:class:`~repro.core.snapstore.SnapshotFormatError` with a precise reason
(wrong magic / truncated / checksum mismatch / malformed JSON) instead of
leaking a raw ``json.JSONDecodeError`` on corrupt input.

Snapshots are the **name boundary** of the integer-interned graph core
(:mod:`repro.core.graphcore`): integer node ids and NS-slot bitsets are
builder-local and never serialised — every server set reaching this module
has already been materialised back to :class:`~repro.dns.name.DomainName`,
which is what keeps snapshots byte-identical across execution backends and
across internal representation changes (the binary codec content-addresses
those sets; the JSON codec writes them as sorted presentation strings).

:func:`diff_results` compares two result sets name by name.  When both
sides are lazy binary views it runs columnar — cell reads straight off the
mmap, no :class:`~repro.core.survey.NameRecord` hydration — and produces
the exact same :class:`SnapshotDiff` the record-walking path yields.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import zlib
from typing import Dict, List, Tuple, Union

from repro.dns.name import DomainName
from repro.core.export import (
    SNAPSHOT_FORMAT_VERSION,
    _is_zlib_header,
    load_results_json,
    results_from_dict,
    results_to_dict,
    save_results_json,
)
from repro.core.snapstore import (
    MAGIC,
    SnapshotFormatError,
    open_results,
    save_results_snapshot,
)
from repro.core.survey import SurveyResults

PathLike = Union[str, pathlib.Path]

#: Codec names accepted by :func:`save_results` (and the CLI ``--format``).
SNAPSHOT_FORMATS = ("json", "binary")


def save_results(results: SurveyResults, path: PathLike, indent: int = 0,
                 format: str = "json", compress: bool = False
                 ) -> pathlib.Path:
    """Write survey results to ``path``; returns the path written.

    ``format="json"`` (default) writes the interop JSON document,
    optionally zlib-compressed with ``compress=True``; ``format="binary"``
    writes a REPRO-SNAP columnar snapshot (already compact — ``compress``
    is rejected there).  Both round-trip byte-identically through
    :func:`load_results`.
    """
    if format == "binary":
        if compress:
            raise ValueError("binary snapshots do not take compress=True "
                             "(the columnar format is already compact)")
        return save_results_snapshot(results, path)
    if format != "json":
        raise ValueError(f"unknown snapshot format {format!r} "
                         f"(expected one of {SNAPSHOT_FORMATS})")
    return save_results_json(results, path, indent=indent,
                             compress=compress)


def sniff_format(path: PathLike) -> str:
    """The snapshot codec at ``path``: "binary", "zlib", or "json".

    Decided by leading bytes only — the REPRO-SNAP magic, the two-byte
    zlib header, or anything else (assumed JSON) — never by extension.
    """
    with pathlib.Path(path).open("rb") as handle:
        head = handle.read(len(MAGIC))
    if head.startswith(MAGIC):
        return "binary"
    if _is_zlib_header(head):
        return "zlib"
    return "json"


def load_results(path: PathLike) -> SurveyResults:
    """Read survey results written by :func:`save_results`, any codec.

    Binary snapshots open lazily (O(1), mmap-backed
    :class:`~repro.core.snapstore.LazySurveyResults`); JSON — plain or
    zlib-compressed — hydrates eagerly.  Corrupt input raises
    :class:`SnapshotFormatError` naming what was expected and what was
    found.
    """
    path = pathlib.Path(path)
    codec = sniff_format(path)
    if codec == "binary":
        return open_results(path)
    try:
        if codec == "zlib":
            raw = zlib.decompress(path.read_bytes())
        else:
            raw = path.read_bytes()
        payload = json.loads(raw.decode("utf-8"))
    except zlib.error as error:
        raise SnapshotFormatError(
            f"{path}: truncated or corrupt zlib snapshot: {error}"
        ) from error
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise SnapshotFormatError(
            f"{path}: not a recognised snapshot (expected magic {MAGIC!r}, "
            f"a zlib stream, or JSON; got malformed JSON: {error})"
        ) from error
    try:
        return results_from_dict(payload)
    except (KeyError, TypeError, AttributeError) as error:
        raise SnapshotFormatError(
            f"{path}: malformed JSON snapshot: {error!r}") from error


# -- snapshot diffing ---------------------------------------------------------------

#: Built-in numeric per-name fields compared by :func:`diff_results`.
DIFF_NUMERIC_FIELDS = ("tcb_size", "vulnerable_in_tcb", "mincut_size")

#: Built-in categorical per-name fields compared by :func:`diff_results`.
DIFF_CATEGORICAL_FIELDS = ("classification",)


@dataclasses.dataclass
class NameChange:
    """One name whose record differs between two snapshots."""

    name: DomainName
    fields: Dict[str, Tuple[object, object]]  # field -> (before, after)

    def magnitude(self) -> float:
        """Size of the change, for ranking (numeric deltas dominate)."""
        largest = 0.0
        for before, after in self.fields.values():
            if isinstance(before, (int, float)) and \
                    isinstance(after, (int, float)) and \
                    not isinstance(before, bool) and \
                    not isinstance(after, bool):
                largest = max(largest, abs(float(after) - float(before)))
            else:
                largest = max(largest, 1.0)
        return largest


@dataclasses.dataclass
class SnapshotDiff:
    """Per-name churn between two survey snapshots.

    Snapshots are deterministic (sorted keys, backend-independent), so any
    difference reported here comes from the worlds surveyed — a different
    generator configuration, BIND catalogue, or deployment — never from the
    execution backend.

    Names present in only one snapshot are first-class changes: each
    contributes a :class:`NameChange` whose ``presence`` field records the
    add/removal, so ``changed``/:meth:`top_movers` — and equivalence checks
    built on :attr:`is_identical` — see namespace churn, not just field
    churn on the intersection.
    """

    only_in_a: List[DomainName]
    only_in_b: List[DomainName]
    common: int
    numeric: Dict[str, Dict[str, float]]      # field -> delta_stats
    transitions: Dict[str, Dict[Tuple[str, str], int]]
    changes: List[NameChange]

    @property
    def changed(self) -> int:
        """Number of names whose records differ (adds/removals included)."""
        return len(self.changes)

    @property
    def is_identical(self) -> bool:
        """True when the snapshots agree on every name and compared field.

        The check an incremental re-survey's delta-vs-full equivalence
        uses: no field churn, no names added, no names removed.
        """
        return not self.changes and not self.only_in_a and not self.only_in_b

    def top_movers(self, count: int = 10) -> List[NameChange]:
        """The most-changed names, largest magnitude first."""
        ordered = sorted(self.changes,
                         key=lambda change: (-change.magnitude(),
                                             change.name))
        return ordered[:count]


def _diff_fields(results: SurveyResults) -> Tuple[Tuple[str, ...],
                                                  Tuple[str, ...]]:
    """Numeric and categorical fields to compare, extras included."""
    numeric = list(DIFF_NUMERIC_FIELDS)
    categorical = list(DIFF_CATEGORICAL_FIELDS)
    for column in results.extras_columns():
        values = results.extra_values(column, resolved_only=False)
        if values and all(isinstance(v, (int, float)) and
                          not isinstance(v, bool) for v in values):
            numeric.append(column)
        else:
            categorical.append(column)
    return tuple(numeric), tuple(categorical)


def _field_value(record, field: str):
    if field in record.extras:
        return record.extras[field]
    return getattr(record, field, None)


class _RecordDiffView:
    """Diff cell access over hydrated records (the non-lazy path)."""

    def __init__(self, results: SurveyResults):
        self.names = {record.name: record for record in results.records}

    @staticmethod
    def value(record, field: str):
        return _field_value(record, field)


def _diff_view(results: SurveyResults):
    """Cell-access view for diffing: columnar for lazy snapshots.

    Lazy binary views expose ``column_diff_view()`` — per-field cell reads
    straight from the mmap'd columns, no record hydration; everything else
    gets the hydrating record walk.  Both return identical values for
    every (name, field), so the diff below cannot tell them apart.
    """
    maker = getattr(results, "column_diff_view", None)
    if maker is not None:
        return maker()
    return _RecordDiffView(results)


def diff_results(a: SurveyResults, b: SurveyResults) -> SnapshotDiff:
    """Compare two survey results name by name.

    Numeric fields (TCB size, vulnerable dependencies, min-cut size, and
    any numeric pass column such as ``availability``) get churn statistics
    via :func:`repro.core.report.delta_stats`; categorical fields
    (classification, ``dnssec_status``, ...) get transition counts.  Fields
    are drawn from snapshot *a*'s schema so diffing against an older
    snapshot without pass columns degrades gracefully.

    Two lazy binary snapshots diff columnar: only the *names* materialise
    (they key and order the comparison); records never hydrate, which is
    what makes diffing two mmap'd snapshots O(cells read), not O(parse).
    """
    from repro.core.report import delta_stats

    view_a = _diff_view(a)
    view_b = _diff_view(b)
    index_a = view_a.names
    index_b = view_b.names
    shared = sorted(set(index_a) & set(index_b))
    numeric_fields, categorical_fields = _diff_fields(a)

    numeric: Dict[str, Dict[str, float]] = {}
    pairs: Dict[str, Tuple[List[float], List[float]]] = \
        {field: ([], []) for field in numeric_fields}
    transitions: Dict[str, Dict[Tuple[str, str], int]] = {}
    changes: List[NameChange] = []

    for name in shared:
        handle_a, handle_b = index_a[name], index_b[name]
        changed_fields: Dict[str, Tuple[object, object]] = {}
        for field in numeric_fields:
            before = view_a.value(handle_a, field)
            after = view_b.value(handle_b, field)
            if before is None or after is None:
                continue
            pairs[field][0].append(float(before))
            pairs[field][1].append(float(after))
            if before != after:
                changed_fields[field] = (before, after)
        for field in categorical_fields:
            before = view_a.value(handle_a, field)
            after = view_b.value(handle_b, field)
            if before is None or after is None:
                continue
            if before != after:
                changed_fields[field] = (before, after)
                field_transitions = transitions.setdefault(field, {})
                key = (str(before), str(after))
                field_transitions[key] = field_transitions.get(key, 0) + 1
        if changed_fields:
            changes.append(NameChange(name=name, fields=changed_fields))

    for field, (before_values, after_values) in pairs.items():
        if before_values:
            numeric[field] = delta_stats(before_values, after_values)

    only_in_a = sorted(set(index_a) - set(index_b))
    only_in_b = sorted(set(index_b) - set(index_a))
    # Adds/removals are changes too: surface them through the same
    # NameChange/transition machinery the per-field churn uses.
    for name in only_in_a:
        changes.append(NameChange(name=name,
                                  fields={"presence": ("present", "absent")}))
    for name in only_in_b:
        changes.append(NameChange(name=name,
                                  fields={"presence": ("absent", "present")}))
    if only_in_a or only_in_b:
        presence = transitions.setdefault("presence", {})
        if only_in_a:
            presence[("present", "absent")] = len(only_in_a)
        if only_in_b:
            presence[("absent", "present")] = len(only_in_b)

    return SnapshotDiff(
        only_in_a=only_in_a, only_in_b=only_in_b,
        common=len(shared), numeric=numeric, transitions=transitions,
        changes=changes)
